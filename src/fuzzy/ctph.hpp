#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace siren::fuzzy {

/// Maximum number of characters in a spamsum digest part.
inline constexpr std::size_t kSpamsumLength = 64;

/// Smallest context-trigger block size.
inline constexpr std::uint64_t kMinBlockSize = 3;

/// A parsed fuzzy hash: `block_size:digest1:digest2`, where digest1 was
/// computed with `block_size` as the chunk trigger and digest2 with
/// `2 * block_size`. Keeping both lets two hashes computed at adjacent
/// block sizes still be compared (files of very different length).
struct FuzzyDigest {
    std::uint64_t block_size = kMinBlockSize;
    std::string digest1;
    std::string digest2;

    /// Canonical `bs:d1:d2` representation.
    std::string to_string() const;

    /// Parse; throws siren::util::ParseError on malformed input.
    static FuzzyDigest parse(std::string_view s);

    friend bool operator==(const FuzzyDigest&, const FuzzyDigest&) = default;
};

/// Compute the CTPH (context-triggered piecewise hash) of a buffer.
///
/// Algorithm (Kornblum 2006, as in SSDeep): a 7-byte rolling hash scans the
/// input; whenever `rolling % block_size == block_size - 1` the FNV sum
/// hash accumulated since the previous trigger emits one base64 character
/// and resets. The initial block size is the smallest
/// `kMinBlockSize * 2^k` whose expected digest fits kSpamsumLength; if the
/// produced digest is shorter than kSpamsumLength/2 the block size is
/// halved and the scan repeats, so short inputs still yield comparable
/// digests.
FuzzyDigest fuzzy_hash(const std::uint8_t* data, std::size_t size);
FuzzyDigest fuzzy_hash(const std::vector<std::uint8_t>& data);
FuzzyDigest fuzzy_hash(std::string_view data);

/// Convenience: `fuzzy_hash(...).to_string()`.
std::string fuzzy_hash_string(std::string_view data);

}  // namespace siren::fuzzy
