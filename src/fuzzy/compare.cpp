#include "fuzzy/compare.hpp"

#include <algorithm>
#include <unordered_set>

#include "fuzzy/edit_distance.hpp"
#include "hashing/rolling.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace siren::fuzzy {

std::string eliminate_sequences(std::string_view s) {
    std::string out;
    out.reserve(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (i >= 3 && s[i] == s[i - 1] && s[i] == s[i - 2] && s[i] == s[i - 3]) continue;
        out += s[i];
    }
    return out;
}

bool has_common_substring(std::string_view a, std::string_view b) {
    if (a.size() < kCommonSubstringLength || b.size() < kCommonSubstringLength) return false;
    // Digests are at most 64 chars, so a hash set of 7-grams is plenty fast.
    std::unordered_set<std::string_view> grams;
    for (std::size_t i = 0; i + kCommonSubstringLength <= a.size(); ++i) {
        grams.insert(a.substr(i, kCommonSubstringLength));
    }
    for (std::size_t i = 0; i + kCommonSubstringLength <= b.size(); ++i) {
        if (grams.count(b.substr(i, kCommonSubstringLength)) != 0) return true;
    }
    return false;
}

namespace detail {

std::uint64_t small_block_cap(std::uint64_t block_size, std::size_t len1, std::size_t len2) {
    // Small block sizes mean little data was hashed; don't let a short
    // digest claim a stronger match than it can support.
    const std::uint64_t uncapped_threshold =
        (99 + hash::kRollingWindow) / hash::kRollingWindow * kMinBlockSize;
    if (block_size >= uncapped_threshold) return 100;
    return block_size / kMinBlockSize * std::min(len1, len2);
}

int scale_distance_to_score(std::size_t dist, std::size_t len1, std::size_t len2,
                            std::uint64_t block_size) {
    // Scale the distance by digest lengths to a 0..100 mismatch proportion,
    // then invert. Matches ssdeep's integer arithmetic.
    std::uint64_t score = (dist * kSpamsumLength) / (len1 + len2);
    score = (100 * score) / kSpamsumLength;
    if (score >= 100) return 0;
    score = 100 - score;
    return static_cast<int>(std::min(score, small_block_cap(block_size, len1, len2)));
}

std::size_t max_distance_for_score(int min_score, std::size_t len1, std::size_t len2) {
    if (min_score < 1) min_score = 1;
    if (min_score > 100) return 0;
    // score >= min_score  <=>  floor(100 * q / 64) <= 100 - min_score with
    // q = floor(dist * 64 / (len1 + len2)); invert both floors.
    const std::uint64_t k = static_cast<std::uint64_t>(100 - min_score);
    const std::uint64_t qmax = (kSpamsumLength * (k + 1) - 1) / 100;
    return static_cast<std::size_t>(((qmax + 1) * (len1 + len2) - 1) / kSpamsumLength);
}

}  // namespace detail

namespace {

/// Score two same-block-size digest strings (SSDeep's score_strings).
int score_strings(std::string_view s1, std::string_view s2, std::uint64_t block_size) {
    if (s1.size() > kSpamsumLength || s2.size() > kSpamsumLength) return 0;
    if (!has_common_substring(s1, s2)) return 0;
    const std::size_t dist = weighted_edit_distance(s1, s2);
    return detail::scale_distance_to_score(dist, s1.size(), s2.size(), block_size);
}

}  // namespace

int compare(const FuzzyDigest& a, const FuzzyDigest& b) {
    const std::uint64_t bs1 = a.block_size;
    const std::uint64_t bs2 = b.block_size;
    if (bs1 != bs2 && bs1 != bs2 * 2 && bs2 != bs1 * 2) return 0;

    const std::string a1 = eliminate_sequences(a.digest1);
    const std::string a2 = eliminate_sequences(a.digest2);
    const std::string b1 = eliminate_sequences(b.digest1);
    const std::string b2 = eliminate_sequences(b.digest2);

    if (bs1 == bs2 && a1 == b1 && a2 == b2 && !a1.empty()) return 100;

    if (bs1 == bs2) {
        return std::max(score_strings(a1, b1, bs1), score_strings(a2, b2, bs1 * 2));
    }
    if (bs1 == bs2 * 2) {
        // a's fine digest lines up with b's coarse digest.
        return score_strings(a1, b2, bs1);
    }
    return score_strings(a2, b1, bs2);
}

int compare(std::string_view a, std::string_view b, bool strict) {
    try {
        return compare(FuzzyDigest::parse(a), FuzzyDigest::parse(b));
    } catch (const util::ParseError&) {
        if (strict) throw;
        return 0;
    }
}

std::vector<int> compare_one_to_many(const FuzzyDigest& probe,
                                     const std::vector<FuzzyDigest>& candidates,
                                     std::size_t parallel_threshold) {
    std::vector<int> scores(candidates.size(), 0);
    if (parallel_threshold != 0 && candidates.size() >= parallel_threshold) {
        util::parallel_for(candidates.size(),
                           [&](std::size_t i) { scores[i] = compare(probe, candidates[i]); });
    } else {
        for (std::size_t i = 0; i < candidates.size(); ++i) {
            scores[i] = compare(probe, candidates[i]);
        }
    }
    return scores;
}

}  // namespace siren::fuzzy
