#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace siren::fuzzy {

/// Minimum input size for a TLSH digest. Below this the bucket histogram is
/// too sparse for the quartile encoding to be meaningful (the reference
/// implementation uses the same floor).
inline constexpr std::size_t kTlshMinSize = 50;

/// Number of histogram buckets encoded in the digest body (the "128-bucket"
/// TLSH variant: 256 Pearson buckets are accumulated, the first 128 encoded).
inline constexpr std::size_t kTlshBuckets = 128;

/// A TLSH-style locality-sensitive digest.
///
/// TLSH (Oliver et al., 2013) is the other major family of similarity
/// hashes used in malware triage. Where SSDeep's CTPH captures the
/// *sequence* of content (digest characters appear in file order, compared
/// by edit distance), TLSH captures the *distribution* of content: a
/// histogram of Pearson-hashed sliding-window triplets, quantized against
/// its own quartiles. SIREN's collector uses CTPH (the paper's choice);
/// this digest exists as the ablation comparator — `bench_ablation_tlsh`
/// measures both families under the same controlled binary drift.
struct TlshDigest {
    std::uint8_t checksum = 0;   ///< 1-byte rolling Pearson checksum
    std::uint8_t lvalue = 0;     ///< log-bucketed input length
    std::uint8_t q1_ratio = 0;   ///< (q1*100/q3) mod 16
    std::uint8_t q2_ratio = 0;   ///< (q2*100/q3) mod 16
    std::array<std::uint8_t, kTlshBuckets / 4> body{};  ///< 2 bits per bucket

    /// Canonical hex form, `T1` prefixed (header then body, uppercase hex).
    std::string to_string() const;

    /// Parse the `to_string` form; throws siren::util::ParseError on
    /// malformed input.
    static TlshDigest parse(std::string_view s);

    friend bool operator==(const TlshDigest&, const TlshDigest&) = default;
};

/// Compute the TLSH digest of a buffer.
///
/// Returns nullopt when the input is too short (< kTlshMinSize) or too
/// uniform (three quarters of the buckets empty — e.g. a constant byte
/// run), matching the reference implementation's validity rules. A digest
/// that cannot be computed is a real outcome the caller must handle; SIREN
/// records an empty hash column in that case.
std::optional<TlshDigest> tlsh_hash(const std::uint8_t* data, std::size_t size);
std::optional<TlshDigest> tlsh_hash(const std::vector<std::uint8_t>& data);
std::optional<TlshDigest> tlsh_hash(std::string_view data);

/// TLSH distance: 0 = identical, larger = more different, unbounded
/// (length and quartile-ratio mismatches add step penalties; each of the
/// 128 body buckets contributes 0..6).
int tlsh_distance(const TlshDigest& a, const TlshDigest& b);

/// Map a TLSH distance onto the paper's 0..100 similarity scale so both
/// hash families plot on the same axis: 100 at distance 0, linearly down
/// to 0 at distance >= 300 (empirically "unrelated" for binaries).
int tlsh_similarity(const TlshDigest& a, const TlshDigest& b);

}  // namespace siren::fuzzy
