#pragma once

#include <cstdint>
#include <string_view>

namespace siren::fuzzy {

/// Operation costs for the weighted edit distances. SSDeep's scoring uses
/// insert/delete = 1 and substitution = 2 (a substitution must not be
/// cheaper than delete+insert would suggest, or scores inflate); the paper
/// describes the comparison as Damerau-Levenshtein, so adjacent
/// transpositions are supported with their own cost.
struct EditCosts {
    unsigned insert = 1;
    unsigned remove = 1;
    unsigned substitute = 2;
    unsigned transpose = 2;
};

/// Classic Levenshtein distance (insert/delete/substitute, unit costs).
std::size_t levenshtein(std::string_view a, std::string_view b);

/// Restricted Damerau-Levenshtein (optimal string alignment): Levenshtein
/// plus transposition of two adjacent characters, unit costs.
std::size_t damerau_levenshtein(std::string_view a, std::string_view b);

/// Weighted restricted Damerau-Levenshtein; this is the distance the
/// SSDeep-style scorer feeds into the 0-100 similarity formula.
std::size_t weighted_edit_distance(std::string_view a, std::string_view b,
                                   const EditCosts& costs = EditCosts{});

}  // namespace siren::fuzzy
