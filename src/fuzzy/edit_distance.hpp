#pragma once

#include <cstdint>
#include <string_view>

namespace siren::fuzzy {

/// Operation costs for the weighted edit distances. SSDeep's scoring uses
/// insert/delete = 1 and substitution = 2 (a substitution must not be
/// cheaper than delete+insert would suggest, or scores inflate); the paper
/// describes the comparison as Damerau-Levenshtein, so adjacent
/// transpositions are supported with their own cost.
struct EditCosts {
    unsigned insert = 1;
    unsigned remove = 1;
    unsigned substitute = 2;
    unsigned transpose = 2;
};

/// Classic Levenshtein distance (insert/delete/substitute, unit costs).
/// When the shorter string fits one machine word (<= 64 chars) this runs
/// Myers' bit-parallel algorithm — O(n) words instead of O(n*m) cells;
/// longer inputs fall back to the rolling-row DP.
std::size_t levenshtein(std::string_view a, std::string_view b);

/// Restricted Damerau-Levenshtein (optimal string alignment): Levenshtein
/// plus transposition of two adjacent characters, unit costs.
std::size_t damerau_levenshtein(std::string_view a, std::string_view b);

/// Weighted restricted Damerau-Levenshtein; this is the distance the
/// SSDeep-style scorer feeds into the 0-100 similarity formula.
///
/// Whenever the costs make substitution and transposition no cheaper than
/// a delete+insert pair (true for the default {1, 1, 2, 2}), the optimal
/// script uses insertions and deletions only, so the distance equals
/// indel_distance() and is computed bit-parallel for digest-length inputs.
/// Other cost mixes and long strings take the general weighted DP.
std::size_t weighted_edit_distance(std::string_view a, std::string_view b,
                                   const EditCosts& costs = EditCosts{});

/// Insert/delete-only edit distance: |a| + |b| - 2 * LCS(a, b).
/// Bit-parallel (Hyyro's LCS bit-vector recurrence) when the shorter
/// string is <= 64 chars, DP otherwise.
std::size_t indel_distance(std::string_view a, std::string_view b);

/// Early-abandoning indel distance for thresholded search: returns the
/// exact distance when it is <= max_dist, and any value > max_dist once
/// the running lower bound proves the threshold unreachable. The hot
/// similarity path derives max_dist from the caller's min_score, so
/// hopeless candidates abandon the scan after a few words.
std::size_t indel_distance_bounded(std::string_view a, std::string_view b,
                                   std::size_t max_dist);

/// Four independent bounded indel distances in one interleaved loop:
/// out[k] = indel_distance_bounded(a[k], b[k], max_dist[k]), bit-identical
/// per lane (including the > max_dist abandon sentinel and its schedule).
/// The four Hyyro bit-vector recurrences are serial dependency chains
/// individually; stepping them in lockstep lets the CPU overlap them, which
/// is where batched rescoring gets its speedup — no wide registers needed,
/// so every dispatch level benefits. Lanes whose shorter side exceeds 64
/// chars fall back to the scalar routine.
void indel_distance_bounded_x4(const std::string_view* a, const std::string_view* b,
                               const std::size_t* max_dist, std::size_t* out);

}  // namespace siren::fuzzy
