#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "fuzzy/ctph.hpp"
#include "hashing/fnv.hpp"
#include "hashing/rolling.hpp"

namespace siren::fuzzy {

/// Incremental CTPH hasher: feed data in arbitrary chunks, finalize once.
///
/// The batch fuzzy_hash() picks the block size from the total length and
/// may rescan at a smaller block size — impossible when streaming. Instead
/// the streaming hasher maintains a digest ladder: one digest state per
/// candidate block size (3 * 2^i). finalize() then applies exactly the
/// batch selection rule to the materialized ladder, so for any input and
/// any chunking
///
///     StreamingHasher h; h.update(parts...); h.finalize()
///       == fuzzy_hash(concat(parts))
///
/// (a property test sweeps this). The cost is one FNV step per byte per
/// ladder level (~31), which is the standard trade-off ssdeep's streaming
/// interface makes as well. Use the batch API when the data is in memory.
class StreamingHasher {
public:
    StreamingHasher() { reset(); }

    void update(const std::uint8_t* data, std::size_t size);
    void update(std::string_view s) {
        update(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
    }

    /// Total bytes consumed so far.
    std::uint64_t size() const { return total_; }

    /// Produce the digest; the hasher remains usable (more update() calls
    /// continue the same stream, finalize() is a snapshot).
    FuzzyDigest finalize() const;

    void reset();

private:
    /// Ladder depth: block sizes 3 * 2^0 .. 3 * 2^30 cover inputs beyond
    /// 64 * 3 * 2^30 bytes (~200 GiB), far past any executable.
    static constexpr std::size_t kLevels = 31;

    struct Level {
        std::uint32_t sum1 = hash::kSpamsumHashInit;
        std::uint32_t sum2 = hash::kSpamsumHashInit;
        std::string digest1;
        std::string digest2;
    };

    hash::RollingHash roll_;
    std::array<Level, kLevels> levels_;
    std::uint64_t total_ = 0;
};

}  // namespace siren::fuzzy
