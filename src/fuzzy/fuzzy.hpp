#pragma once

/// Umbrella header for the SSDeep-style fuzzy hashing substrate:
///  - ctph.hpp           context-triggered piecewise hashing (digests)
///  - compare.hpp        0..100 similarity scoring between digests
///  - edit_distance.hpp  Levenshtein / Damerau-Levenshtein kernels
///  - tlsh.hpp           TLSH-style locality-sensitive digest (ablation
///                       comparator for the CTPH choice)

#include "fuzzy/compare.hpp"    // IWYU pragma: export
#include "fuzzy/ctph.hpp"       // IWYU pragma: export
#include "fuzzy/edit_distance.hpp"  // IWYU pragma: export
#include "fuzzy/tlsh.hpp"       // IWYU pragma: export
