#pragma once

/// Umbrella header for the SSDeep-style fuzzy hashing substrate:
///  - ctph.hpp           context-triggered piecewise hashing (digests)
///  - compare.hpp        0..100 similarity scoring between digests
///  - prepared.hpp       prepared digests: zero-alloc scoring with Bloom
///                       7-gram prefilter signatures
///  - edit_distance.hpp  Levenshtein / Damerau-Levenshtein kernels
///                       (bit-parallel for digest-length inputs)
///  - tlsh.hpp           TLSH-style locality-sensitive digest (ablation
///                       comparator for the CTPH choice)

#include "fuzzy/compare.hpp"    // IWYU pragma: export
#include "fuzzy/ctph.hpp"       // IWYU pragma: export
#include "fuzzy/edit_distance.hpp"  // IWYU pragma: export
#include "fuzzy/prepared.hpp"   // IWYU pragma: export
#include "fuzzy/tlsh.hpp"       // IWYU pragma: export
