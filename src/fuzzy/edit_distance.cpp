#include "fuzzy/edit_distance.hpp"

#include <algorithm>
#include <vector>

namespace siren::fuzzy {

namespace {

/// Shared DP core. Rows are rotated (prev2/prev/cur) so memory stays
/// O(min-side) even for large inputs; digest strings are <= 64 chars but
/// the tests also exercise long raw strings.
std::size_t dp_distance(std::string_view a, std::string_view b, const EditCosts& costs,
                        bool allow_transpose) {
    if (a.empty()) return b.size() * static_cast<std::size_t>(costs.insert);
    if (b.empty()) return a.size() * static_cast<std::size_t>(costs.remove);

    const std::size_t n = b.size();
    std::vector<std::size_t> prev2(n + 1), prev(n + 1), cur(n + 1);

    for (std::size_t j = 0; j <= n; ++j) prev[j] = j * costs.insert;

    for (std::size_t i = 1; i <= a.size(); ++i) {
        cur[0] = i * costs.remove;
        for (std::size_t j = 1; j <= n; ++j) {
            const bool same = a[i - 1] == b[j - 1];
            std::size_t best = prev[j - 1] + (same ? 0 : costs.substitute);
            best = std::min(best, prev[j] + costs.remove);
            best = std::min(best, cur[j - 1] + costs.insert);
            if (allow_transpose && i > 1 && j > 1 && a[i - 1] == b[j - 2] &&
                a[i - 2] == b[j - 1] && !same) {
                best = std::min(best, prev2[j - 2] + costs.transpose);
            }
            cur[j] = best;
        }
        std::swap(prev2, prev);
        std::swap(prev, cur);
    }
    return prev[n];
}

}  // namespace

std::size_t levenshtein(std::string_view a, std::string_view b) {
    EditCosts unit{1, 1, 1, 1};
    return dp_distance(a, b, unit, /*allow_transpose=*/false);
}

std::size_t damerau_levenshtein(std::string_view a, std::string_view b) {
    EditCosts unit{1, 1, 1, 1};
    return dp_distance(a, b, unit, /*allow_transpose=*/true);
}

std::size_t weighted_edit_distance(std::string_view a, std::string_view b,
                                   const EditCosts& costs) {
    return dp_distance(a, b, costs, /*allow_transpose=*/true);
}

}  // namespace siren::fuzzy
