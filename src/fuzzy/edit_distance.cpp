#include "fuzzy/edit_distance.hpp"

#include <algorithm>
#include <bit>
#include <vector>

namespace siren::fuzzy {

namespace {

/// Shared DP core. Rows are rotated (prev2/prev/cur) so memory stays
/// O(min-side) even for large inputs; digest strings are <= 64 chars but
/// the tests also exercise long raw strings.
std::size_t dp_distance(std::string_view a, std::string_view b, const EditCosts& costs,
                        bool allow_transpose) {
    if (a.empty()) return b.size() * static_cast<std::size_t>(costs.insert);
    if (b.empty()) return a.size() * static_cast<std::size_t>(costs.remove);

    const std::size_t n = b.size();
    std::vector<std::size_t> prev2(n + 1), prev(n + 1), cur(n + 1);

    for (std::size_t j = 0; j <= n; ++j) prev[j] = j * costs.insert;

    for (std::size_t i = 1; i <= a.size(); ++i) {
        cur[0] = i * costs.remove;
        for (std::size_t j = 1; j <= n; ++j) {
            const bool same = a[i - 1] == b[j - 1];
            std::size_t best = prev[j - 1] + (same ? 0 : costs.substitute);
            best = std::min(best, prev[j] + costs.remove);
            best = std::min(best, cur[j - 1] + costs.insert);
            if (allow_transpose && i > 1 && j > 1 && a[i - 1] == b[j - 2] &&
                a[i - 2] == b[j - 1] && !same) {
                best = std::min(best, prev2[j - 2] + costs.transpose);
            }
            cur[j] = best;
        }
        std::swap(prev2, prev);
        std::swap(prev, cur);
    }
    return prev[n];
}

/// Word width of the bit-parallel kernels: one pattern character per bit.
constexpr std::size_t kWordBits = 64;

/// Pattern match masks for the bit-parallel kernels: bit i of eq[c] is set
/// when pattern[i] == c. Stack-only; the pattern must be <= kWordBits.
struct MatchMasks {
    std::uint64_t eq[256] = {};

    explicit MatchMasks(std::string_view pattern) {
        for (std::size_t i = 0; i < pattern.size(); ++i) {
            eq[static_cast<unsigned char>(pattern[i])] |= std::uint64_t{1} << i;
        }
    }
};

/// Myers' bit-parallel Levenshtein (1999): the DP column is encoded as
/// positive/negative delta bit-vectors and one text character advances the
/// whole column in a handful of word operations. Pattern <= 64 chars.
std::size_t myers_levenshtein(std::string_view text, std::string_view pattern) {
    const MatchMasks masks(pattern);
    const std::uint64_t msb = std::uint64_t{1} << (pattern.size() - 1);
    std::uint64_t pv = ~std::uint64_t{0};
    std::uint64_t mv = 0;
    std::size_t score = pattern.size();

    for (const char c : text) {
        const std::uint64_t eq = masks.eq[static_cast<unsigned char>(c)];
        const std::uint64_t xv = eq | mv;
        const std::uint64_t xh = (((eq & pv) + pv) ^ pv) | eq;
        std::uint64_t ph = mv | ~(xh | pv);
        std::uint64_t mh = pv & xh;
        if (ph & msb) ++score;
        if (mh & msb) --score;
        ph = (ph << 1) | 1;
        mh <<= 1;
        pv = mh | ~(xv | ph);
        mv = ph & xv;
    }
    return score;
}

/// One step of Hyyro's bit-parallel LCS recurrence. The complement of the
/// row vector accumulates one bit per matched pattern position; u = s & eq
/// picks the matches still "available", and (s + u) | (s - u) consumes
/// them left-to-right exactly like the classic LCS DP row.
inline void lcs_step(std::uint64_t& s, std::uint64_t eq) {
    const std::uint64_t u = s & eq;
    s = (s + u) | (s - u);
}

/// Bit-parallel LCS length (pattern <= 64 chars, any text length).
std::size_t lcs_bitparallel(std::string_view text, std::string_view pattern) {
    const MatchMasks masks(pattern);
    std::uint64_t s = ~std::uint64_t{0};
    for (const char c : text) lcs_step(s, masks.eq[static_cast<unsigned char>(c)]);
    return static_cast<std::size_t>(std::popcount(~s));
}

/// True when `costs` price substitution and transposition at no less than
/// a delete+insert pair with unit indel costs — then the optimal script is
/// insert/delete-only and the distance collapses to the indel distance.
bool costs_are_indel(const EditCosts& costs) {
    return costs.insert == 1 && costs.remove == 1 && costs.substitute >= 2 &&
           costs.transpose >= 2;
}

}  // namespace

std::size_t levenshtein(std::string_view a, std::string_view b) {
    if (a.size() < b.size()) std::swap(a, b);  // b is the pattern
    if (b.empty()) return a.size();
    if (b.size() <= kWordBits) return myers_levenshtein(a, b);
    EditCosts unit{1, 1, 1, 1};
    return dp_distance(a, b, unit, /*allow_transpose=*/false);
}

std::size_t damerau_levenshtein(std::string_view a, std::string_view b) {
    EditCosts unit{1, 1, 1, 1};
    return dp_distance(a, b, unit, /*allow_transpose=*/true);
}

std::size_t weighted_edit_distance(std::string_view a, std::string_view b,
                                   const EditCosts& costs) {
    if (costs_are_indel(costs)) return indel_distance(a, b);
    return dp_distance(a, b, costs, /*allow_transpose=*/true);
}

std::size_t indel_distance(std::string_view a, std::string_view b) {
    if (a.size() < b.size()) std::swap(a, b);
    if (b.empty()) return a.size();
    if (b.size() <= kWordBits) {
        return a.size() + b.size() - 2 * lcs_bitparallel(a, b);
    }
    return dp_distance(a, b, EditCosts{1, 1, 2, 2}, /*allow_transpose=*/true);
}

std::size_t indel_distance_bounded(std::string_view a, std::string_view b,
                                   std::size_t max_dist) {
    if (a.size() < b.size()) std::swap(a, b);
    // Length difference alone is a distance lower bound.
    if (a.size() - b.size() > max_dist) return max_dist + 1;
    if (b.empty()) return a.size();
    if (b.size() > kWordBits) {
        const std::size_t dist = dp_distance(a, b, EditCosts{1, 1, 2, 2}, true);
        return dist;
    }

    const MatchMasks masks(b);
    std::uint64_t s = ~std::uint64_t{0};
    const std::size_t n = a.size();
    std::size_t i = 0;
    // The banded early exit: after consuming i text chars the final LCS is
    // at most LCS(prefix, b) + (n - i), so the distance is at least
    // n + |b| - 2 * that. Check every 16 chars to amortize the popcount.
    while (i < n) {
        const std::size_t stop = std::min(n, i + 16);
        for (; i < stop; ++i) lcs_step(s, masks.eq[static_cast<unsigned char>(a[i])]);
        if (i == n) break;
        const std::size_t lcs_prefix = static_cast<std::size_t>(std::popcount(~s));
        const std::size_t lcs_best = std::min(b.size(), lcs_prefix + (n - i));
        if (n + b.size() - 2 * lcs_best > max_dist) return max_dist + 1;
    }
    return n + b.size() - 2 * static_cast<std::size_t>(std::popcount(~s));
}

void indel_distance_bounded_x4(const std::string_view* a, const std::string_view* b,
                               const std::size_t* max_dist, std::size_t* out) {
    struct Lane {
        std::string_view text;  ///< longer side
        std::string_view pat;   ///< shorter side, <= kWordBits chars
        std::uint64_t s = ~std::uint64_t{0};
        bool active = false;
    };
    Lane lanes[4];
    // Per-lane match masks (the same table MatchMasks builds); 8 KiB of
    // stack, the batched equivalent of the scalar routine's 2 KiB.
    std::uint64_t eq[4][256];

    for (int k = 0; k < 4; ++k) {
        std::string_view text = a[k];
        std::string_view pat = b[k];
        if (text.size() < pat.size()) std::swap(text, pat);
        // The setup gates mirror indel_distance_bounded in order.
        if (text.size() - pat.size() > max_dist[k]) {
            out[k] = max_dist[k] + 1;
            continue;
        }
        if (pat.empty()) {
            out[k] = text.size();
            continue;
        }
        if (pat.size() > kWordBits) {
            out[k] = indel_distance_bounded(text, pat, max_dist[k]);
            continue;
        }
        Lane& lane = lanes[k];
        lane.text = text;
        lane.pat = pat;
        lane.active = true;
        std::fill(std::begin(eq[k]), std::end(eq[k]), std::uint64_t{0});
        for (std::size_t p = 0; p < pat.size(); ++p) {
            eq[k][static_cast<unsigned char>(pat[p])] |= std::uint64_t{1} << p;
        }
    }
    if (!lanes[0].active && !lanes[1].active && !lanes[2].active && !lanes[3].active) return;

    // Lockstep advance: every active lane consumes one text char per step,
    // so all lanes reach their 16-char band checkpoints on the same
    // iteration — the abandon schedule is exactly the scalar routine's,
    // per lane.
    for (std::size_t base = 0;; base += 16) {
        for (std::size_t pos = base; pos < base + 16; ++pos) {
            for (int k = 0; k < 4; ++k) {
                Lane& lane = lanes[k];
                if (!lane.active || pos >= lane.text.size()) continue;
                lcs_step(lane.s, eq[k][static_cast<unsigned char>(lane.text[pos])]);
            }
        }
        bool any_active = false;
        for (int k = 0; k < 4; ++k) {
            Lane& lane = lanes[k];
            if (!lane.active) continue;
            const std::size_t n = lane.text.size();
            const std::size_t i = std::min(n, base + 16);
            const auto lcs_prefix = static_cast<std::size_t>(std::popcount(~lane.s));
            if (i == n) {
                out[k] = n + lane.pat.size() - 2 * lcs_prefix;
                lane.active = false;
                continue;
            }
            const std::size_t lcs_best = std::min(lane.pat.size(), lcs_prefix + (n - i));
            if (n + lane.pat.size() - 2 * lcs_best > max_dist[k]) {
                out[k] = max_dist[k] + 1;
                lane.active = false;
                continue;
            }
            any_active = true;
        }
        if (!any_active) break;
    }
}

}  // namespace siren::fuzzy
