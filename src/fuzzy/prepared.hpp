#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "fuzzy/ctph.hpp"

namespace siren::fuzzy {

/// A FuzzyDigest preprocessed for repeated comparison — the unit the
/// similarity engine stores and scans at registry scale.
///
/// prepare() pays once for everything the legacy compare() redid per call:
///  - run collapsing (eliminate_sequences) of both digest parts, written
///    into inline fixed-size buffers (parts are <= kSpamsumLength chars by
///    construction, so no heap storage is ever needed);
///  - a 64-bit Bloom signature of each part's 7-grams, so the
///    common-substring gate becomes `sig_a & sig_b` plus one exact confirm
///    pass instead of building a hash set of grams.
///
/// compare(PreparedDigest, PreparedDigest) is allocation-free (pinned by
/// tests/test_prepared.cpp under util::alloc_probe) and returns exactly the
/// legacy compare(FuzzyDigest, FuzzyDigest) score.
class PreparedDigest {
public:
    PreparedDigest() = default;

    /// Preprocess a digest. Throws util::Error when a digest part exceeds
    /// kSpamsumLength (impossible for fuzzy_hash/parse output; only
    /// hand-built FuzzyDigest values can get there).
    explicit PreparedDigest(const FuzzyDigest& digest);

    static PreparedDigest prepare(const FuzzyDigest& digest) { return PreparedDigest(digest); }

    std::uint64_t block_size() const { return block_size_; }

    /// Sequence-collapsed digest parts (views into the inline buffers).
    std::string_view part1() const { return {data1_.data(), len1_}; }
    std::string_view part2() const { return {data2_.data(), len2_}; }

    /// Bloom signatures of part1's / part2's 7-grams (see gram_signature).
    std::uint64_t signature1() const { return sig1_; }
    std::uint64_t signature2() const { return sig2_; }

private:
    std::uint64_t block_size_ = kMinBlockSize;
    std::uint64_t sig1_ = 0;
    std::uint64_t sig2_ = 0;
    std::array<char, kSpamsumLength> data1_{};
    std::array<char, kSpamsumLength> data2_{};
    std::uint8_t len1_ = 0;
    std::uint8_t len2_ = 0;
};

/// 64-bit Bloom signature of a collapsed digest string: one bit per
/// 7-gram. Two strings can share a 7-gram only if their signatures share a
/// bit, so `(sig_a & sig_b) == 0` disproves a common substring without
/// touching the bytes. Strings shorter than 7 chars get a whole-string bit
/// instead, so byte-identical short parts (the compare() == 100 path) still
/// collide in the prefilter. Empty strings have signature 0.
std::uint64_t gram_signature(std::string_view collapsed);

/// Write the packed 7-grams of `collapsed` into `out` (capacity >=
/// kSpamsumLength) and return the count. A 7-char gram packs into 56 bits,
/// so packed equality IS gram equality — sorted gram arrays make the exact
/// common-substring test a two-pointer merge, which is how the similarity
/// index confirms Bloom hits without touching digest bytes. Returns 0 for
/// strings shorter than kCommonSubstringLength.
std::size_t pack_grams(std::string_view collapsed, std::uint64_t* out);

/// Similarity score, identical to compare(FuzzyDigest, FuzzyDigest), but
/// allocation-free on prepared inputs.
///
/// `min_score` (>= 1) is a search cutoff, not a filter: any pair scoring
/// at least min_score returns its exact score, while a pair that provably
/// cannot reach min_score may return 0 early — the cutoff converts to a
/// max edit distance bound and the bit-parallel scan abandons hopeless
/// rows (see indel_distance_bounded). With the default min_score = 1 the
/// result is exactly the legacy score for every input.
int compare(const PreparedDigest& a, const PreparedDigest& b, int min_score = 1);

/// Batched rescore: out[k] = compare(probe, *candidates[k], min_score) for
/// k < count (count <= 4; extra lanes ignored), allocation-free like
/// compare(). The gates run per candidate exactly as in compare(); the
/// surviving bounded edit distances are pooled and executed four at a time
/// through indel_distance_bounded_x4, which hides the bit-parallel
/// recurrence's dependency chain when a bucket scan confirms several
/// candidates at once. Scores are identical to compare() by construction.
void compare_x4(const PreparedDigest& probe, const PreparedDigest* const* candidates,
                std::size_t count, int min_score, int* out);

}  // namespace siren::fuzzy
