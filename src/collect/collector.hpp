#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "collect/exe_store.hpp"
#include "collect/policy.hpp"
#include "net/channel.hpp"
#include "sim/cluster.hpp"

namespace siren::collect {

/// Collector configuration.
struct CollectorOptions {
    /// Collect only for SLURM_PROCID == 0 (skip duplicate MPI ranks),
    /// paper §3.1 "Selective Data Collection".
    bool only_rank_zero = true;
    /// Collect processes running inside containers. Default matches the
    /// paper's limitation (siren.so is not mounted into the container);
    /// enabling it models the future-work extension of §6.
    bool collect_containers = false;
    /// Maximum datagram payload handed to the transport.
    std::size_t max_datagram = 1400;
};

/// Per-collector counters.
struct CollectorStats {
    std::atomic<std::uint64_t> processes_seen{0};
    std::atomic<std::uint64_t> processes_collected{0};
    std::atomic<std::uint64_t> processes_skipped_rank{0};
    std::atomic<std::uint64_t> processes_skipped_container{0};
    std::atomic<std::uint64_t> datagrams_sent{0};
    std::atomic<std::uint64_t> collection_errors{0};
};

/// The in-process data-collection logic of siren.so, applied to simulated
/// processes: given everything a hooked process can observe about itself,
/// emit the SIREN message set for its scope through a Transport.
///
/// collect() never throws: any internal failure increments
/// collection_errors and leaves the "user process" untouched — the
/// graceful-failure contract of the paper. The send path reuses one wire
/// buffer across datagrams (zero heap traffic per message in steady state),
/// so each thread needs its own Collector — the sharded campaign runner
/// already works that way.
class Collector {
public:
    Collector(const FileStore& store, net::Transport& transport,
              CollectorOptions options = {});

    /// Observe one process; returns the number of datagrams sent.
    std::size_t collect(const sim::SimProcess& process) noexcept;

    const CollectorStats& stats() const { return stats_; }

    /// The HASH header value for an executable path (hex xxh128) — exposed
    /// because consolidation recomputes it for exec()-chain checks.
    static std::string exe_path_hash(const std::string& path);

private:
    std::size_t collect_impl(const sim::SimProcess& process);
    std::size_t send_field(const net::MessageView& header, net::MsgType type,
                           std::string_view content);

    const FileStore& store_;
    net::Transport& transport_;
    CollectorOptions options_;
    CollectorStats stats_;
    std::string wire_;  ///< reused encode buffer — one allocation per campaign, not per datagram
};

/// Canonical CONTENT renderings shared by collector and consolidation.
std::string render_ids_content(const sim::SimProcess& process);
std::string render_objects_content(const sim::SimProcess& process);
std::string render_modules_content(const sim::SimProcess& process);
std::string render_memmap_content(const sim::SimProcess& process);

}  // namespace siren::collect
