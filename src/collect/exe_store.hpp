#pragma once

#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/cluster.hpp"

namespace siren::collect {

/// Derived artifacts of one executable image, computed once and shared by
/// every process that runs it (the campaign has 2.3M processes but only a
/// few hundred distinct executables; hashing per process would dominate
/// runtime and is what the paper's "selective data collection" avoids).
struct DerivedInfo {
    std::vector<std::string> compilers;     ///< .comment identification strings
    std::string file_hash;                  ///< FILE_H fuzzy digest
    std::string strings_hash;               ///< STRINGS_H fuzzy digest
    std::string symbols_hash;               ///< SYMBOLS_H fuzzy digest
    bool is_elf = false;
};

/// One executable known to the simulated filesystem.
struct ExecutableImage {
    std::vector<std::uint8_t> bytes;
    sim::FileMeta meta;
};

/// The simulated filesystem's view of executable files: path -> image,
/// with a thread-safe cache of DerivedInfo. register_executable is called
/// by the workload generator; lookups come from collector threads.
class FileStore {
public:
    /// Register (or replace) the image behind a path. Invalidates cached
    /// derived data for that path.
    void register_executable(const std::string& path, ExecutableImage image);

    bool contains(const std::string& path) const;

    /// Throws siren::util::Error when the path is unknown.
    const ExecutableImage& image(const std::string& path) const;

    /// Compute-or-fetch the derived artifacts for a path. Safe to call from
    /// many threads; the first caller computes, the rest wait on the shared
    /// lock only briefly.
    const DerivedInfo& derived(const std::string& path) const;

    std::size_t size() const;

    /// All registered paths (sorted) — used by analytics when enumerating
    /// unique executables.
    std::vector<std::string> paths() const;

private:
    mutable std::shared_mutex mutex_;
    std::unordered_map<std::string, ExecutableImage> images_;
    // unique_ptr keeps DerivedInfo addresses stable across rehashing.
    mutable std::unordered_map<std::string, std::unique_ptr<DerivedInfo>> derived_;
};

/// Compute derived artifacts from raw bytes (exposed for tests and for the
/// preload path where no FileStore exists).
DerivedInfo compute_derived(const std::vector<std::uint8_t>& bytes);

}  // namespace siren::collect
