#pragma once

#include <string>
#include <vector>

namespace siren::collect {

/// Extract imported Python package names from the file paths of a Python
/// interpreter's memory map (paper §4.4): native extension modules appear
/// as mapped .so files under lib-dynload/ or site-packages/.
///
/// Rules, matching how the paper's package names read (heapq, struct,
/// blake2, mpi4py, numpy, ...):
///  - ".../lib-dynload/_heapq.cpython-310-....so"  -> "heapq"
///    (leading underscore of private C implementations is stripped)
///  - ".../site-packages/numpy/core/....so"        -> "numpy"
///  - ".../site-packages/mpi4py.libs/..."          -> "mpi4py"
/// Non-Python mappings (ld.so, libc, the interpreter binary) are ignored.
/// The result is sorted and deduplicated.
std::vector<std::string> extract_python_packages(const std::vector<std::string>& map_paths);

}  // namespace siren::collect
