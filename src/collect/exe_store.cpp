#include "collect/exe_store.hpp"

#include <algorithm>
#include <mutex>

#include "elfio/elfio.hpp"
#include "fuzzy/fuzzy.hpp"
#include "util/error.hpp"

namespace siren::collect {

DerivedInfo compute_derived(const std::vector<std::uint8_t>& bytes) {
    DerivedInfo d;
    d.file_hash = fuzzy::fuzzy_hash(bytes).to_string();

    const auto strings = elfio::printable_strings(bytes);
    d.strings_hash = fuzzy::fuzzy_hash(elfio::strings_blob(strings)).to_string();

    if (elfio::Reader::looks_like_elf(bytes)) {
        try {
            const elfio::Reader reader(bytes);
            d.compilers = reader.comment_strings();
            const auto symbols = reader.global_symbol_names();
            d.symbols_hash = fuzzy::fuzzy_hash(elfio::strings_blob(symbols)).to_string();
            d.is_elf = true;
        } catch (const util::ParseError&) {
            // Malformed ELF: keep the byte-level hashes, leave ELF-derived
            // fields empty. Collection must degrade, not fail.
            d.is_elf = false;
        }
    }
    return d;
}

void FileStore::register_executable(const std::string& path, ExecutableImage image) {
    std::unique_lock lock(mutex_);
    images_[path] = std::move(image);
    derived_.erase(path);
}

bool FileStore::contains(const std::string& path) const {
    std::shared_lock lock(mutex_);
    return images_.find(path) != images_.end();
}

const ExecutableImage& FileStore::image(const std::string& path) const {
    std::shared_lock lock(mutex_);
    auto it = images_.find(path);
    util::require(it != images_.end(), "no executable registered at " + path);
    return it->second;
}

const DerivedInfo& FileStore::derived(const std::string& path) const {
    {
        std::shared_lock lock(mutex_);
        auto it = derived_.find(path);
        if (it != derived_.end()) return *it->second;
    }
    // Compute outside any lock (hashing can take milliseconds), then
    // publish; a concurrent duplicate computation is harmless.
    const ExecutableImage* img = nullptr;
    {
        std::shared_lock lock(mutex_);
        auto it = images_.find(path);
        util::require(it != images_.end(), "no executable registered at " + path);
        img = &it->second;
    }
    auto computed = std::make_unique<DerivedInfo>(compute_derived(img->bytes));
    std::unique_lock lock(mutex_);
    auto [it, inserted] = derived_.try_emplace(path, std::move(computed));
    return *it->second;
}

std::size_t FileStore::size() const {
    std::shared_lock lock(mutex_);
    return images_.size();
}

std::vector<std::string> FileStore::paths() const {
    std::shared_lock lock(mutex_);
    std::vector<std::string> out;
    out.reserve(images_.size());
    for (const auto& [path, image] : images_) out.push_back(path);
    std::sort(out.begin(), out.end());
    return out;
}

}  // namespace siren::collect
