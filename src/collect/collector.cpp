#include "collect/collector.hpp"

#include "elfio/elfio.hpp"
#include "fuzzy/fuzzy.hpp"
#include "hashing/xxhash.hpp"
#include "net/chunker.hpp"
#include "net/codec.hpp"
#include "sim/modules.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace siren::collect {

Collector::Collector(const FileStore& store, net::Transport& transport,
                     CollectorOptions options)
    : store_(store), transport_(transport), options_(options) {}

std::string Collector::exe_path_hash(const std::string& path) {
    return hash::xxh128(path).hex();
}

std::string render_ids_content(const sim::SimProcess& p) {
    std::string out;
    out += "pid=" + std::to_string(p.pid);
    out += " ppid=" + std::to_string(p.ppid);
    out += " uid=" + std::to_string(p.uid);
    out += " gid=" + std::to_string(p.gid);
    out += " procid=" + std::to_string(p.slurm_procid);
    out += " exe=" + p.exe_path;
    return out;
}

std::string render_objects_content(const sim::SimProcess& p) {
    return util::join(p.loaded_objects, "\n");
}

std::string render_modules_content(const sim::SimProcess& p) {
    return sim::ModuleSystem::loadedmodules_value(p.loaded_modules);
}

std::string render_memmap_content(const sim::SimProcess& p) {
    std::vector<std::string> lines;
    lines.reserve(p.memory_map.size());
    for (const auto& entry : p.memory_map) lines.push_back(entry.render());
    return util::join(lines, "\n");
}

std::size_t Collector::send_field(const net::MessageView& header, net::MsgType type,
                                  std::string_view content) {
    // Zero-copy send loop: chunk boundaries are computed arithmetically,
    // each chunk is a view into `content`, and every datagram is encoded
    // into the one reused wire buffer — no per-message heap allocation once
    // the buffer capacity is warm.
    net::MessageView m = header;
    m.type = type;
    const net::ChunkPlan plan = net::plan_chunks(m, content, options_.max_datagram, wire_);
    m.total = plan.total;
    for (std::uint32_t seq = 0; seq < plan.total; ++seq) {
        m.seq = seq;
        const std::size_t begin = static_cast<std::size_t>(seq) * plan.budget;
        m.content = content.empty()
                        ? std::string_view{}
                        : content.substr(begin, std::min(plan.budget, content.size() - begin));
        net::encode_into(m, wire_);
        transport_.send(wire_);
    }
    stats_.datagrams_sent.fetch_add(plan.total, std::memory_order_relaxed);
    return plan.total;
}

std::size_t Collector::collect(const sim::SimProcess& process) noexcept {
    stats_.processes_seen.fetch_add(1, std::memory_order_relaxed);
    if (options_.only_rank_zero && process.slurm_procid != 0) {
        stats_.processes_skipped_rank.fetch_add(1, std::memory_order_relaxed);
        return 0;
    }
    if (!options_.collect_containers && process.in_container) {
        stats_.processes_skipped_container.fetch_add(1, std::memory_order_relaxed);
        return 0;
    }
    try {
        const std::size_t sent = collect_impl(process);
        stats_.processes_collected.fetch_add(1, std::memory_order_relaxed);
        return sent;
    } catch (const std::exception& e) {
        // Graceful failure: the hooked process must never be disturbed.
        stats_.collection_errors.fetch_add(1, std::memory_order_relaxed);
        util::log_debug(std::string("collector: swallowing error: ") + e.what());
        return 0;
    } catch (...) {
        stats_.collection_errors.fetch_add(1, std::memory_order_relaxed);
        return 0;
    }
}

std::size_t Collector::collect_impl(const sim::SimProcess& p) {
    const Scope scope = classify(p);
    const Policy policy = Policy::for_scope(scope);

    const std::string exe_hash = exe_path_hash(p.exe_path);
    net::MessageView header;
    header.job_id = p.job_id;
    header.step_id = p.step_id;
    header.pid = p.pid;
    header.exe_hash = exe_hash;
    header.host = p.host;
    header.time = p.start_time;
    header.layer = net::Layer::kSelf;

    std::size_t sent = 0;

    // Identifiers are always collected; they are the record's backbone.
    sent += send_field(header, net::MsgType::kIds, render_ids_content(p));

    if (policy.file_meta) {
        sent += send_field(header, net::MsgType::kFileMeta, p.exe_meta.render());
    }

    if (policy.libraries) {
        const std::string objects = render_objects_content(p);
        sent += send_field(header, net::MsgType::kObjects, objects);
        sent += send_field(header, net::MsgType::kObjectsHash,
                           fuzzy::fuzzy_hash(objects).to_string());
    }

    if (policy.modules) {
        const std::string modules = render_modules_content(p);
        sent += send_field(header, net::MsgType::kModules, modules);
        sent += send_field(header, net::MsgType::kModulesHash,
                           fuzzy::fuzzy_hash(modules).to_string());
    }

    if (policy.memory_map) {
        const std::string maps = render_memmap_content(p);
        sent += send_field(header, net::MsgType::kMemMap, maps);
        sent += send_field(header, net::MsgType::kMemMapHash,
                           fuzzy::fuzzy_hash(maps).to_string());
    }

    if (policy.compilers || policy.file_hash || policy.strings_hash || policy.symbols_hash) {
        // All four come from the executable image; derived data is memoized
        // per path so repeated executions don't re-hash.
        const DerivedInfo& derived = store_.derived(p.exe_path);
        if (policy.compilers) {
            const std::string compilers = util::join(derived.compilers, "\n");
            sent += send_field(header, net::MsgType::kCompilers, compilers);
            sent += send_field(header, net::MsgType::kCompilersHash,
                               fuzzy::fuzzy_hash(compilers).to_string());
        }
        if (policy.file_hash) {
            sent += send_field(header, net::MsgType::kFileHash, derived.file_hash);
        }
        if (policy.strings_hash) {
            sent += send_field(header, net::MsgType::kStringsHash, derived.strings_hash);
        }
        if (policy.symbols_hash) {
            sent += send_field(header, net::MsgType::kSymbolsHash, derived.symbols_hash);
        }
    }

    // Python input script: its own (sub-)scope on the SCRIPT layer of the
    // same process (merged back into the interpreter row during
    // consolidation).
    if (scope == Scope::kPythonInterpreter && p.python && !p.python->script_path.empty()) {
        const Policy script_policy = Policy::for_scope(Scope::kPythonScript);
        net::MessageView script_header = header;
        script_header.layer = net::Layer::kScript;

        sent += send_field(script_header, net::MsgType::kIds,
                           "script=" + p.python->script_path);
        if (script_policy.file_meta) {
            sent += send_field(script_header, net::MsgType::kFileMeta,
                               p.python->script_meta.render());
        }
        if (script_policy.file_hash) {
            sent += send_field(script_header, net::MsgType::kScriptHash,
                               fuzzy::fuzzy_hash(p.python->script_content).to_string());
        }
    }

    return sent;
}

}  // namespace siren::collect
