#include "collect/python.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace siren::collect {

namespace {

/// "_heapq.cpython-310-x86_64-linux-gnu.so" -> "heapq"
std::string module_from_dynload(std::string_view filename) {
    std::string_view name = filename;
    const std::size_t dot = name.find('.');
    if (dot != std::string_view::npos) name = name.substr(0, dot);
    if (!name.empty() && name.front() == '_') name.remove_prefix(1);
    return std::string(name);
}

/// First path component after the marker directory.
std::string first_component_after(std::string_view path, std::string_view marker) {
    const std::size_t pos = path.find(marker);
    if (pos == std::string_view::npos) return {};
    std::string_view rest = path.substr(pos + marker.size());
    const std::size_t slash = rest.find('/');
    std::string_view component = slash == std::string_view::npos ? rest : rest.substr(0, slash);
    // "mpi4py.libs" and similar vendored-lib dirs belong to the package.
    const std::size_t dot = component.find('.');
    if (dot != std::string_view::npos) component = component.substr(0, dot);
    return std::string(component);
}

}  // namespace

std::vector<std::string> extract_python_packages(const std::vector<std::string>& map_paths) {
    std::vector<std::string> out;
    for (const auto& path : map_paths) {
        if (path.empty()) continue;
        if (util::contains(path, "/lib-dynload/")) {
            const std::string name = module_from_dynload(util::basename(path));
            if (!name.empty()) out.push_back(name);
        } else if (util::contains(path, "/site-packages/")) {
            const std::string name = first_component_after(path, "/site-packages/");
            if (!name.empty()) out.push_back(name);
        }
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

}  // namespace siren::collect
