#pragma once

#include <array>
#include <string_view>

#include "sim/cluster.hpp"

namespace siren::collect {

/// Collection scopes (paper Table 1). A Python *script* is a sub-scope of
/// a Python interpreter process: its data rides on the SCRIPT layer of the
/// same process record.
enum class Scope : std::uint8_t {
    kSystemExecutable = 0,
    kUserExecutable = 1,
    kPythonInterpreter = 2,
    kPythonScript = 3,
};

std::string_view to_string(Scope scope);

/// What to collect for one scope — the exact ✓/✗ matrix of Table 1.
/// Rationale: hashing /usr/bin/bash on every one of 161k bash launches
/// would be pure overhead; system executables are fully known to operators.
struct Policy {
    bool file_meta = false;
    bool libraries = false;
    bool modules = false;
    bool compilers = false;
    bool memory_map = false;
    bool file_hash = false;
    bool strings_hash = false;
    bool symbols_hash = false;

    static Policy for_scope(Scope scope);
};

/// Classify a process into its collection scope (paper §3.1): a Python
/// interpreter from a system directory is Python; one installed in a user
/// directory counts as a plain user executable.
Scope classify(const sim::SimProcess& process);

}  // namespace siren::collect
