#include "collect/policy.hpp"

namespace siren::collect {

std::string_view to_string(Scope scope) {
    switch (scope) {
        case Scope::kSystemExecutable: return "system";
        case Scope::kUserExecutable: return "user";
        case Scope::kPythonInterpreter: return "python-interpreter";
        case Scope::kPythonScript: return "python-script";
    }
    return "?";
}

Policy Policy::for_scope(Scope scope) {
    Policy p;
    switch (scope) {
        case Scope::kSystemExecutable:
            p.file_meta = true;
            p.libraries = true;
            break;
        case Scope::kUserExecutable:
            p.file_meta = true;
            p.libraries = true;
            p.modules = true;
            p.compilers = true;
            p.memory_map = true;
            p.file_hash = true;
            p.strings_hash = true;
            p.symbols_hash = true;
            break;
        case Scope::kPythonInterpreter:
            p.file_meta = true;
            p.libraries = true;
            p.memory_map = true;
            break;
        case Scope::kPythonScript:
            p.file_meta = true;
            p.file_hash = true;
            break;
    }
    return p;
}

Scope classify(const sim::SimProcess& process) {
    if (process.is_python()) return Scope::kPythonInterpreter;
    return process.path_category() == sim::PathCategory::kSystem ? Scope::kSystemExecutable
                                                                 : Scope::kUserExecutable;
}

}  // namespace siren::collect
