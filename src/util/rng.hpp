#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace siren::util {

/// splitmix64 step; used to expand a single seed into xoshiro state and as a
/// cheap stateless mixer. Public because the workload generator derives
/// per-entity sub-seeds with it.
std::uint64_t splitmix64(std::uint64_t& state);

/// Mix a value once (stateless convenience over splitmix64).
std::uint64_t mix64(std::uint64_t v);

/// Deterministic PRNG: xoshiro256** seeded via splitmix64.
///
/// Every randomized component in SIREN (workload generator, binary
/// synthesizer, lossy channel) takes an explicit Rng or seed so experiments
/// are bit-reproducible; nothing uses std::random_device.
class Rng {
public:
    explicit Rng(std::uint64_t seed = 0x5EEDu);

    /// Uniform 64-bit value.
    std::uint64_t next();

    /// Uniform in [0, bound) with rejection to avoid modulo bias; bound > 0.
    std::uint64_t below(std::uint64_t bound);

    /// Uniform in [lo, hi] inclusive.
    std::int64_t range(std::int64_t lo, std::int64_t hi);

    /// Uniform double in [0, 1).
    double uniform();

    /// True with probability p (clamped to [0,1]).
    bool chance(double p);

    /// Pick a uniformly random element index for a container of size n (n>0).
    std::size_t index(std::size_t n);

    /// Random lowercase alphanumeric identifier of length n.
    std::string ident(std::size_t n);

    /// Random bytes.
    std::vector<std::uint8_t> bytes(std::size_t n);

    /// Derive an independent child generator; stable for a given label.
    Rng fork(std::uint64_t label) const;

    /// Sample an integer from a (truncated) geometric-ish long-tail around
    /// `mean`, at least `lo`; used for job/process size draws.
    std::int64_t long_tail(std::int64_t lo, double mean);

private:
    std::uint64_t s_[4];
};

}  // namespace siren::util
