#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace siren::util {

/// Fixed-size worker pool with a shared task queue.
///
/// SIREN uses it for the embarrassingly parallel stages: fuzzy hashing many
/// executables, all-pairs similarity search, and campaign generation sharded
/// by user. Tasks must not throw; wrap fallible work and surface errors
/// through the returned future.
class ThreadPool {
public:
    /// Spawns `threads` workers (0 -> hardware_concurrency, at least 1).
    explicit ThreadPool(std::size_t threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    std::size_t size() const { return workers_.size(); }

    /// Enqueue a task; returns a future for its result. For futureless
    /// void fan-out, parallel_for() is cheaper — it skips the per-task
    /// packaged_task/shared_ptr machinery entirely.
    template <typename F>
    auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
        using R = std::invoke_result_t<F>;
        auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
        auto fut = task->get_future();
        enqueue([task] { (*task)(); });
        return fut;
    }

    /// Run fn(i) for i in [0, n) across the pool with chunked static
    /// scheduling; blocks until all iterations complete. Exceptions from any
    /// chunk are rethrown (first one wins). Chunk tasks share one
    /// stack-allocated completion latch and capture only (pointer, index) —
    /// small enough for std::function's inline storage, so the fan-out
    /// allocates nothing per task.
    ///
    /// `grain` is the number of consecutive indices one queued task runs
    /// (0 = auto: max(1, n / (8 * threads)) — about eight chunks per worker,
    /// enough slack for load balancing while the per-task queue/latch
    /// overhead amortizes over the chunk). Tiny per-item closures should
    /// pick a grain large enough that the loop body dominates the per-index
    /// std::function dispatch.
    void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                      std::size_t grain = 0);

    /// Chunk-granular variant: chunk_fn(begin, end, chunk_index) is invoked
    /// once per chunk with chunk_index < chunk_count(n, grain), so callers
    /// can keep per-chunk state (bounded top-n heaps, local accumulators)
    /// and merge deterministically afterwards — chunk geometry depends only
    /// on (n, grain, size()), never on scheduling.
    void parallel_for_chunks(
        std::size_t n, const std::function<void(std::size_t, std::size_t, std::size_t)>& chunk_fn,
        std::size_t grain = 0);

    /// Number of chunks parallel_for_chunks will produce for (n, grain).
    std::size_t chunk_count(std::size_t n, std::size_t grain = 0) const;

private:
    void worker_loop();
    void enqueue(std::function<void()> task);

    std::vector<std::thread> workers_;
    std::queue<std::function<void()>> tasks_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stopping_ = false;
};

/// Convenience: parallel_for on a transient pool when no pool is supplied.
/// Falls back to a plain loop when n is small.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t threads = 0);

}  // namespace siren::util
