#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace siren::util {

/// Read an environment variable; nullopt when unset.
std::optional<std::string> get_env(const std::string& name);

/// Read with a default value.
std::string get_env_or(const std::string& name, std::string_view fallback);

/// Parse numeric environment knobs (SIREN_SCALE, SIREN_SEED, ...); returns
/// fallback when unset or unparsable.
double get_env_double(const std::string& name, double fallback);
std::int64_t get_env_int(const std::string& name, std::int64_t fallback);

}  // namespace siren::util
