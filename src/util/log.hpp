#pragma once

#include <string>

namespace siren::util {

/// Severity levels for the library logger.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Minimal process-wide logger. Default threshold is Warn so library users
/// see problems but no chatter; benches raise it to Info via SIREN_LOG.
/// Thread-safe (single mutex around the sink).
void set_log_level(LogLevel level);
LogLevel log_level();

void log_message(LogLevel level, const std::string& message);

inline void log_debug(const std::string& m) { log_message(LogLevel::kDebug, m); }
inline void log_info(const std::string& m) { log_message(LogLevel::kInfo, m); }
inline void log_warn(const std::string& m) { log_message(LogLevel::kWarn, m); }
inline void log_error(const std::string& m) { log_message(LogLevel::kError, m); }

/// Configure from the SIREN_LOG environment variable
/// (debug|info|warn|error); no-op when unset.
void init_log_from_env();

}  // namespace siren::util
