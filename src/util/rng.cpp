#include "util/rng.hpp"

#include <cmath>

namespace siren::util {

std::uint64_t splitmix64(std::uint64_t& state) {
    std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

std::uint64_t mix64(std::uint64_t v) {
    std::uint64_t s = v;
    return splitmix64(s);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
    // Lemire-style rejection: retry while in the biased zone.
    const std::uint64_t threshold = (0 - bound) % bound;
    while (true) {
        const std::uint64_t r = next();
        if (r >= threshold) return r % bound;
    }
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
}

double Rng::uniform() {
    // 53 random mantissa bits.
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
}

std::size_t Rng::index(std::size_t n) {
    return static_cast<std::size_t>(below(n));
}

std::string Rng::ident(std::size_t n) {
    static constexpr char kChars[] = "abcdefghijklmnopqrstuvwxyz0123456789";
    std::string out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) out += kChars[below(36)];
    return out;
}

std::vector<std::uint8_t> Rng::bytes(std::size_t n) {
    std::vector<std::uint8_t> out(n);
    std::size_t i = 0;
    while (i + 8 <= n) {
        const std::uint64_t v = next();
        for (int k = 0; k < 8; ++k) out[i + static_cast<std::size_t>(k)] = static_cast<std::uint8_t>(v >> (8 * k));
        i += 8;
    }
    if (i < n) {
        const std::uint64_t v = next();
        for (int k = 0; i < n; ++i, ++k) out[i] = static_cast<std::uint8_t>(v >> (8 * k));
    }
    return out;
}

Rng Rng::fork(std::uint64_t label) const {
    std::uint64_t h = s_[0] ^ rotl(s_[3], 13) ^ mix64(label);
    return Rng(mix64(h));
}

std::int64_t Rng::long_tail(std::int64_t lo, double mean) {
    if (mean <= static_cast<double>(lo)) return lo;
    // Exponential with the requested mean above the floor.
    const double u = uniform();
    const double extra = -std::log(1.0 - u) * (mean - static_cast<double>(lo));
    return lo + static_cast<std::int64_t>(extra);
}

}  // namespace siren::util
