#include "util/table.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace siren::util {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {
    require(!headers_.empty(), "TextTable needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
    require(cells.size() == headers_.size(), "TextTable row width mismatch");
    rows_.push_back(std::move(cells));
}

std::string TextTable::cell(std::uint64_t v) { return with_commas(v); }

std::string TextTable::cell(std::int64_t v) {
    if (v < 0) return "-" + with_commas(static_cast<std::uint64_t>(-v));
    return with_commas(static_cast<std::uint64_t>(v));
}

std::string TextTable::cell(double v, int digits) { return fixed(v, digits); }

std::string TextTable::render() const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }

    auto emit_row = [&](const std::vector<std::string>& cells, std::string& out) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            out += cells[c];
            if (c + 1 < cells.size()) {
                out.append(widths[c] - cells[c].size() + 2, ' ');
            }
        }
        out += '\n';
    };

    std::string out;
    emit_row(headers_, out);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c) {
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    }
    out.append(total, '-');
    out += '\n';
    for (const auto& row : rows_) emit_row(row, out);
    return out;
}

std::string TextTable::render_tsv() const {
    std::string out = join(headers_, "\t") + "\n";
    for (const auto& row : rows_) out += join(row, "\t") + "\n";
    return out;
}

}  // namespace siren::util
