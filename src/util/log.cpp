#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

#include "util/env.hpp"
#include "util/strings.hpp"

namespace siren::util {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_sink_mutex;

const char* level_name(LogLevel level) {
    switch (level) {
        case LogLevel::kDebug: return "DEBUG";
        case LogLevel::kInfo: return "INFO";
        case LogLevel::kWarn: return "WARN";
        case LogLevel::kError: return "ERROR";
    }
    return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

void log_message(LogLevel level, const std::string& message) {
    if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) return;
    std::lock_guard lock(g_sink_mutex);
    std::fprintf(stderr, "[siren %s] %s\n", level_name(level), message.c_str());
}

void init_log_from_env() {
    auto v = get_env("SIREN_LOG");
    if (!v) return;
    const std::string s = to_lower(*v);
    if (s == "debug") set_log_level(LogLevel::kDebug);
    else if (s == "info") set_log_level(LogLevel::kInfo);
    else if (s == "warn") set_log_level(LogLevel::kWarn);
    else if (s == "error") set_log_level(LogLevel::kError);
}

}  // namespace siren::util
