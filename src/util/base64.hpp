#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace siren::util {

/// The 64-character alphabet used both by RFC 4648 base64 and by SSDeep
/// digest characters (SSDeep indexes this table with `hash % 64`).
inline constexpr char kBase64Alphabet[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Standard base64 encoding with '=' padding.
std::string base64_encode(const std::uint8_t* data, std::size_t size);
std::string base64_encode(std::string_view s);

/// Decode; throws siren::util::ParseError on malformed input.
std::vector<std::uint8_t> base64_decode(std::string_view s);

}  // namespace siren::util
