#include "util/interner.hpp"

#include <mutex>

namespace siren::util {

StringInterner::Shard& StringInterner::shard_for(std::string_view s) {
    return shards_[Hash{}(s) % kShards];
}

std::string_view StringInterner::intern(std::string_view s) {
    Shard& shard = shard_for(s);
    {
        std::shared_lock lock(shard.mutex);
        const auto it = shard.pool.find(s);
        if (it != shard.pool.end()) return *it;
    }
    std::unique_lock lock(shard.mutex);
    return *shard.pool.emplace(s).first;
}

std::size_t StringInterner::size() const {
    std::size_t total = 0;
    for (const Shard& shard : shards_) {
        std::shared_lock lock(shard.mutex);
        total += shard.pool.size();
    }
    return total;
}

StringInterner& StringInterner::global() {
    static StringInterner* instance = new StringInterner();  // leaked: views outlive statics
    return *instance;
}

}  // namespace siren::util
