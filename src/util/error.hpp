#pragma once

#include <stdexcept>
#include <string>

namespace siren::util {

/// Base exception for all SIREN library errors. Subsystems derive their own
/// error types from this so callers can catch per-layer or catch-all.
class Error : public std::runtime_error {
public:
    explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when parsing malformed input (wire messages, ELF images, digests).
class ParseError : public Error {
public:
    explicit ParseError(const std::string& what) : Error("parse error: " + what) {}
};

/// Raised on OS-level failures (sockets, files). Carries errno text.
class SystemError : public Error {
public:
    explicit SystemError(const std::string& what) : Error("system error: " + what) {}
};

/// Precondition check that throws instead of aborting; used on public API
/// boundaries where caller input is untrusted.
inline void require(bool cond, const std::string& message) {
    if (!cond) throw Error(message);
}

}  // namespace siren::util
