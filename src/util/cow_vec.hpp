#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

namespace siren::util {

/// Chunked copy-on-write vector: the storage primitive behind O(delta)
/// snapshot publication (docs/recognition_service.md).
///
/// Elements live in fixed-size chunks held through shared_ptr, so copying
/// the whole container is O(size / RowsPerChunk) pointer copies — the
/// chunks themselves are shared structurally between the copies. Mutation
/// goes through an ownership protocol instead of refcount inspection:
/// each instance tracks, per chunk, whether it may write the chunk in
/// place (`owned_`). Copying — in either direction — clears the flags on
/// *both* instances, because after a copy every chunk is reachable from
/// two containers; the next mutation through either side clones the
/// touched chunk first. The flags are plain bools (no atomics), which is
/// race-free under the service's discipline: exactly one thread copies or
/// mutates a given mutable container (the writer thread owns the master
/// registry; published copies are immutable), so flag reads and writes
/// never interleave across threads.
///
/// Each chunk carries a memoized content hash for incremental
/// fingerprinting (Registry::fingerprint): chunk_memo() returns the cached
/// value or computes and caches it. The memo is an atomic because
/// *readers* of shared immutable chunks may compute it concurrently — the
/// benign double-compute pattern (0 = uncomputed sentinel); mutation paths
/// reset it, and cloned chunks start unset.
template <typename T, std::size_t RowsPerChunk>
class CowVec {
    static_assert(RowsPerChunk > 0 && (RowsPerChunk & (RowsPerChunk - 1)) == 0,
                  "RowsPerChunk must be a power of two (index math compiles to shifts)");

public:
    CowVec() = default;

    CowVec(const CowVec& other) : chunks_(other.chunks_), size_(other.size_) {
        owned_.assign(chunks_.size(), false);
        other.owned_.assign(other.chunks_.size(), false);
    }
    CowVec& operator=(const CowVec& other) {
        if (this == &other) return *this;
        chunks_ = other.chunks_;
        size_ = other.size_;
        owned_.assign(chunks_.size(), false);
        other.owned_.assign(other.chunks_.size(), false);
        return *this;
    }
    CowVec(CowVec&&) noexcept = default;
    CowVec& operator=(CowVec&&) noexcept = default;

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    const T& operator[](std::size_t i) const {
        return chunks_[i / RowsPerChunk]->items[i % RowsPerChunk];
    }

    const T& at(std::size_t i) const {
        if (i >= size_) throw std::out_of_range("CowVec::at: index out of range");
        return (*this)[i];
    }

    /// Mutable access to element i; clones the containing chunk first
    /// unless this instance already owns it. Invalidates the chunk memo.
    T& mutate(std::size_t i) {
        Chunk& chunk = owned_chunk(i / RowsPerChunk);
        chunk.memo.store(0, std::memory_order_relaxed);
        return chunk.items[i % RowsPerChunk];
    }

    void push_back(T value) {
        if (chunks_.empty() || chunks_.back()->items.size() == RowsPerChunk) {
            chunks_.push_back(std::make_shared<Chunk>());
            owned_.push_back(true);
        }
        Chunk& chunk = owned_chunk(chunks_.size() - 1);
        chunk.memo.store(0, std::memory_order_relaxed);
        chunk.items.push_back(std::move(value));
        ++size_;
    }

    // ---- chunk introspection (fingerprints, sharing stats, tests) -------

    static constexpr std::size_t chunk_rows() { return RowsPerChunk; }
    std::size_t chunk_count() const { return chunks_.size(); }
    std::size_t chunk_base(std::size_t c) const { return c * RowsPerChunk; }
    const std::vector<T>& chunk_items(std::size_t c) const { return chunks_[c]->items; }

    /// Stable identity of chunk c's current storage — pointer-equal across
    /// two containers iff they structurally share the chunk.
    const void* chunk_identity(std::size_t c) const { return chunks_[c].get(); }

    /// Chunks shared (pointer-identical, position-wise) with another
    /// container — chunks never reorder, so positional compare is exact.
    std::size_t shared_chunks_with(const CowVec& other) const {
        const std::size_t n = std::min(chunks_.size(), other.chunks_.size());
        std::size_t shared = 0;
        for (std::size_t c = 0; c < n; ++c) {
            if (chunks_[c] == other.chunks_[c]) ++shared;
        }
        return shared;
    }

    /// Memoized per-chunk content hash: returns the cached value, or runs
    /// `compute(first_element_index, items)` and caches its result. Racing
    /// readers of a shared immutable chunk compute the same deterministic
    /// value, so the unsynchronized double-compute is benign (0 doubles as
    /// "not yet computed"; a true zero hash is remapped to 1).
    template <typename Fn>
    std::uint64_t chunk_memo(std::size_t c, Fn&& compute) const {
        const Chunk& chunk = *chunks_[c];
        std::uint64_t value = chunk.memo.load(std::memory_order_relaxed);
        if (value != 0) return value;
        value = compute(chunk_base(c), chunk.items);
        if (value == 0) value = 1;
        chunk.memo.store(value, std::memory_order_relaxed);
        return value;
    }

private:
    struct Chunk {
        std::vector<T> items;
        mutable std::atomic<std::uint64_t> memo{0};  ///< 0 = uncomputed

        Chunk() = default;
        Chunk(const Chunk& other) : items(other.items) {}  // clone starts unmemoized
    };

    Chunk& owned_chunk(std::size_t c) {
        if (!owned_[c]) {
            chunks_[c] = std::make_shared<Chunk>(*chunks_[c]);
            owned_[c] = true;
        }
        return *chunks_[c];
    }

    std::vector<std::shared_ptr<Chunk>> chunks_;
    /// Which chunks this instance may mutate in place; mutable because a
    /// copy must demote the *source* to copy-on-write too.
    mutable std::vector<bool> owned_;
    std::size_t size_ = 0;
};

}  // namespace siren::util
