#pragma once

#include <array>
#include <cstddef>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_set>

namespace siren::util {

/// Deduplicating string pool with stable storage.
///
/// intern() returns a view of the pooled copy; every later intern() of equal
/// content returns a view of the *same* bytes, so interned views can be
/// compared by (data, size) identity instead of content. Pooled strings live
/// as long as the interner — the campaign aggregates use the process-wide
/// global() pool so interned keys survive shard teardown and merge without
/// copying.
///
/// Thread-safe; the table is sharded by hash and reads take a shared lock,
/// so the steady state (string already pooled) is contention-free across
/// collector shards.
class StringInterner {
public:
    StringInterner() = default;
    StringInterner(const StringInterner&) = delete;
    StringInterner& operator=(const StringInterner&) = delete;

    /// Pool `s` (copying it on first sight) and return the canonical view.
    std::string_view intern(std::string_view s);

    /// Distinct strings pooled so far.
    std::size_t size() const;

    /// Process-wide pool (never destroyed during normal operation).
    static StringInterner& global();

private:
    struct Hash {
        using is_transparent = void;
        std::size_t operator()(std::string_view s) const noexcept {
            return std::hash<std::string_view>{}(s);
        }
    };
    struct Shard {
        mutable std::shared_mutex mutex;
        // node-based: element addresses survive rehash, so views stay valid.
        std::unordered_set<std::string, Hash, std::equal_to<>> pool;
    };

    static constexpr std::size_t kShards = 8;
    Shard& shard_for(std::string_view s);
    std::array<Shard, kShards> shards_;
};

/// Fast equality for two views returned by the same interner: identity
/// implies equality, and distinct interned strings never share storage.
inline bool interned_eq(std::string_view a, std::string_view b) {
    return a.data() == b.data() && a.size() == b.size();
}

}  // namespace siren::util
