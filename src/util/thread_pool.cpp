#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

namespace siren::util {

ThreadPool::ThreadPool(std::size_t threads) {
    if (threads == 0) {
        threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
    }
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard lock(mutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
    while (true) {
        std::function<void()> task;
        {
            std::unique_lock lock(mutex_);
            cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
            if (stopping_ && tasks_.empty()) return;
            task = std::move(tasks_.front());
            tasks_.pop();
        }
        task();
    }
}

void ThreadPool::enqueue(std::function<void()> task) {
    {
        std::lock_guard lock(mutex_);
        tasks_.push(std::move(task));
    }
    cv_.notify_one();
}

namespace {

/// Auto grain: about eight chunks per worker — small enough to rebalance a
/// skewed workload, large enough that the queue/latch cost per task is
/// noise next to the chunk body.
std::size_t resolve_grain(std::size_t n, std::size_t grain, std::size_t threads) {
    if (grain != 0) return grain;
    return std::max<std::size_t>(1, n / (8 * std::max<std::size_t>(1, threads)));
}

/// Shared state of one parallel_for call: the chunk function, the chunk
/// geometry and a completion latch. Chunk tasks capture only a pointer to
/// this (stack-lived — parallel_for outlives every task) plus their index.
struct FanOut {
    const std::function<void(std::size_t, std::size_t, std::size_t)>* chunk_fn = nullptr;
    std::size_t n = 0;
    std::size_t grain = 0;

    std::mutex mutex;
    std::condition_variable done;
    std::size_t remaining = 0;
    std::atomic<bool> failed{false};
    std::exception_ptr first_error;

    void run_chunk(std::size_t t) {
        const std::size_t begin = t * grain;
        const std::size_t end = std::min(n, begin + grain);
        try {
            if (!failed.load(std::memory_order_relaxed)) {
                (*chunk_fn)(begin, end, t);
            }
        } catch (...) {
            std::lock_guard lock(mutex);
            if (!failed.exchange(true)) first_error = std::current_exception();
        }
        std::lock_guard lock(mutex);
        if (--remaining == 0) done.notify_one();
    }
};

}  // namespace

std::size_t ThreadPool::chunk_count(std::size_t n, std::size_t grain) const {
    if (n == 0) return 0;
    const std::size_t g = resolve_grain(n, grain, size());
    return (n + g - 1) / g;
}

void ThreadPool::parallel_for_chunks(
    std::size_t n, const std::function<void(std::size_t, std::size_t, std::size_t)>& chunk_fn,
    std::size_t grain) {
    if (n == 0) return;

    FanOut state;
    state.chunk_fn = &chunk_fn;
    state.n = n;
    state.grain = resolve_grain(n, grain, size());
    const std::size_t tasks = (n + state.grain - 1) / state.grain;
    state.remaining = tasks;

    std::size_t enqueued = 0;
    try {
        for (std::size_t t = 0; t < tasks; ++t) {
            enqueue([&state, t] { state.run_chunk(t); });
            ++enqueued;
        }
    } catch (...) {
        // Enqueue failed partway: tasks already queued still reference the
        // stack-lived state, so settle the latch for the never-enqueued
        // remainder and wait the queued ones out before unwinding.
        std::unique_lock lock(state.mutex);
        state.remaining -= tasks - enqueued;
        state.done.wait(lock, [&state] { return state.remaining == 0; });
        throw;
    }
    {
        std::unique_lock lock(state.mutex);
        state.done.wait(lock, [&state] { return state.remaining == 0; });
    }
    if (state.first_error) std::rethrow_exception(state.first_error);
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                              std::size_t grain) {
    if (n == 0) return;
    // The wrapper captures two pointers — inside std::function's inline
    // storage, so the per-call fan-out still allocates nothing per task.
    // `failed` keeps per-index cancellation: once any index throws, every
    // in-flight chunk abandons at its next iteration instead of finishing
    // its whole range.
    std::atomic<bool> failed{false};
    const std::function<void(std::size_t, std::size_t, std::size_t)> chunk_fn =
        [&fn, &failed](std::size_t begin, std::size_t end, std::size_t) {
            for (std::size_t i = begin;
                 i < end && !failed.load(std::memory_order_relaxed); ++i) {
                try {
                    fn(i);
                } catch (...) {
                    failed.store(true, std::memory_order_relaxed);
                    throw;
                }
            }
        };
    parallel_for_chunks(n, chunk_fn, grain);
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn, std::size_t threads) {
    if (n < 2) {
        for (std::size_t i = 0; i < n; ++i) fn(i);
        return;
    }
    ThreadPool pool(threads);
    pool.parallel_for(n, fn);
}

}  // namespace siren::util
