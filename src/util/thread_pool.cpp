#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

namespace siren::util {

ThreadPool::ThreadPool(std::size_t threads) {
    if (threads == 0) {
        threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
    }
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard lock(mutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
    while (true) {
        std::function<void()> task;
        {
            std::unique_lock lock(mutex_);
            cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
            if (stopping_ && tasks_.empty()) return;
            task = std::move(tasks_.front());
            tasks_.pop();
        }
        task();
    }
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
    if (n == 0) return;
    const std::size_t nthreads = std::min(size(), n);
    const std::size_t chunk = (n + nthreads - 1) / nthreads;

    std::atomic<bool> failed{false};
    std::exception_ptr first_error;
    std::mutex error_mutex;

    std::vector<std::future<void>> futures;
    futures.reserve(nthreads);
    for (std::size_t t = 0; t < nthreads; ++t) {
        const std::size_t begin = t * chunk;
        const std::size_t end = std::min(n, begin + chunk);
        if (begin >= end) break;
        futures.push_back(submit([&, begin, end] {
            try {
                for (std::size_t i = begin; i < end && !failed.load(std::memory_order_relaxed); ++i) {
                    fn(i);
                }
            } catch (...) {
                std::lock_guard lock(error_mutex);
                if (!failed.exchange(true)) first_error = std::current_exception();
            }
        }));
    }
    for (auto& f : futures) f.wait();
    if (first_error) std::rethrow_exception(first_error);
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn, std::size_t threads) {
    if (n < 2) {
        for (std::size_t i = 0; i < n; ++i) fn(i);
        return;
    }
    ThreadPool pool(threads);
    pool.parallel_for(n, fn);
}

}  // namespace siren::util
