#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace siren::util::simd {

/// Vector width the similarity hot path runs at, decided once per process
/// by cpuid. Levels are ordered: a higher level implies every capability of
/// the lower ones, so clamping (forcing) can only move down.
enum class Level : int {
    kScalar = 0,  ///< portable fallback, also the oracle for parity tests
    kSse2 = 1,    ///< x86-64 baseline: 2x 64-bit lanes
    kAvx2 = 2,    ///< 4x 64-bit lanes
};

/// What the hardware supports (cached after the first call).
Level detected_level();

/// The level the kernels actually dispatch on: detected_level() clamped by
/// the SIREN_FORCE_SCALAR=1 environment override (read once) and by any
/// force_level() in effect.
Level active_level();

/// Clamp active_level() to at most `level` (tests and benches pin the
/// scalar path on AVX2 boxes; forcing above detected_level() is a no-op).
void force_level(Level level);

/// Undo force_level(); the environment override still applies.
void clear_forced_level();

/// "scalar" / "sse2" / "avx2".
std::string_view level_name(Level level);

/// Signature prefilter, vectorized: bit i of `bitmap` is set when
/// `sigs[i] & probe_sig != 0`. `bitmap` must hold (n + 63) / 64 words; all
/// of them (including tail bits past n) are overwritten, tail bits zero.
void sig_gate_bitmap(const std::uint64_t* sigs, std::size_t n, std::uint64_t probe_sig,
                     std::uint64_t* bitmap, Level level);

/// Two-column variant for the equal-block-size pairing: bit i is set when
/// either part's signature AND fires — `(sigs_a[i] & probe_a) != 0 ||
/// (sigs_b[i] & probe_b) != 0`. Same bitmap contract as sig_gate_bitmap.
void sig_gate_bitmap_or(const std::uint64_t* sigs_a, std::uint64_t probe_a,
                        const std::uint64_t* sigs_b, std::uint64_t probe_b, std::size_t n,
                        std::uint64_t* bitmap, Level level);

/// Do two sorted u64 arrays (duplicates allowed) share an element? The
/// exact gram confirm of the similarity scan. AVX2 compares 4x4 blocks
/// all-pairs per step; heavily asymmetric inputs (8x or more) gallop the
/// small side through the large one; everything else is the classic
/// two-pointer merge. All variants return identical answers.
bool sorted_intersect(const std::uint64_t* a, std::size_t na, const std::uint64_t* b,
                      std::size_t nb, Level level);

}  // namespace siren::util::simd
