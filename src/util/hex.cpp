#include "util/hex.hpp"

#include "util/error.hpp"

namespace siren::util {

namespace {
constexpr char kDigits[] = "0123456789abcdef";

int nibble(char c) {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
}
}  // namespace

std::string hex_encode(const std::uint8_t* data, std::size_t size) {
    std::string out;
    out.reserve(size * 2);
    for (std::size_t i = 0; i < size; ++i) {
        out += kDigits[data[i] >> 4];
        out += kDigits[data[i] & 0xf];
    }
    return out;
}

std::string hex_encode(const std::vector<std::uint8_t>& data) {
    return hex_encode(data.data(), data.size());
}

std::string hex_u64(std::uint64_t v) {
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = kDigits[v & 0xf];
        v >>= 4;
    }
    return out;
}

std::vector<std::uint8_t> hex_decode(std::string_view s) {
    if (s.size() % 2 != 0) throw ParseError("hex string has odd length");
    std::vector<std::uint8_t> out;
    out.reserve(s.size() / 2);
    for (std::size_t i = 0; i < s.size(); i += 2) {
        const int hi = nibble(s[i]);
        const int lo = nibble(s[i + 1]);
        if (hi < 0 || lo < 0) throw ParseError("hex string has non-hex digit");
        out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
    }
    return out;
}

}  // namespace siren::util
