#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace siren::util {

/// A rendered result table: the common exchange format between
/// siren::analytics (which computes paper tables) and the bench binaries
/// (which print them in the paper's row order).
class TextTable {
public:
    explicit TextTable(std::vector<std::string> headers);

    /// Append one row; must have exactly as many cells as there are headers.
    void add_row(std::vector<std::string> cells);

    /// Convenience cell formatters.
    static std::string cell(std::uint64_t v);
    static std::string cell(std::int64_t v);
    static std::string cell(double v, int digits = 1);

    std::size_t rows() const { return rows_.size(); }
    std::size_t cols() const { return headers_.size(); }
    const std::vector<std::string>& header() const { return headers_; }
    const std::vector<std::string>& row(std::size_t i) const { return rows_.at(i); }

    /// Aligned monospace rendering with a header separator.
    std::string render() const;

    /// Tab-separated rendering (easy to diff / import).
    std::string render_tsv() const;

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace siren::util
