#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

// Named failpoints: deterministic fault injection at the I/O seams.
//
// A failpoint is a named hook compiled into a hot path:
//
//     if (auto fp = SIREN_FAILPOINT("storage.segment.write")) {
//         errno = fp.err;
//         return -1;  // behave as if write() failed
//     }
//
// When the build does not define SIREN_FAILPOINTS the macro expands to a
// constant empty Hit, the branch folds away, and the shipped binary pays
// nothing — the no-overhead gate in CI holds the build to that promise.
// When compiled in, an unarmed failpoint costs one relaxed atomic load.
//
// Activation is programmatic (activate/deactivate below, used by the chaos
// harness) or by environment at first use:
//
//     SIREN_FAILPOINTS="storage.segment.fsync=error(5)%10;net.tcp.send=short-write"
//
// Spec grammar, per point:
//     error(ERRNO)   fail the call with this errno
//     delay(USEC)    sleep USEC microseconds, then pass through
//     short-write    truncate the I/O to a prefix
//     corrupt-byte   flip one byte of the payload
// optionally suffixed with %N to fire only every Nth hit (one-in-N).
//
// The catalog of wired sites lives in docs/robustness.md.
namespace siren::util::failpoint {

/// What an armed failpoint asks the call site to do.
enum class Action : std::uint8_t {
    kNone = 0,    ///< pass through (not armed, skipped by %N, or delay-only)
    kError,       ///< fail with errno `err`
    kShortWrite,  ///< perform a truncated I/O, then take the partial path
    kCorrupt,     ///< flip a byte of the in-flight payload
};

/// One eval() result. Contextually false when nothing should be injected,
/// so sites read `if (auto fp = SIREN_FAILPOINT("name")) { ... }`.
struct Hit {
    Action action = Action::kNone;
    int err = 0;  ///< errno to report for kError (0 defaults to EIO at sites)
    explicit operator bool() const { return action != Action::kNone; }
};

/// True when the build carries the injection hooks (SIREN_FAILPOINTS=1).
constexpr bool compiled_in() {
#if defined(SIREN_FAILPOINTS) && SIREN_FAILPOINTS
    return true;
#else
    return false;
#endif
}

/// Arm `name` with `spec` (grammar above). Throws util::ParseError on a
/// malformed spec. Re-arming an existing point resets its counters.
void activate(const std::string& name, std::string_view spec);

/// Disarm one point (counters are dropped) / every point.
void deactivate(const std::string& name);
void clear();

/// Parse and arm a ";"-separated "name=spec" list — the SIREN_FAILPOINTS
/// environment format. Throws util::ParseError on a malformed entry.
void activate_from_spec_list(std::string_view list);

/// Counters for one armed point: `hits` counts evals that reached it,
/// `fires` the subset that actually injected (differs under %N and for
/// delay points only via hits==fires accounting of the sleep).
struct Counter {
    std::string name;
    std::uint64_t hits = 0;
    std::uint64_t fires = 0;
};

/// Snapshot of every armed point, name-sorted (STATS export order).
std::vector<Counter> counters();

/// Fires so far for `name` (0 when not armed). Chaos-harness assertions
/// use this to prove a scheduled fault actually landed.
std::uint64_t fire_count(const std::string& name);

/// Implementation hook behind SIREN_FAILPOINT(); call sites use the macro.
Hit eval(const char* name);

}  // namespace siren::util::failpoint

#if defined(SIREN_FAILPOINTS) && SIREN_FAILPOINTS
#define SIREN_FAILPOINT(name) ::siren::util::failpoint::eval(name)
#else
#define SIREN_FAILPOINT(name) (::siren::util::failpoint::Hit{})
#endif
