#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace siren::util {

/// Lowercase hex encoding of a byte range.
std::string hex_encode(const std::uint8_t* data, std::size_t size);
std::string hex_encode(const std::vector<std::uint8_t>& data);

/// Hex of a 64-bit value, fixed 16 digits, big-endian digit order.
std::string hex_u64(std::uint64_t v);

/// Decode; throws siren::util::ParseError on odd length or non-hex digits.
std::vector<std::uint8_t> hex_decode(std::string_view s);

}  // namespace siren::util
