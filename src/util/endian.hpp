#pragma once

#include <cstdint>
#include <string>

namespace siren::util {

/// Little-endian u32 framing helpers, shared by the segment record format
/// (storage/segment.cpp, serve/segment_tail.cpp) and the query protocol
/// (serve/query_protocol.cpp) — one definition, not one per scan loop.

inline void put_u32le(char* out, std::uint32_t v) {
    out[0] = static_cast<char>(v & 0xFF);
    out[1] = static_cast<char>((v >> 8) & 0xFF);
    out[2] = static_cast<char>((v >> 16) & 0xFF);
    out[3] = static_cast<char>((v >> 24) & 0xFF);
}

inline void append_u32le(std::string& out, std::uint32_t v) {
    char bytes[4];
    put_u32le(bytes, v);
    out.append(bytes, 4);
}

inline std::uint32_t get_u32le(const char* p) {
    const auto* b = reinterpret_cast<const unsigned char*>(p);
    return static_cast<std::uint32_t>(b[0]) | static_cast<std::uint32_t>(b[1]) << 8 |
           static_cast<std::uint32_t>(b[2]) << 16 | static_cast<std::uint32_t>(b[3]) << 24;
}

}  // namespace siren::util
