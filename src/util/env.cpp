#include "util/env.hpp"

#include <cstdlib>

namespace siren::util {

std::optional<std::string> get_env(const std::string& name) {
    const char* v = std::getenv(name.c_str());
    if (v == nullptr) return std::nullopt;
    return std::string(v);
}

std::string get_env_or(const std::string& name, std::string_view fallback) {
    auto v = get_env(name);
    return v ? *v : std::string(fallback);
}

double get_env_double(const std::string& name, double fallback) {
    auto v = get_env(name);
    if (!v) return fallback;
    char* end = nullptr;
    const double parsed = std::strtod(v->c_str(), &end);
    if (end == v->c_str()) return fallback;
    return parsed;
}

std::int64_t get_env_int(const std::string& name, std::int64_t fallback) {
    auto v = get_env(name);
    if (!v) return fallback;
    char* end = nullptr;
    const long long parsed = std::strtoll(v->c_str(), &end, 10);
    if (end == v->c_str()) return fallback;
    return parsed;
}

}  // namespace siren::util
