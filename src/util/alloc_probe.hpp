#pragma once

// Heap-allocation counting hook for steady-state zero-allocation tests and
// bench counters.
//
// Exactly one translation unit of a *binary* (never the library) defines
// SIREN_ALLOC_PROBE_IMPLEMENT before including this header; that TU then
// provides replacement global operator new/delete which count allocations
// per thread. Binaries that do not opt in are unaffected — the probe
// functions only exist where implemented.
//
//   #define SIREN_ALLOC_PROBE_IMPLEMENT
//   #include "util/alloc_probe.hpp"
//   ...
//   siren::util::alloc_probe_reset();
//   hot_loop();
//   EXPECT_EQ(siren::util::alloc_probe_count(), 0u);
//
// The counter is thread_local, so concurrent allocations on other threads
// (logging, pools) never pollute a measurement.

#include <cstdint>

namespace siren::util {

/// operator-new calls made by the current thread since the last reset.
std::uint64_t alloc_probe_count() noexcept;
void alloc_probe_reset() noexcept;

namespace detail {
inline thread_local std::uint64_t alloc_probe_calls = 0;
}  // namespace detail

}  // namespace siren::util

#ifdef SIREN_ALLOC_PROBE_IMPLEMENT

#include <cstdlib>
#include <new>

namespace siren::util {

std::uint64_t alloc_probe_count() noexcept { return detail::alloc_probe_calls; }
void alloc_probe_reset() noexcept { detail::alloc_probe_calls = 0; }

}  // namespace siren::util

namespace {

void* siren_probe_alloc(std::size_t size) noexcept {
    ++siren::util::detail::alloc_probe_calls;
    return std::malloc(size == 0 ? 1 : size);
}

void* siren_probe_alloc_aligned(std::size_t size, std::size_t align) noexcept {
    ++siren::util::detail::alloc_probe_calls;
    void* p = nullptr;
    if (::posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,
                         size == 0 ? 1 : size) != 0) {
        return nullptr;
    }
    return p;
}

}  // namespace

void* operator new(std::size_t size) {
    void* p = siren_probe_alloc(size);
    if (p == nullptr) throw std::bad_alloc();
    return p;
}
void* operator new[](std::size_t size) {
    void* p = siren_probe_alloc(size);
    if (p == nullptr) throw std::bad_alloc();
    return p;
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
    return siren_probe_alloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
    return siren_probe_alloc(size);
}
void* operator new(std::size_t size, std::align_val_t align) {
    void* p = siren_probe_alloc_aligned(size, static_cast<std::size_t>(align));
    if (p == nullptr) throw std::bad_alloc();
    return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
    void* p = siren_probe_alloc_aligned(size, static_cast<std::size_t>(align));
    if (p == nullptr) throw std::bad_alloc();
    return p;
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

#endif  // SIREN_ALLOC_PROBE_IMPLEMENT
