#include "util/strings.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace siren::util {

std::vector<std::string> split(std::string_view s, char sep) {
    std::vector<std::string> out;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || s[i] == sep) {
            out.emplace_back(s.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

std::vector<std::string> split_nonempty(std::string_view s, char sep) {
    std::vector<std::string> out;
    for (auto& piece : split(s, sep)) {
        if (!piece.empty()) out.push_back(std::move(piece));
    }
    return out;
}

std::vector<std::string_view> split_view(std::string_view s, char sep) {
    std::vector<std::string_view> out;
    split_view_into(s, sep, out);
    return out;
}

std::size_t split_view_into(std::string_view s, char sep, std::vector<std::string_view>& out) {
    out.clear();
    std::size_t start = 0;
    for (std::size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || s[i] == sep) {
            out.push_back(s.substr(start, i - start));
            start = i + 1;
        }
    }
    return out.size();
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i != 0) out += sep;
        out += parts[i];
    }
    return out;
}

std::string_view trim(std::string_view s) {
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
    return s.substr(b, e - b);
}

std::string to_lower(std::string_view s) {
    std::string out(s);
    std::transform(out.begin(), out.end(), out.begin(),
                   [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
    return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
    return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
    return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

bool contains(std::string_view haystack, std::string_view needle) {
    return haystack.find(needle) != std::string_view::npos;
}

bool icontains(std::string_view haystack, std::string_view needle) {
    if (needle.empty()) return true;
    if (needle.size() > haystack.size()) return false;
    const std::string h = to_lower(haystack);
    const std::string n = to_lower(needle);
    return h.find(n) != std::string::npos;
}

std::string replace_all(std::string_view s, std::string_view from, std::string_view to) {
    if (from.empty()) return std::string(s);
    std::string out;
    out.reserve(s.size());
    std::size_t pos = 0;
    while (true) {
        const std::size_t hit = s.find(from, pos);
        if (hit == std::string_view::npos) {
            out.append(s.substr(pos));
            return out;
        }
        out.append(s.substr(pos, hit - pos));
        out.append(to);
        pos = hit + from.size();
    }
}

std::string escape_field(std::string_view s) {
    std::string out;
    out.reserve(s.size());
    escape_field_into(s, out);
    return out;
}

std::string unescape_field(std::string_view s) {
    std::string out;
    out.reserve(s.size());
    unescape_field_into(s, out);
    return out;
}

void escape_field_into(std::string_view s, std::string& out) {
    for (char c : s) {
        switch (c) {
            case '\\': out += "\\\\"; break;
            case '|': out += "\\p"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            default: out += c;
        }
    }
}

void unescape_field_into(std::string_view s, std::string& out) {
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i] != '\\' || i + 1 == s.size()) {
            out += s[i];
            continue;
        }
        ++i;
        switch (s[i]) {
            case '\\': out += '\\'; break;
            case 'p': out += '|'; break;
            case 'n': out += '\n'; break;
            case 't': out += '\t'; break;
            default:
                out += '\\';
                out += s[i];
        }
    }
}

std::string_view basename(std::string_view path) {
    const std::size_t slash = path.find_last_of('/');
    return slash == std::string_view::npos ? path : path.substr(slash + 1);
}

std::string_view dirname(std::string_view path) {
    const std::size_t slash = path.find_last_of('/');
    return slash == std::string_view::npos ? std::string_view{} : path.substr(0, slash + 1);
}

bool parse_decimal(std::string_view s, long& out) {
    if (s.empty() || s.size() > 18) return false;  // 18 digits always fit a long
    long value = 0;
    for (const char c : s) {
        if (c < '0' || c > '9') return false;
        value = value * 10 + (c - '0');
    }
    out = value;
    return true;
}

bool parse_decimal(std::string_view s, unsigned long long& out) {
    if (s.empty() || s.size() > 20) return false;  // u64 max has 20 digits
    unsigned long long value = 0;
    for (const char c : s) {
        if (c < '0' || c > '9') return false;
        const auto digit = static_cast<unsigned long long>(c - '0');
        if (value > (~0ull - digit) / 10) return false;  // would overflow
        value = value * 10 + digit;
    }
    out = value;
    return true;
}

std::string with_commas(std::uint64_t n) {
    std::string digits = std::to_string(n);
    std::string out;
    out.reserve(digits.size() + digits.size() / 3);
    int count = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (count != 0 && count % 3 == 0) out += ',';
        out += *it;
        ++count;
    }
    std::reverse(out.begin(), out.end());
    return out;
}

std::string fixed(double v, int digits) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", digits, v);
    return buf;
}

}  // namespace siren::util
