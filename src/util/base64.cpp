#include "util/base64.hpp"

#include <array>

#include "util/error.hpp"

namespace siren::util {

namespace {

std::array<int, 256> make_reverse_table() {
    std::array<int, 256> table{};
    table.fill(-1);
    for (int i = 0; i < 64; ++i) {
        table[static_cast<unsigned char>(kBase64Alphabet[i])] = i;
    }
    return table;
}

const std::array<int, 256> kReverse = make_reverse_table();

}  // namespace

std::string base64_encode(const std::uint8_t* data, std::size_t size) {
    std::string out;
    out.reserve((size + 2) / 3 * 4);
    std::size_t i = 0;
    for (; i + 3 <= size; i += 3) {
        const std::uint32_t n = (static_cast<std::uint32_t>(data[i]) << 16) |
                                (static_cast<std::uint32_t>(data[i + 1]) << 8) |
                                static_cast<std::uint32_t>(data[i + 2]);
        out += kBase64Alphabet[(n >> 18) & 63];
        out += kBase64Alphabet[(n >> 12) & 63];
        out += kBase64Alphabet[(n >> 6) & 63];
        out += kBase64Alphabet[n & 63];
    }
    const std::size_t rest = size - i;
    if (rest == 1) {
        const std::uint32_t n = static_cast<std::uint32_t>(data[i]) << 16;
        out += kBase64Alphabet[(n >> 18) & 63];
        out += kBase64Alphabet[(n >> 12) & 63];
        out += "==";
    } else if (rest == 2) {
        const std::uint32_t n = (static_cast<std::uint32_t>(data[i]) << 16) |
                                (static_cast<std::uint32_t>(data[i + 1]) << 8);
        out += kBase64Alphabet[(n >> 18) & 63];
        out += kBase64Alphabet[(n >> 12) & 63];
        out += kBase64Alphabet[(n >> 6) & 63];
        out += '=';
    }
    return out;
}

std::string base64_encode(std::string_view s) {
    return base64_encode(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
}

std::vector<std::uint8_t> base64_decode(std::string_view s) {
    if (s.size() % 4 != 0) throw ParseError("base64 length not a multiple of 4");
    std::vector<std::uint8_t> out;
    out.reserve(s.size() / 4 * 3);
    for (std::size_t i = 0; i < s.size(); i += 4) {
        int vals[4];
        int pad = 0;
        for (int k = 0; k < 4; ++k) {
            const char c = s[i + k];
            if (c == '=') {
                if (i + 4 != s.size() || k < 2) throw ParseError("base64 misplaced padding");
                vals[k] = 0;
                ++pad;
            } else {
                if (pad != 0) throw ParseError("base64 data after padding");
                vals[k] = kReverse[static_cast<unsigned char>(c)];
                if (vals[k] < 0) throw ParseError("base64 invalid character");
            }
        }
        const std::uint32_t n =
            (static_cast<std::uint32_t>(vals[0]) << 18) | (static_cast<std::uint32_t>(vals[1]) << 12) |
            (static_cast<std::uint32_t>(vals[2]) << 6) | static_cast<std::uint32_t>(vals[3]);
        out.push_back(static_cast<std::uint8_t>((n >> 16) & 0xff));
        if (pad < 2) out.push_back(static_cast<std::uint8_t>((n >> 8) & 0xff));
        if (pad < 1) out.push_back(static_cast<std::uint8_t>(n & 0xff));
    }
    return out;
}

}  // namespace siren::util
