#include "util/simd.hpp"

#include <algorithm>
#include <atomic>

#include "util/env.hpp"

#if defined(__x86_64__) || defined(_M_X64)
#define SIREN_SIMD_X86 1
#include <immintrin.h>
#endif

namespace siren::util::simd {

namespace {

Level detect() {
#if defined(SIREN_SIMD_X86) && (defined(__GNUC__) || defined(__clang__))
    // SSE2 is the x86-64 baseline; only AVX2 needs a runtime probe.
    if (__builtin_cpu_supports("avx2")) return Level::kAvx2;
    return Level::kSse2;
#elif defined(SIREN_SIMD_X86)
    return Level::kSse2;
#else
    return Level::kScalar;
#endif
}

/// force_level() state; -1 = none. Relaxed: per-query dispatch only needs
/// an eventually-visible clamp, not ordering against the scan itself.
std::atomic<int> g_forced{-1};

/// detected_level() clamped by the one-shot SIREN_FORCE_SCALAR read.
Level env_level() {
    static const Level cached = [] {
        if (util::get_env_int("SIREN_FORCE_SCALAR", 0) != 0) return Level::kScalar;
        return detect();
    }();
    return cached;
}

// ---------------------------------------------------------------------------
// Signature-gate bitmaps. Each variant walks the column front to back and
// assembles bitmap words in order, so the outputs are identical bit for bit.

void sig_gate_bitmap_scalar(const std::uint64_t* sigs, std::size_t n, std::uint64_t probe,
                            std::uint64_t* bitmap) {
    std::uint64_t word = 0;
    unsigned shift = 0;
    std::size_t wi = 0;
    for (std::size_t i = 0; i < n; ++i) {
        if ((sigs[i] & probe) != 0) word |= std::uint64_t{1} << shift;
        if (++shift == 64) {
            bitmap[wi++] = word;
            word = 0;
            shift = 0;
        }
    }
    if (shift != 0) bitmap[wi] = word;
}

void sig_gate_bitmap_or_scalar(const std::uint64_t* sigs_a, std::uint64_t probe_a,
                               const std::uint64_t* sigs_b, std::uint64_t probe_b,
                               std::size_t n, std::uint64_t* bitmap) {
    std::uint64_t word = 0;
    unsigned shift = 0;
    std::size_t wi = 0;
    for (std::size_t i = 0; i < n; ++i) {
        if ((sigs_a[i] & probe_a) != 0 || (sigs_b[i] & probe_b) != 0) {
            word |= std::uint64_t{1} << shift;
        }
        if (++shift == 64) {
            bitmap[wi++] = word;
            word = 0;
            shift = 0;
        }
    }
    if (shift != 0) bitmap[wi] = word;
}

#if defined(SIREN_SIMD_X86)

/// 64-bit-lane zero test with SSE2-only ops: a lane is zero iff both of
/// its 32-bit halves compare equal to zero.
inline __m128i lanes_zero_sse2(__m128i v) {
    const __m128i eq32 = _mm_cmpeq_epi32(v, _mm_setzero_si128());
    return _mm_and_si128(eq32, _mm_shuffle_epi32(eq32, _MM_SHUFFLE(2, 3, 0, 1)));
}

void sig_gate_bitmap_sse2(const std::uint64_t* sigs, std::size_t n, std::uint64_t probe,
                          std::uint64_t* bitmap) {
    const __m128i vprobe = _mm_set1_epi64x(static_cast<long long>(probe));
    std::uint64_t word = 0;
    unsigned shift = 0;
    std::size_t wi = 0;
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(sigs + i));
        const __m128i zero_lanes = lanes_zero_sse2(_mm_and_si128(v, vprobe));
        const auto zero_mask =
            static_cast<unsigned>(_mm_movemask_pd(_mm_castsi128_pd(zero_lanes)));
        word |= static_cast<std::uint64_t>(~zero_mask & 0x3u) << shift;
        shift += 2;
        if (shift == 64) {
            bitmap[wi++] = word;
            word = 0;
            shift = 0;
        }
    }
    for (; i < n; ++i) {
        if ((sigs[i] & probe) != 0) word |= std::uint64_t{1} << shift;
        if (++shift == 64) {
            bitmap[wi++] = word;
            word = 0;
            shift = 0;
        }
    }
    if (shift != 0) bitmap[wi] = word;
}

void sig_gate_bitmap_or_sse2(const std::uint64_t* sigs_a, std::uint64_t probe_a,
                             const std::uint64_t* sigs_b, std::uint64_t probe_b, std::size_t n,
                             std::uint64_t* bitmap) {
    const __m128i vpa = _mm_set1_epi64x(static_cast<long long>(probe_a));
    const __m128i vpb = _mm_set1_epi64x(static_cast<long long>(probe_b));
    std::uint64_t word = 0;
    unsigned shift = 0;
    std::size_t wi = 0;
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        const __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(sigs_a + i));
        const __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(sigs_b + i));
        const __m128i both_zero = _mm_and_si128(lanes_zero_sse2(_mm_and_si128(va, vpa)),
                                                lanes_zero_sse2(_mm_and_si128(vb, vpb)));
        const auto zero_mask =
            static_cast<unsigned>(_mm_movemask_pd(_mm_castsi128_pd(both_zero)));
        word |= static_cast<std::uint64_t>(~zero_mask & 0x3u) << shift;
        shift += 2;
        if (shift == 64) {
            bitmap[wi++] = word;
            word = 0;
            shift = 0;
        }
    }
    for (; i < n; ++i) {
        if ((sigs_a[i] & probe_a) != 0 || (sigs_b[i] & probe_b) != 0) {
            word |= std::uint64_t{1} << shift;
        }
        if (++shift == 64) {
            bitmap[wi++] = word;
            word = 0;
            shift = 0;
        }
    }
    if (shift != 0) bitmap[wi] = word;
}

__attribute__((target("avx2"))) void sig_gate_bitmap_avx2(const std::uint64_t* sigs,
                                                          std::size_t n, std::uint64_t probe,
                                                          std::uint64_t* bitmap) {
    const __m256i vprobe = _mm256_set1_epi64x(static_cast<long long>(probe));
    const __m256i zero = _mm256_setzero_si256();
    std::uint64_t word = 0;
    unsigned shift = 0;
    std::size_t wi = 0;
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(sigs + i));
        const __m256i zero_lanes = _mm256_cmpeq_epi64(_mm256_and_si256(v, vprobe), zero);
        const auto zero_mask =
            static_cast<unsigned>(_mm256_movemask_pd(_mm256_castsi256_pd(zero_lanes)));
        word |= static_cast<std::uint64_t>(~zero_mask & 0xFu) << shift;
        shift += 4;
        if (shift == 64) {
            bitmap[wi++] = word;
            word = 0;
            shift = 0;
        }
    }
    for (; i < n; ++i) {
        if ((sigs[i] & probe) != 0) word |= std::uint64_t{1} << shift;
        if (++shift == 64) {
            bitmap[wi++] = word;
            word = 0;
            shift = 0;
        }
    }
    if (shift != 0) bitmap[wi] = word;
}

__attribute__((target("avx2"))) void sig_gate_bitmap_or_avx2(
    const std::uint64_t* sigs_a, std::uint64_t probe_a, const std::uint64_t* sigs_b,
    std::uint64_t probe_b, std::size_t n, std::uint64_t* bitmap) {
    const __m256i vpa = _mm256_set1_epi64x(static_cast<long long>(probe_a));
    const __m256i vpb = _mm256_set1_epi64x(static_cast<long long>(probe_b));
    const __m256i zero = _mm256_setzero_si256();
    std::uint64_t word = 0;
    unsigned shift = 0;
    std::size_t wi = 0;
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(sigs_a + i));
        const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(sigs_b + i));
        const __m256i za = _mm256_cmpeq_epi64(_mm256_and_si256(va, vpa), zero);
        const __m256i zb = _mm256_cmpeq_epi64(_mm256_and_si256(vb, vpb), zero);
        const __m256i both_zero = _mm256_and_si256(za, zb);
        const auto zero_mask =
            static_cast<unsigned>(_mm256_movemask_pd(_mm256_castsi256_pd(both_zero)));
        word |= static_cast<std::uint64_t>(~zero_mask & 0xFu) << shift;
        shift += 4;
        if (shift == 64) {
            bitmap[wi++] = word;
            word = 0;
            shift = 0;
        }
    }
    for (; i < n; ++i) {
        if ((sigs_a[i] & probe_a) != 0 || (sigs_b[i] & probe_b) != 0) {
            word |= std::uint64_t{1} << shift;
        }
        if (++shift == 64) {
            bitmap[wi++] = word;
            word = 0;
            shift = 0;
        }
    }
    if (shift != 0) bitmap[wi] = word;
}

#endif  // SIREN_SIMD_X86

// ---------------------------------------------------------------------------
// Sorted-u64 intersection (boolean). Inputs may contain duplicates.

bool intersect_scalar(const std::uint64_t* a, std::size_t na, const std::uint64_t* b,
                      std::size_t nb) {
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < na && j < nb) {
        if (a[i] < b[j]) {
            ++i;
        } else if (a[i] > b[j]) {
            ++j;
        } else {
            return true;
        }
    }
    return false;
}

/// First index >= from with v[idx] >= x, by exponential probing then a
/// binary search of the bracketed window.
std::size_t gallop_lower_bound(const std::uint64_t* v, std::size_t n, std::size_t from,
                               std::uint64_t x) {
    if (from >= n || v[from] >= x) return from;
    std::size_t lo = from;  // invariant: v[lo] < x
    std::size_t step = 1;
    while (lo + step < n && v[lo + step] < x) {
        lo += step;
        step <<= 1;
    }
    const std::size_t hi = std::min(n, lo + step + 1);
    return static_cast<std::size_t>(std::lower_bound(v + lo + 1, v + hi, x) - v);
}

/// Asymmetric case: walk the small array, galloping through the large one.
/// O(ns * log(nl / ns)) instead of O(ns + nl).
bool gallop_intersect(const std::uint64_t* small, std::size_t ns, const std::uint64_t* large,
                      std::size_t nl) {
    std::size_t pos = 0;
    for (std::size_t i = 0; i < ns && pos < nl; ++i) {
        pos = gallop_lower_bound(large, nl, pos, small[i]);
        if (pos < nl && large[pos] == small[i]) return true;
    }
    return false;
}

#if defined(SIREN_SIMD_X86)

/// Block merge: compare a 4-element block of each side all-pairs (the
/// block against all four rotations of the other), then discard whichever
/// block's last element is smaller — everything later on the other side is
/// strictly larger (equality would have matched), so a discarded block can
/// never intersect the remainder.
__attribute__((target("avx2"))) bool intersect_avx2(const std::uint64_t* a, std::size_t na,
                                                    const std::uint64_t* b, std::size_t nb) {
    std::size_t i = 0;
    std::size_t j = 0;
    while (i + 4 <= na && j + 4 <= nb) {
        const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
        const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
        __m256i eq = _mm256_cmpeq_epi64(va, vb);
        eq = _mm256_or_si256(
            eq, _mm256_cmpeq_epi64(va, _mm256_permute4x64_epi64(vb, _MM_SHUFFLE(0, 3, 2, 1))));
        eq = _mm256_or_si256(
            eq, _mm256_cmpeq_epi64(va, _mm256_permute4x64_epi64(vb, _MM_SHUFFLE(1, 0, 3, 2))));
        eq = _mm256_or_si256(
            eq, _mm256_cmpeq_epi64(va, _mm256_permute4x64_epi64(vb, _MM_SHUFFLE(2, 1, 0, 3))));
        if (!_mm256_testz_si256(eq, eq)) return true;
        if (a[i + 3] < b[j + 3]) {
            i += 4;
        } else {
            j += 4;
        }
    }
    return intersect_scalar(a + i, na - i, b + j, nb - j);
}

#endif  // SIREN_SIMD_X86

}  // namespace

Level detected_level() {
    static const Level cached = detect();
    return cached;
}

Level active_level() {
    const Level base = env_level();
    const int forced = g_forced.load(std::memory_order_relaxed);
    if (forced < 0) return base;
    return static_cast<int>(base) < forced ? base : static_cast<Level>(forced);
}

void force_level(Level level) {
    g_forced.store(static_cast<int>(level), std::memory_order_relaxed);
}

void clear_forced_level() { g_forced.store(-1, std::memory_order_relaxed); }

std::string_view level_name(Level level) {
    switch (level) {
        case Level::kSse2:
            return "sse2";
        case Level::kAvx2:
            return "avx2";
        case Level::kScalar:
            break;
    }
    return "scalar";
}

void sig_gate_bitmap(const std::uint64_t* sigs, std::size_t n, std::uint64_t probe_sig,
                     std::uint64_t* bitmap, Level level) {
#if defined(SIREN_SIMD_X86)
    if (level == Level::kAvx2) {
        sig_gate_bitmap_avx2(sigs, n, probe_sig, bitmap);
        return;
    }
    if (level == Level::kSse2) {
        sig_gate_bitmap_sse2(sigs, n, probe_sig, bitmap);
        return;
    }
#else
    (void)level;
#endif
    sig_gate_bitmap_scalar(sigs, n, probe_sig, bitmap);
}

void sig_gate_bitmap_or(const std::uint64_t* sigs_a, std::uint64_t probe_a,
                        const std::uint64_t* sigs_b, std::uint64_t probe_b, std::size_t n,
                        std::uint64_t* bitmap, Level level) {
#if defined(SIREN_SIMD_X86)
    if (level == Level::kAvx2) {
        sig_gate_bitmap_or_avx2(sigs_a, probe_a, sigs_b, probe_b, n, bitmap);
        return;
    }
    if (level == Level::kSse2) {
        sig_gate_bitmap_or_sse2(sigs_a, probe_a, sigs_b, probe_b, n, bitmap);
        return;
    }
#else
    (void)level;
#endif
    sig_gate_bitmap_or_scalar(sigs_a, probe_a, sigs_b, probe_b, n, bitmap);
}

bool sorted_intersect(const std::uint64_t* a, std::size_t na, const std::uint64_t* b,
                      std::size_t nb, Level level) {
    if (na == 0 || nb == 0) return false;
    // Gram columns are wildly asymmetric when a short probe part meets a
    // long flattened column; galloping beats any linear merge there.
    if (na * 8 <= nb) return gallop_intersect(a, na, b, nb);
    if (nb * 8 <= na) return gallop_intersect(b, nb, a, na);
#if defined(SIREN_SIMD_X86)
    if (level == Level::kAvx2 && na >= 4 && nb >= 4) return intersect_avx2(a, na, b, nb);
#endif
    (void)level;
    return intersect_scalar(a, na, b, nb);
}

}  // namespace siren::util::simd
