#include "util/failpoint.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <mutex>
#include <optional>
#include <thread>

#include "util/env.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace siren::util::failpoint {

namespace {

/// One armed point. `delay_us` composes with any action (sleep first, then
/// inject); a pure delay(…) spec is kNone + delay.
struct Point {
    Action action = Action::kNone;
    int err = 0;
    std::uint32_t delay_us = 0;
    std::uint32_t one_in = 1;  ///< fire on every Nth hit (1 = always)
    std::uint64_t hits = 0;
    std::uint64_t fires = 0;
};

struct Registry {
    std::mutex mutex;
    std::map<std::string, Point, std::less<>> points;
    /// Armed-point count mirrored outside the lock: the unarmed fast path
    /// in eval() is one relaxed load, no mutex.
    std::atomic<std::size_t> armed{0};
};

Registry& registry() {
    static Registry r;
    return r;
}

/// Parse one spec into a Point (counters zeroed). Throws ParseError.
Point parse_spec(std::string_view spec) {
    Point point;
    auto body = trim(spec);
    if (const auto percent = body.rfind('%'); percent != std::string_view::npos) {
        long n = 0;
        if (!parse_decimal(trim(body.substr(percent + 1)), n) || n < 1) {
            throw ParseError("bad failpoint one-in-N in '" + std::string(spec) + "'");
        }
        point.one_in = static_cast<std::uint32_t>(n);
        body = trim(body.substr(0, percent));
    }
    const auto call_arg = [&](std::string_view mode) -> std::optional<long> {
        if (!starts_with(body, mode) || body.size() <= mode.size() ||
            body[mode.size()] != '(' || body.back() != ')') {
            return std::nullopt;
        }
        long value = 0;
        const auto inner = trim(body.substr(mode.size() + 1, body.size() - mode.size() - 2));
        if (!parse_decimal(inner, value)) {
            throw ParseError("bad failpoint argument in '" + std::string(spec) + "'");
        }
        return value;
    };
    if (const auto err = call_arg("error")) {
        point.action = Action::kError;
        point.err = static_cast<int>(*err);
    } else if (const auto usec = call_arg("delay")) {
        point.action = Action::kNone;
        point.delay_us = static_cast<std::uint32_t>(*usec);
    } else if (body == "short-write") {
        point.action = Action::kShortWrite;
    } else if (body == "corrupt-byte") {
        point.action = Action::kCorrupt;
    } else {
        throw ParseError("unknown failpoint mode '" + std::string(spec) + "'");
    }
    return point;
}

/// Arm without the env bootstrap (callable from inside it).
void arm(const std::string& name, std::string_view spec) {
    auto point = parse_spec(spec);
    auto& reg = registry();
    std::lock_guard lock(reg.mutex);
    const bool fresh = reg.points.emplace(name, point).second;
    if (!fresh) {
        reg.points[name] = point;  // re-arm: replace mode, reset counters
    } else {
        reg.armed.fetch_add(1, std::memory_order_relaxed);
    }
}

void arm_from_spec_list(std::string_view list) {
    std::vector<std::string_view> entries;
    split_view_into(list, ';', entries);
    for (const auto entry : entries) {
        const auto item = trim(entry);
        if (item.empty()) continue;
        const auto eq = item.find('=');
        if (eq == std::string_view::npos || eq == 0) {
            throw ParseError("bad failpoint entry '" + std::string(item) +
                             "' (want name=spec)");
        }
        arm(std::string(trim(item.substr(0, eq))), trim(item.substr(eq + 1)));
    }
}

/// One-time environment bootstrap. A malformed SIREN_FAILPOINTS value must
/// not throw out of some unrelated write() deep in a daemon — report it
/// loudly on stderr and run without the broken entries instead.
void ensure_env_loaded() {
    static std::once_flag once;
    std::call_once(once, [] {
        const auto spec = get_env("SIREN_FAILPOINTS");
        if (!spec || spec->empty()) return;
        try {
            arm_from_spec_list(*spec);
        } catch (const ParseError& e) {
            std::fprintf(stderr, "siren: ignoring SIREN_FAILPOINTS: %s\n", e.what());
        }
    });
}

}  // namespace

void activate(const std::string& name, std::string_view spec) {
    ensure_env_loaded();
    arm(name, spec);
}

void deactivate(const std::string& name) {
    ensure_env_loaded();
    auto& reg = registry();
    std::lock_guard lock(reg.mutex);
    if (reg.points.erase(name) > 0) {
        reg.armed.fetch_sub(1, std::memory_order_relaxed);
    }
}

void clear() {
    ensure_env_loaded();
    auto& reg = registry();
    std::lock_guard lock(reg.mutex);
    reg.points.clear();
    reg.armed.store(0, std::memory_order_relaxed);
}

void activate_from_spec_list(std::string_view list) {
    ensure_env_loaded();
    arm_from_spec_list(list);
}

std::vector<Counter> counters() {
    ensure_env_loaded();
    auto& reg = registry();
    std::lock_guard lock(reg.mutex);
    std::vector<Counter> out;
    out.reserve(reg.points.size());
    for (const auto& [name, point] : reg.points) {
        out.push_back({name, point.hits, point.fires});
    }
    return out;  // map order = name-sorted
}

std::uint64_t fire_count(const std::string& name) {
    ensure_env_loaded();
    auto& reg = registry();
    std::lock_guard lock(reg.mutex);
    const auto it = reg.points.find(name);
    return it == reg.points.end() ? 0 : it->second.fires;
}

Hit eval(const char* name) {
    ensure_env_loaded();
    auto& reg = registry();
    if (reg.armed.load(std::memory_order_relaxed) == 0) return Hit{};
    Hit hit;
    std::uint32_t delay_us = 0;
    {
        std::lock_guard lock(reg.mutex);
        const auto it = reg.points.find(std::string_view(name));
        if (it == reg.points.end()) return Hit{};
        auto& point = it->second;
        ++point.hits;
        if (point.one_in > 1 && point.hits % point.one_in != 0) return Hit{};
        ++point.fires;
        delay_us = point.delay_us;
        hit = Hit{point.action, point.err};
    }
    if (delay_us > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
    }
    return hit;
}

}  // namespace siren::util::failpoint
