#pragma once

#include <charconv>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace siren::util {

/// Split `s` on `sep`, keeping empty fields ("a||b" -> {"a","","b"}).
std::vector<std::string> split(std::string_view s, char sep);

/// Split `s` on `sep`, dropping empty fields.
std::vector<std::string> split_nonempty(std::string_view s, char sep);

/// Zero-copy split: the returned views alias `s`, which must outlive them.
/// Keeps empty fields, like split().
std::vector<std::string_view> split_view(std::string_view s, char sep);

/// Zero-copy split into a caller-owned buffer (cleared first); returns the
/// piece count. Reusing `out` across calls performs no allocation once its
/// capacity is warm — the hot-loop variant of split_view().
std::size_t split_view_into(std::string_view s, char sep, std::vector<std::string_view>& out);

/// Join `parts` with `sep` between elements.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Strip ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

/// Lowercase ASCII copy.
std::string to_lower(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);
bool contains(std::string_view haystack, std::string_view needle);

/// Case-insensitive substring test (ASCII).
bool icontains(std::string_view haystack, std::string_view needle);

/// True if `c` is a printable ASCII character (0x20..0x7e).
constexpr bool is_printable(unsigned char c) { return c >= 0x20 && c <= 0x7e; }

/// Replace every occurrence of `from` with `to`.
std::string replace_all(std::string_view s, std::string_view from, std::string_view to);

/// Escape '\\', '|', '\n', '\t' for embedding in the pipe-separated wire
/// format; `unescape_field` reverses it.
std::string escape_field(std::string_view s);
std::string unescape_field(std::string_view s);

/// Appending variants for callers that reuse an output buffer (the wire hot
/// path): no allocation once `out` has capacity.
void escape_field_into(std::string_view s, std::string& out);
void unescape_field_into(std::string_view s, std::string& out);

/// Last path component ("/usr/bin/bash" -> "bash"; "bash" -> "bash").
std::string_view basename(std::string_view path);

/// Directory part including trailing '/' ("/usr/bin/bash" -> "/usr/bin/").
std::string_view dirname(std::string_view path);

/// Append the decimal rendering of an integer via std::to_chars into stack
/// scratch — no temporary string, no allocation when `out` has capacity.
template <typename Int>
void append_number(std::string& out, Int value) {
    char buf[24];  // enough for any 64-bit integer
    const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, value);
    (void)ec;
    out.append(buf, ptr);
}

/// Strict non-negative decimal parse for CLI arguments: the whole token
/// must be digits (no sign, no trailing junk, no overflow). "80x" or ""
/// must be a loud usage error, not silently become some other port/shard
/// count — shared by the operator daemons' argument parsing.
bool parse_decimal(std::string_view s, long& out);

/// Same contract over the full 64-bit unsigned range (rejects overflow) —
/// partition-map key ranges span all of u64, which a long cannot hold.
bool parse_decimal(std::string_view s, unsigned long long& out);

/// Format `n` with thousands separators: 2317859 -> "2,317,859".
std::string with_commas(std::uint64_t n);

/// Fixed-point decimal string with `digits` fractional digits.
std::string fixed(double v, int digits);

}  // namespace siren::util
