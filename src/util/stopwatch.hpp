#pragma once

#include <chrono>

namespace siren::util {

/// Monotonic wall-clock stopwatch used by benches and throughput reports.
class Stopwatch {
public:
    Stopwatch() : start_(clock::now()) {}

    void reset() { start_ = clock::now(); }

    double seconds() const {
        return std::chrono::duration<double>(clock::now() - start_).count();
    }

    double millis() const { return seconds() * 1e3; }

private:
    using clock = std::chrono::steady_clock;
    clock::time_point start_;
};

}  // namespace siren::util
