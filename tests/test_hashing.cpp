// hashing: SHA-1/SHA-256 against FIPS vectors, xxh properties, FNV,
// rolling hash behaviour.

#include <gtest/gtest.h>

#include <set>

#include "hashing/crc32c.hpp"
#include "hashing/fnv.hpp"
#include "hashing/rolling.hpp"
#include "hashing/sha1.hpp"
#include "hashing/sha256.hpp"
#include "hashing/xxhash.hpp"

namespace sh = siren::hash;

TEST(Sha1, Fips180Vectors) {
    EXPECT_EQ(sh::Sha1::hex(""), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
    EXPECT_EQ(sh::Sha1::hex("abc"), "a9993e364706816aba3e25717850c26c9cd0d89d");
    EXPECT_EQ(sh::Sha1::hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
              "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1, MillionA) {
    sh::Sha1 h;
    const std::string chunk(1000, 'a');
    for (int i = 0; i < 1000; ++i) h.update(chunk);
    const auto digest = h.finish();
    std::string hex;
    for (auto b : digest) {
        char buf[3];
        std::snprintf(buf, sizeof buf, "%02x", b);
        hex += buf;
    }
    EXPECT_EQ(hex, "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1, IncrementalMatchesOneShot) {
    sh::Sha1 h;
    h.update("he");
    h.update("llo ");
    h.update("world");
    const auto a = h.finish();
    sh::Sha1 g;
    g.update("hello world");
    EXPECT_EQ(a, g.finish());
}

TEST(Sha256, Fips180Vectors) {
    EXPECT_EQ(sh::Sha256::hex(""),
              "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
    EXPECT_EQ(sh::Sha256::hex("abc"),
              "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
    EXPECT_EQ(sh::Sha256::hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
              "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, AvalancheEffect) {
    // One flipped bit changes roughly half the digest bits — the property
    // (paper §2.1) that makes cryptographic hashes useless for similarity.
    const std::string a(1000, 'x');
    std::string b = a;
    b[500] = 'y';
    const std::string ha = sh::Sha256::hex(a);
    const std::string hb = sh::Sha256::hex(b);
    int differing = 0;
    for (std::size_t i = 0; i < ha.size(); ++i) differing += ha[i] != hb[i];
    EXPECT_GT(differing, 20) << "hex digests should differ almost everywhere";
}

TEST(Xxh64, DeterministicAndSeeded) {
    EXPECT_EQ(sh::xxh64("hello"), sh::xxh64("hello"));
    EXPECT_NE(sh::xxh64("hello"), sh::xxh64("hellp"));
    EXPECT_NE(sh::xxh64("hello", 1), sh::xxh64("hello", 2));
}

TEST(Xxh64, CoversAllTailLengths) {
    // Exercise every remainder path (>=32 block loop, 8/4/1-byte tails).
    std::string s;
    std::set<std::uint64_t> seen;
    for (int len = 0; len <= 70; ++len) {
        seen.insert(sh::xxh64(s));
        s += static_cast<char>('a' + len % 26);
    }
    EXPECT_EQ(seen.size(), 71u) << "every prefix should hash differently";
}

TEST(Xxh128, HexFormatting) {
    const auto d = sh::xxh128("path/to/exe");
    EXPECT_EQ(d.hex().size(), 32u);
    EXPECT_EQ(d, sh::xxh128("path/to/exe"));
    EXPECT_NE(d.hex(), sh::xxh128("path/to/exf").hex());
}

TEST(Xxh128, WordsAreDecorrelated) {
    const auto d = sh::xxh128("abc");
    EXPECT_NE(d.hi, d.lo);
}

TEST(Fnv, KnownBehaviour) {
    // FNV-1a 32-bit of "" is the offset basis.
    EXPECT_EQ(sh::fnv1a32(""), sh::kFnv32Init);
    EXPECT_NE(sh::fnv1a32("a"), sh::fnv1a32("b"));
    EXPECT_EQ(sh::fnv1a64("chongo"), sh::fnv1a64("chongo"));
    // The spamsum step must match h * prime ^ c semantics.
    EXPECT_EQ(sh::fnv32_step(1, 0), sh::kFnv32Prime);
}

TEST(Rolling, WindowForgetsOldBytes) {
    // Two streams that agree on the last kRollingWindow bytes produce the
    // same hash — the property that makes chunk boundaries realign after
    // an edit.
    sh::RollingHash a, b;
    for (char c : std::string("XXXXXXXABCDEFG")) a.update(static_cast<std::uint8_t>(c));
    for (char c : std::string("YYYYYYYABCDEFG")) b.update(static_cast<std::uint8_t>(c));
    EXPECT_EQ(a.value(), b.value());
}

TEST(Rolling, SensitiveWithinWindow) {
    sh::RollingHash a, b;
    for (char c : std::string("ABCDEFG")) a.update(static_cast<std::uint8_t>(c));
    for (char c : std::string("ABCDEFH")) b.update(static_cast<std::uint8_t>(c));
    EXPECT_NE(a.value(), b.value());
}

TEST(Rolling, ResetRestoresInitialState) {
    sh::RollingHash h;
    h.update(42);
    h.reset();
    EXPECT_EQ(h.value(), 0u);
}

// ---------------------------------------------------------------------------
// CRC32C (Castagnoli) — the segment store's record checksum. Vectors from
// RFC 3720 appendix B.4 (iSCSI) plus streaming-consistency properties.

TEST(Crc32c, KnownVectors) {
    EXPECT_EQ(sh::crc32c(""), 0x00000000u);
    EXPECT_EQ(sh::crc32c("123456789"), 0xE3069283u);
    EXPECT_EQ(sh::crc32c(std::string(32, '\0')), 0x8A9136AAu);
    EXPECT_EQ(sh::crc32c(std::string(32, '\xff')), 0x62A8AB43u);
}

TEST(Crc32c, IncrementalMatchesOneShot) {
    const std::string data =
        "SIREN1|JOBID=7|STEPID=0|PID=4242|HASH=00ff|HOST=nid000012|TIME=1733900000"
        "|LAYER=SELF|TYPE=OBJECTS|SEQ=0|TOTAL=2|CONTENT=/lib64/libc.so.6";
    const std::uint32_t expected = sh::crc32c(data);
    for (std::size_t split = 0; split <= data.size(); ++split) {
        std::uint32_t crc = sh::crc32c_update(0, data.data(), split);
        crc = sh::crc32c_update(crc, data.data() + split, data.size() - split);
        EXPECT_EQ(crc, expected) << "split at " << split;
    }
}

TEST(Crc32c, DetectsSingleBitFlips) {
    std::string data = "the segment store relies on this detecting corruption";
    const std::uint32_t clean = sh::crc32c(data);
    for (std::size_t byte = 0; byte < data.size(); byte += 7) {
        data[byte] ^= 0x01;
        EXPECT_NE(sh::crc32c(data), clean) << "flip at byte " << byte;
        data[byte] ^= 0x01;
    }
    EXPECT_EQ(sh::crc32c(data), clean);
}
