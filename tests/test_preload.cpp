// The real LD_PRELOAD collector: inject libsiren_preload.so into a child
// process and verify messages arrive over real UDP loopback.
//
// This exercises the genuine mechanism of the paper (constructor/destructor
// hooks via the dynamic linker) on this machine. Skipped gracefully where
// fork/exec or loopback UDP are unavailable.

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <set>
#include <thread>

#include "net/channel.hpp"
#include "net/udp.hpp"

#ifndef SIREN_PRELOAD_PATH
#define SIREN_PRELOAD_PATH "libsiren_preload.so"
#endif

namespace sn = siren::net;

namespace {

/// Run `/bin/sh -c true`-style command with the preload active; returns
/// false when spawning failed.
bool run_with_preload(std::uint16_t port, const char* command) {
    const pid_t pid = ::fork();
    if (pid < 0) return false;
    if (pid == 0) {
        ::setenv("LD_PRELOAD", SIREN_PRELOAD_PATH, 1);
        ::setenv("SIREN_PORT", std::to_string(port).c_str(), 1);
        ::setenv("SLURM_JOB_ID", "4242", 1);
        ::setenv("SLURM_PROCID", "0", 1);
        ::setenv("LOADEDMODULES", "testmodule/1.0:other/2.0", 1);
        ::execl("/bin/sh", "sh", "-c", command, static_cast<char*>(nullptr));
        ::_exit(127);
    }
    int status = 0;
    ::waitpid(pid, &status, 0);
    return WIFEXITED(status) && WEXITSTATUS(status) == 0;
}

}  // namespace

TEST(Preload, InjectsIntoRealProcess) {
    sn::MessageQueue queue(4096);
    sn::UdpReceiver receiver(queue, 0);
    ASSERT_GT(receiver.port(), 0);

    if (!run_with_preload(receiver.port(), "exit 0")) {
        GTEST_SKIP() << "cannot fork/exec in this environment";
    }

    // Allow datagrams to land.
    for (int spin = 0; spin < 100 && queue.size() < 3; ++spin) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    receiver.stop();

    if (queue.size() == 0) {
        GTEST_SKIP() << "no datagrams received (preload may be blocked here)";
    }

    std::set<std::string> types;
    std::uint64_t job_id = 0;
    bool saw_modules_content = false;
    while (auto m = queue.pop()) {
        types.insert(std::string(sn::to_string(m->type)));
        job_id = m->job_id;
        if (m->type == sn::MsgType::kModules &&
            m->content.find("testmodule/1.0") != std::string::npos) {
            saw_modules_content = true;
        }
        if (queue.size() == 0) break;
    }

    EXPECT_EQ(job_id, 4242u) << "SLURM_JOB_ID must propagate into the header";
    EXPECT_TRUE(types.count("IDS") == 1) << "identifier message missing";
    EXPECT_TRUE(saw_modules_content) << "LOADEDMODULES content missing";
}

TEST(Preload, SilentWithoutConfiguration) {
    // Without SIREN_PORT the constructor must do nothing and the hooked
    // process must run normally.
    const pid_t pid = ::fork();
    if (pid < 0) GTEST_SKIP() << "cannot fork";
    if (pid == 0) {
        ::setenv("LD_PRELOAD", SIREN_PRELOAD_PATH, 1);
        ::unsetenv("SIREN_PORT");
        ::execl("/bin/sh", "sh", "-c", "exit 7", static_cast<char*>(nullptr));
        ::_exit(127);
    }
    int status = 0;
    ::waitpid(pid, &status, 0);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 7) << "preload must not disturb the process";
}

TEST(Preload, NonZeroRankIsSkipped) {
    // Paper §3.1: only SLURM_PROCID=0 collects; rank 5 must stay silent to
    // avoid duplicate data from MPI ranks of the same step.
    sn::MessageQueue queue(4096);
    sn::UdpReceiver receiver(queue, 0);
    ASSERT_GT(receiver.port(), 0);

    const pid_t pid = ::fork();
    if (pid < 0) GTEST_SKIP() << "cannot fork";
    if (pid == 0) {
        ::setenv("LD_PRELOAD", SIREN_PRELOAD_PATH, 1);
        ::setenv("SIREN_PORT", std::to_string(receiver.port()).c_str(), 1);
        ::setenv("SLURM_PROCID", "5", 1);
        ::execl("/bin/sh", "sh", "-c", "exit 0", static_cast<char*>(nullptr));
        ::_exit(127);
    }
    int status = 0;
    ::waitpid(pid, &status, 0);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
        GTEST_SKIP() << "cannot exec in this environment";
    }
    // Give stray datagrams a moment; none must arrive.
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    receiver.stop();
    EXPECT_EQ(queue.size(), 0u) << "rank 5 must not collect";
}

TEST(Preload, GarbagePortStaysSilentAndHarmless) {
    // A malformed SIREN_PORT parses to 0 — the collector must treat that as
    // unconfigured rather than crash or send anywhere.
    const pid_t pid = ::fork();
    if (pid < 0) GTEST_SKIP() << "cannot fork";
    if (pid == 0) {
        ::setenv("LD_PRELOAD", SIREN_PRELOAD_PATH, 1);
        ::setenv("SIREN_PORT", "not-a-port", 1);
        ::execl("/bin/sh", "sh", "-c", "exit 11", static_cast<char*>(nullptr));
        ::_exit(127);
    }
    int status = 0;
    ::waitpid(pid, &status, 0);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 11);
}

TEST(Preload, ConstructorAndDestructorBothCollect) {
    sn::MessageQueue queue(4096);
    sn::UdpReceiver receiver(queue, 0);
    ASSERT_GT(receiver.port(), 0);

    // Exec a real binary directly: dash's `exit` builtin terminates via
    // _exit(), which skips shared-object destructors — a normal program
    // returning from main() runs them (the paper's destructor-hook path).
    const pid_t pid = ::fork();
    if (pid < 0) GTEST_SKIP() << "cannot fork";
    if (pid == 0) {
        ::setenv("LD_PRELOAD", SIREN_PRELOAD_PATH, 1);
        ::setenv("SIREN_PORT", std::to_string(receiver.port()).c_str(), 1);
        ::setenv("SLURM_JOB_ID", "4242", 1);
        ::setenv("SLURM_PROCID", "0", 1);
        ::execl("/usr/bin/true", "true", static_cast<char*>(nullptr));
        ::_exit(127);
    }
    int status = 0;
    ::waitpid(pid, &status, 0);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
        GTEST_SKIP() << "cannot exec in this environment";
    }
    for (int spin = 0; spin < 100 && queue.size() < 6; ++spin) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    receiver.stop();
    if (queue.size() == 0) GTEST_SKIP() << "no datagrams received";

    bool saw_constructor = false;
    bool saw_destructor = false;
    while (auto m = queue.pop()) {
        if (m->type == sn::MsgType::kIds) {
            if (m->content.find("phase=constructor") != std::string::npos) {
                saw_constructor = true;
            }
            if (m->content.find("phase=destructor") != std::string::npos) {
                saw_destructor = true;
            }
        }
        if (queue.size() == 0) break;
    }
    EXPECT_TRUE(saw_constructor) << "startup hook must collect (paper Fig. 1)";
    EXPECT_TRUE(saw_destructor) << "termination hook must collect (paper Fig. 1)";
}
