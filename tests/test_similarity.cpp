// Similarity search (the Table 7 experiment) and the identification-method
// baselines on the mini campaign.

#include <gtest/gtest.h>

#include "analytics/baselines.hpp"
#include "analytics/similarity.hpp"
#include "core/siren.hpp"

namespace sa = siren::analytics;
namespace sw = siren::workload;

class SimilarityFixture : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        siren::FrameworkOptions options;
        options.scale = 1.0;
        options.seed = 5;
        result_ = new siren::CampaignResult(run_campaign(sw::mini_campaign(), options));
    }
    static void TearDownTestSuite() {
        delete result_;
        result_ = nullptr;
    }
    static siren::CampaignResult* result_;
};

siren::CampaignResult* SimilarityFixture::result_ = nullptr;

TEST_F(SimilarityFixture, FindsUnknownProbe) {
    const auto labeler = sa::Labeler::default_rules();
    const auto* probe = sa::find_unknown_probe(result_->aggregates, labeler);
    ASSERT_NE(probe, nullptr);
    EXPECT_NE(probe->exe_path.find("a.out"), std::string::npos);
}

TEST_F(SimilarityFixture, UnknownIdentifiedAsIconWithPerfectTopHit) {
    // The Table 7 headline: the a.out probe matches one icon build at 100
    // on every dimension, and all top hits are icon.
    const auto labeler = sa::Labeler::default_rules();
    const auto* probe = sa::find_unknown_probe(result_->aggregates, labeler);
    ASSERT_NE(probe, nullptr);

    const auto hits = sa::similarity_search(*probe, result_->aggregates, labeler, 10);
    ASSERT_GE(hits.size(), 3u);

    EXPECT_EQ(hits[0].label, "icon");
    EXPECT_EQ(hits[0].scores.fi, 100);
    EXPECT_EQ(hits[0].scores.st, 100);
    EXPECT_EQ(hits[0].scores.sy, 100);
    EXPECT_EQ(hits[0].scores.co, 100);
    EXPECT_EQ(hits[0].scores.ob, 100);
    EXPECT_DOUBLE_EQ(hits[0].average, hits[0].scores.average());

    // Ranking is by decreasing average.
    for (std::size_t i = 1; i < hits.size(); ++i) {
        EXPECT_LE(hits[i].average, hits[i - 1].average);
    }
}

TEST_F(SimilarityFixture, SymbolSimilarityOutlivesFileSimilarity) {
    // Table 7 pattern: FI_H decays fastest, SY_H stays high among true
    // lineage members.
    const auto labeler = sa::Labeler::default_rules();
    const auto* probe = sa::find_unknown_probe(result_->aggregates, labeler);
    ASSERT_NE(probe, nullptr);

    const auto hits = sa::similarity_search(*probe, result_->aggregates, labeler, 10);
    double fi_sum = 0, sy_sum = 0;
    int drifted = 0;
    for (const auto& hit : hits) {
        if (hit.label != "icon" || hit.scores.fi == 100) continue;
        fi_sum += hit.scores.fi;
        sy_sum += hit.scores.sy;
        ++drifted;
    }
    ASSERT_GT(drifted, 0);
    EXPECT_GE(sy_sum / drifted + 3.0, fi_sum / drifted)
        << "on average, symbols must be at least as stable as raw bytes";
}

TEST_F(SimilarityFixture, ParallelSearchMatchesSerial) {
    const auto labeler = sa::Labeler::default_rules();
    const auto* probe = sa::find_unknown_probe(result_->aggregates, labeler);
    ASSERT_NE(probe, nullptr);

    siren::util::ThreadPool pool(4);
    const auto serial = sa::similarity_search(*probe, result_->aggregates, labeler, 10);
    const auto parallel = sa::similarity_search(*probe, result_->aggregates, labeler, 10, &pool);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].exe_path, parallel[i].exe_path);
        EXPECT_DOUBLE_EQ(serial[i].average, parallel[i].average);
    }
}

TEST_F(SimilarityFixture, ScoreRecordsSelfIs100Everywhere) {
    const auto labeler = sa::Labeler::default_rules();
    const auto* probe = sa::find_unknown_probe(result_->aggregates, labeler);
    ASSERT_NE(probe, nullptr);
    const auto self = sa::score_records(*probe, *probe);
    EXPECT_EQ(self.mo, 100);
    EXPECT_EQ(self.fi, 100);
    EXPECT_DOUBLE_EQ(self.average(), 100.0);
}

TEST_F(SimilarityFixture, BaselineComparison) {
    // Ground truth: the a.out binaries are icon. Name-regex must fail;
    // fuzzy-knn must succeed. Crypto-exact succeeds only for the
    // byte-identical twin (a.out run_0), not for the drifted one.
    const auto labeler = sa::Labeler::default_rules();
    sa::GroundTruth truth = {
        {"/scratch/project_1/run_0/a.out", "icon"},
        {"/scratch/project_1/run_1/a.out", "icon"},
    };
    const std::vector<std::string> probes = {"/scratch/project_1/run_0/a.out",
                                             "/scratch/project_1/run_1/a.out"};

    const auto results = sa::evaluate_identification(result_->aggregates, truth, probes,
                                                     labeler, /*min_confidence=*/30.0);
    ASSERT_EQ(results.size(), 3u);

    const auto& name = results[0];
    const auto& crypto = results[1];
    const auto& fuzzy = results[2];

    EXPECT_EQ(name.method, "name-regex");
    EXPECT_EQ(name.identified, 0u) << "a.out carries no name signal";

    EXPECT_EQ(crypto.method, "crypto-exact");
    EXPECT_EQ(crypto.identified, 1u) << "only the byte-identical twin matches exactly";

    EXPECT_EQ(fuzzy.method, "fuzzy-knn");
    EXPECT_EQ(fuzzy.identified, 2u) << "fuzzy similarity identifies both";
}
