// Similarity search (the Table 7 experiment) and the identification-method
// baselines on the mini campaign.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "analytics/baselines.hpp"
#include "analytics/similarity.hpp"
#include "core/siren.hpp"

namespace sa = siren::analytics;
namespace sw = siren::workload;

class SimilarityFixture : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        siren::FrameworkOptions options;
        options.scale = 1.0;
        options.seed = 5;
        result_ = new siren::CampaignResult(run_campaign(sw::mini_campaign(), options));
    }
    static void TearDownTestSuite() {
        delete result_;
        result_ = nullptr;
    }
    static siren::CampaignResult* result_;
};

siren::CampaignResult* SimilarityFixture::result_ = nullptr;

TEST_F(SimilarityFixture, FindsUnknownProbe) {
    const auto labeler = sa::Labeler::default_rules();
    const auto* probe = sa::find_unknown_probe(result_->aggregates, labeler);
    ASSERT_NE(probe, nullptr);
    EXPECT_NE(probe->exe_path.find("a.out"), std::string::npos);
}

TEST_F(SimilarityFixture, UnknownIdentifiedAsIconWithPerfectTopHit) {
    // The Table 7 headline: the a.out probe matches one icon build at 100
    // on every dimension, and all top hits are icon.
    const auto labeler = sa::Labeler::default_rules();
    const auto* probe = sa::find_unknown_probe(result_->aggregates, labeler);
    ASSERT_NE(probe, nullptr);

    const auto hits = sa::similarity_search(*probe, result_->aggregates, labeler, 10);
    ASSERT_GE(hits.size(), 3u);

    EXPECT_EQ(hits[0].label, "icon");
    EXPECT_EQ(hits[0].scores.fi, 100);
    EXPECT_EQ(hits[0].scores.st, 100);
    EXPECT_EQ(hits[0].scores.sy, 100);
    EXPECT_EQ(hits[0].scores.co, 100);
    EXPECT_EQ(hits[0].scores.ob, 100);
    EXPECT_DOUBLE_EQ(hits[0].average, hits[0].scores.average());

    // Ranking is by decreasing average.
    for (std::size_t i = 1; i < hits.size(); ++i) {
        EXPECT_LE(hits[i].average, hits[i - 1].average);
    }
}

TEST_F(SimilarityFixture, SymbolSimilarityOutlivesFileSimilarity) {
    // Table 7 pattern: FI_H decays fastest, SY_H stays high among true
    // lineage members.
    const auto labeler = sa::Labeler::default_rules();
    const auto* probe = sa::find_unknown_probe(result_->aggregates, labeler);
    ASSERT_NE(probe, nullptr);

    const auto hits = sa::similarity_search(*probe, result_->aggregates, labeler, 10);
    double fi_sum = 0, sy_sum = 0;
    int drifted = 0;
    for (const auto& hit : hits) {
        if (hit.label != "icon" || hit.scores.fi == 100) continue;
        fi_sum += hit.scores.fi;
        sy_sum += hit.scores.sy;
        ++drifted;
    }
    ASSERT_GT(drifted, 0);
    EXPECT_GE(sy_sum / drifted + 3.0, fi_sum / drifted)
        << "on average, symbols must be at least as stable as raw bytes";
}

TEST_F(SimilarityFixture, UnknownProbeIsLexicographicallyFirst) {
    // Table 7 runs must be reproducible: among all UNKNOWN user
    // executables the probe is the lexicographically smallest path, not
    // whichever one container iteration happens to visit first.
    const auto labeler = sa::Labeler::default_rules();
    const auto* probe = sa::find_unknown_probe(result_->aggregates, labeler);
    ASSERT_NE(probe, nullptr);

    std::string smallest;
    for (const auto& [path, exe] : result_->aggregates.execs) {
        if (exe.category != siren::consolidate::Category::kUser || !exe.has_sample) continue;
        if (labeler.label(path) != sa::kUnknownLabel) continue;
        if (smallest.empty() || exe.path < smallest) smallest = exe.path;
    }
    EXPECT_EQ(probe->exe_path, smallest);
}

TEST_F(SimilarityFixture, PreparedScoresMatchStringScores) {
    // The cached prepared digests on ExeStat must reproduce the
    // string-parsing scorer dimension for dimension.
    const auto labeler = sa::Labeler::default_rules();
    const auto* probe = sa::find_unknown_probe(result_->aggregates, labeler);
    ASSERT_NE(probe, nullptr);
    const auto probe_prepared = siren::consolidate::PreparedHashes::from(*probe);

    std::size_t checked = 0;
    for (const auto& [path, exe] : result_->aggregates.execs) {
        if (!exe.has_sample || checked >= 25) break;
        const auto via_strings = sa::score_records(*probe, exe.sample);
        const auto via_prepared = sa::score_records(probe_prepared, exe.prepared_sample);
        EXPECT_EQ(via_prepared.mo, via_strings.mo) << path;
        EXPECT_EQ(via_prepared.co, via_strings.co) << path;
        EXPECT_EQ(via_prepared.ob, via_strings.ob) << path;
        EXPECT_EQ(via_prepared.fi, via_strings.fi) << path;
        EXPECT_EQ(via_prepared.st, via_strings.st) << path;
        EXPECT_EQ(via_prepared.sy, via_strings.sy) << path;
        ++checked;
    }
    EXPECT_GT(checked, 0u);
}

TEST_F(SimilarityFixture, TopNIsPrefixOfLargerTopN) {
    // The bounded per-chunk heaps must keep exactly the global best-n.
    const auto labeler = sa::Labeler::default_rules();
    const auto* probe = sa::find_unknown_probe(result_->aggregates, labeler);
    ASSERT_NE(probe, nullptr);

    siren::util::ThreadPool pool(4);
    const auto top10 = sa::similarity_search(*probe, result_->aggregates, labeler, 10, &pool);
    for (const std::size_t n : {std::size_t{1}, std::size_t{3}, std::size_t{5}}) {
        const auto capped = sa::similarity_search(*probe, result_->aggregates, labeler, n, &pool);
        ASSERT_EQ(capped.size(), std::min(n, top10.size()));
        for (std::size_t i = 0; i < capped.size(); ++i) {
            EXPECT_EQ(capped[i].exe_path, top10[i].exe_path) << "top_n " << n;
            EXPECT_DOUBLE_EQ(capped[i].average, top10[i].average);
        }
    }
    EXPECT_TRUE(sa::similarity_search(*probe, result_->aggregates, labeler, 0, &pool).empty());
}

TEST_F(SimilarityFixture, ParallelSearchMatchesSerial) {
    const auto labeler = sa::Labeler::default_rules();
    const auto* probe = sa::find_unknown_probe(result_->aggregates, labeler);
    ASSERT_NE(probe, nullptr);

    siren::util::ThreadPool pool(4);
    const auto serial = sa::similarity_search(*probe, result_->aggregates, labeler, 10);
    const auto parallel = sa::similarity_search(*probe, result_->aggregates, labeler, 10, &pool);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].exe_path, parallel[i].exe_path);
        EXPECT_DOUBLE_EQ(serial[i].average, parallel[i].average);
    }
}

TEST_F(SimilarityFixture, ScoreRecordsSelfIs100Everywhere) {
    const auto labeler = sa::Labeler::default_rules();
    const auto* probe = sa::find_unknown_probe(result_->aggregates, labeler);
    ASSERT_NE(probe, nullptr);
    const auto self = sa::score_records(*probe, *probe);
    EXPECT_EQ(self.mo, 100);
    EXPECT_EQ(self.fi, 100);
    EXPECT_DOUBLE_EQ(self.average(), 100.0);
}

TEST_F(SimilarityFixture, BaselineComparison) {
    // Ground truth: the a.out binaries are icon. Name-regex must fail;
    // fuzzy-knn must succeed. Crypto-exact succeeds only for the
    // byte-identical twin (a.out run_0), not for the drifted one.
    const auto labeler = sa::Labeler::default_rules();
    sa::GroundTruth truth = {
        {"/scratch/project_1/run_0/a.out", "icon"},
        {"/scratch/project_1/run_1/a.out", "icon"},
    };
    const std::vector<std::string> probes = {"/scratch/project_1/run_0/a.out",
                                             "/scratch/project_1/run_1/a.out"};

    const auto results = sa::evaluate_identification(result_->aggregates, truth, probes,
                                                     labeler, /*min_confidence=*/30.0);
    ASSERT_EQ(results.size(), 3u);

    const auto& name = results[0];
    const auto& crypto = results[1];
    const auto& fuzzy = results[2];

    EXPECT_EQ(name.method, "name-regex");
    EXPECT_EQ(name.identified, 0u) << "a.out carries no name signal";

    EXPECT_EQ(crypto.method, "crypto-exact");
    EXPECT_EQ(crypto.identified, 1u) << "only the byte-identical twin matches exactly";

    EXPECT_EQ(fuzzy.method, "fuzzy-knn");
    EXPECT_EQ(fuzzy.identified, 2u) << "fuzzy similarity identifies both";
}
