// Analytics: labeler, library filter, compiler provenance, aggregates, and
// the paper tables computed over the mini campaign.

#include <gtest/gtest.h>

#include "analytics/aggregate.hpp"
#include "analytics/compilers.hpp"
#include "analytics/labeler.hpp"
#include "analytics/libfilter.hpp"
#include "analytics/tables.hpp"
#include "core/siren.hpp"

namespace sa = siren::analytics;
namespace sw = siren::workload;

TEST(Labeler, PaperLabels) {
    const auto labeler = sa::Labeler::default_rules();
    EXPECT_EQ(labeler.label("/users/u/lammps/build_1/bin/lmp"), "LAMMPS");
    EXPECT_EQ(labeler.label("/projappl/p/gromacs-2023.1/bin/gmx_mpi"), "GROMACS");
    EXPECT_EQ(labeler.label("/users/u/miniconda3/envs/w/bin/python3.9"), "miniconda");
    EXPECT_EQ(labeler.label("/users/u/janko/bin/janko_v0"), "janko");
    EXPECT_EQ(labeler.label("/users/u/icon-model/build_3/bin/icon"), "icon");
    EXPECT_EQ(labeler.label("/users/u/amber22/bin/pmemd_v0"), "amber");
    EXPECT_EQ(labeler.label("/users/u/tools/bin/gzip"), "gzip");
    EXPECT_EQ(labeler.label("/users/u/alexandria/bin/alexandria"), "alexandria");
    EXPECT_EQ(labeler.label("/users/u/RadRad/RadRad_v1"), "RadRad");
}

TEST(Labeler, NondescriptNamesStayUnknown) {
    const auto labeler = sa::Labeler::default_rules();
    EXPECT_EQ(labeler.label("/scratch/project_465000531/run_0/a.out"), sa::kUnknownLabel);
    EXPECT_EQ(labeler.label("/users/u/bin/solver"), sa::kUnknownLabel);
}

TEST(Labeler, MinicondaBeatsIconSubstring) {
    // "miniconda" contains the substring "icon"; rule order must win.
    const auto labeler = sa::Labeler::default_rules();
    EXPECT_EQ(labeler.label("/users/u/miniconda3/bin/x"), "miniconda");
}

TEST(LibFilter, DerivesCompositeTags) {
    EXPECT_EQ(sa::derive_library_tag("/opt/cray/pe/hdf5-parallel/lib/libhdf5_fortran_parallel.so"),
              "hdf5-fortran-parallel-cray");
    EXPECT_EQ(sa::derive_library_tag("/opt/rocm-5.2.3/lib/librocfft.so.0"), "rocfft-rocm-fft");
    EXPECT_EQ(sa::derive_library_tag("/lib64/libpthread.so.0"), "pthread");
    EXPECT_EQ(sa::derive_library_tag("/lib64/libc.so.6"), "");
}

TEST(LibFilter, CanonicalOrderIndependentOfPathOrder) {
    // Both paths contain numa+rocm+torch; the tag order comes from the
    // canonical list, not the path.
    EXPECT_EQ(sa::derive_library_tag("/x/torch/librocm_numa.so"),
              sa::derive_library_tag("/x/numa/librocm_torch.so"));
}

TEST(LibFilter, ListDerivationDedupes) {
    const auto tags = sa::derive_library_tags({
        "/lib64/libpthread.so.0",
        "/lib64/libpthread.so.0",
        "/opt/siren/lib/siren.so",
        "/lib64/libc.so.6",  // no tag
    });
    EXPECT_EQ(tags, (std::vector<std::string>{"pthread", "siren"}));
}

TEST(Compilers, ProvenanceParsing) {
    EXPECT_EQ(sa::compiler_provenance("GCC: (SUSE Linux) 7.5.0"), "GCC [SUSE]");
    EXPECT_EQ(sa::compiler_provenance("GCC: (GNU) 8.5.0 20210514 (Red Hat 8.5.0-18)"),
              "GCC [Red Hat]");
    EXPECT_EQ(sa::compiler_provenance("GCC: (conda-forge gcc 12.3.0-3) 12.3.0"), "GCC [conda]");
    EXPECT_EQ(sa::compiler_provenance("GCC: (HPE) 10.3.0 20210408"), "GCC [HPE]");
    EXPECT_EQ(sa::compiler_provenance("Cray clang version 15.0.1 (CrayPE)"), "clang [Cray]");
    EXPECT_EQ(sa::compiler_provenance("AMD clang version 14.0.6 (ROCm 5.2.3)"), "clang [AMD]");
    EXPECT_EQ(sa::compiler_provenance("Linker: AMD LLD 14.0.6"), "LLD [AMD]");
    EXPECT_EQ(sa::compiler_provenance("rustc version 1.68.2"), "rustc");
    EXPECT_EQ(sa::compiler_provenance("GCC: (Debian 12.2.0) 12.2.0"), "GCC");
}

TEST(Compilers, ComboCanonicalOrder) {
    const auto combo = sa::compiler_provenances({
        "AMD clang version 14.0.6 (ROCm 5.2.3)",
        "GCC: (SUSE Linux) 7.5.0",
        "Cray clang version 15.0.1 (CrayPE)",
    });
    EXPECT_EQ(sa::render_combo(combo), "GCC [SUSE], clang [Cray], clang [AMD]");
}

TEST(Compilers, ComboDeduplicates) {
    const auto combo = sa::compiler_provenances({
        "GCC: (SUSE Linux) 7.5.0",
        "GCC: (SUSE Linux) 7.4.1",  // same provenance, other version
    });
    EXPECT_EQ(sa::render_combo(combo), "GCC [SUSE]");
}

// --- aggregates over a synthetic record --------------------------------------

namespace {

siren::consolidate::ProcessRecord make_record(std::uint64_t job, std::int64_t uid,
                                              const std::string& exe,
                                              siren::consolidate::Category cat) {
    siren::consolidate::ProcessRecord r;
    r.job_id = job;
    r.uid = uid;
    r.pid = 1;
    r.exe_path = exe;
    r.category = cat;
    r.objects_hash = "3:aaaaaaaa:bbbb";
    r.file_hash = "3:cccccccc:dddd";
    return r;
}

}  // namespace

TEST(Aggregates, AddAccumulates) {
    sa::Aggregates agg;
    agg.add(make_record(1, 1001, "/usr/bin/bash", siren::consolidate::Category::kSystem));
    agg.add(make_record(1, 1001, "/usr/bin/bash", siren::consolidate::Category::kSystem));
    agg.add(make_record(2, 1002, "/usr/bin/bash", siren::consolidate::Category::kSystem));

    EXPECT_EQ(agg.total_processes, 3u);
    const auto& exe = agg.execs.at("/usr/bin/bash");
    EXPECT_EQ(exe.processes, 3u);
    EXPECT_EQ(exe.users.size(), 2u);
    EXPECT_EQ(exe.jobs.size(), 2u);
    EXPECT_EQ(agg.users.at(1001).system_processes, 2u);
}

TEST(Aggregates, MergeEqualsSequentialAdd) {
    sa::Aggregates all, a, b;
    const auto r1 = make_record(1, 1001, "/usr/bin/bash", siren::consolidate::Category::kSystem);
    const auto r2 = make_record(2, 1002, "/users/u/app", siren::consolidate::Category::kUser);
    all.add(r1);
    all.add(r2);
    a.add(r1);
    b.add(r2);
    a.merge(b);

    EXPECT_EQ(a.total_processes, all.total_processes);
    EXPECT_EQ(a.execs.size(), all.execs.size());
    EXPECT_EQ(a.users.size(), all.users.size());
    EXPECT_EQ(a.execs.at("/users/u/app").processes, 1u);
}

// --- paper tables over the mini campaign -------------------------------------

class MiniCampaignTables : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        siren::FrameworkOptions options;
        options.scale = 1.0;
        options.seed = 5;
        result_ = new siren::CampaignResult(run_campaign(sw::mini_campaign(), options));
    }
    static void TearDownTestSuite() {
        delete result_;
        result_ = nullptr;
    }
    static siren::CampaignResult* result_;
};

siren::CampaignResult* MiniCampaignTables::result_ = nullptr;

TEST_F(MiniCampaignTables, Table2HasAllUsersAndTotal) {
    const auto t = sa::table2_users(result_->aggregates);
    EXPECT_EQ(t.rows(), 4u);  // 3 users + Total
    EXPECT_EQ(t.row(t.rows() - 1)[0], "Total");
}

TEST_F(MiniCampaignTables, Table3RanksBashFirst) {
    const auto t = sa::table3_system_execs(result_->aggregates);
    ASSERT_GE(t.rows(), 2u);
    EXPECT_EQ(t.row(0)[0], "/usr/bin/bash");  // 3 users, most jobs
    // bash has two object-set variants in the mini campaign.
    EXPECT_EQ(t.row(0)[4], "2");
}

TEST_F(MiniCampaignTables, Table4ShowsBashVariants) {
    const auto t = sa::table4_object_variants(result_->aggregates, "/usr/bin/bash");
    ASSERT_EQ(t.rows(), 3u);  // 2 variants + Total
    // Default /lib64 variant dominates; spack variant second.
    EXPECT_NE(t.row(0)[2].find("/lib64/libtinfo"), std::string::npos);
    EXPECT_NE(t.row(1)[2].find("spack"), std::string::npos);
}

TEST_F(MiniCampaignTables, Table5LabelsIconAndUnknown) {
    const auto t = sa::table5_user_labels(result_->aggregates);
    bool icon = false, unknown = false;
    for (std::size_t i = 0; i < t.rows(); ++i) {
        icon = icon || t.row(i)[0] == "icon";
        unknown = unknown || t.row(i)[0] == sa::kUnknownLabel;
    }
    EXPECT_TRUE(icon);
    EXPECT_TRUE(unknown) << "the a.out binaries must stay UNKNOWN under name labeling";
}

TEST_F(MiniCampaignTables, Table6ShowsCompilerCombos) {
    const auto t = sa::table6_compilers(result_->aggregates);
    ASSERT_GE(t.rows(), 1u);
    EXPECT_EQ(t.row(0)[0], "GCC [SUSE]");
}

TEST_F(MiniCampaignTables, Table8ListsInterpreter) {
    const auto t = sa::table8_python(result_->aggregates);
    ASSERT_EQ(t.rows(), 1u);
    EXPECT_EQ(t.row(0)[0], "python3.10");
    EXPECT_EQ(t.row(0)[4], "2");  // two distinct scripts
}

TEST_F(MiniCampaignTables, Fig2ContainsSirenTag) {
    const auto t = sa::fig2_library_tags(result_->aggregates);
    bool siren_tag = false;
    for (std::size_t i = 0; i < t.rows(); ++i) siren_tag = siren_tag || t.row(i)[0] == "siren";
    EXPECT_TRUE(siren_tag) << "siren.so is injected everywhere (paper §4.5)";
}

TEST_F(MiniCampaignTables, Fig3ListsImportedPackages) {
    const auto t = sa::fig3_python_packages(result_->aggregates);
    std::set<std::string> pkgs;
    for (std::size_t i = 0; i < t.rows(); ++i) pkgs.insert(t.row(i)[0]);
    EXPECT_TRUE(pkgs.count("heapq") == 1);
    EXPECT_TRUE(pkgs.count("numpy") == 1);
}

TEST_F(MiniCampaignTables, Fig4MatrixMarksIconCompilers) {
    const auto t = sa::fig4_compiler_matrix(result_->aggregates);
    ASSERT_GE(t.rows(), 1u);
    ASSERT_GE(t.cols(), 2u);
    // Single label "icon", compiler GCC [SUSE] => a 1 in that column.
    EXPECT_EQ(t.row(0)[0], "icon");
    EXPECT_EQ(t.row(0)[1], "1");
}

TEST_F(MiniCampaignTables, Fig5MatrixMarksIconLibraries) {
    const auto t = sa::fig5_library_matrix(result_->aggregates);
    ASSERT_GE(t.rows(), 1u);
    const auto& header = t.header();
    // climatedt must be one of the columns and set for icon.
    std::size_t col = 0;
    for (std::size_t c = 1; c < header.size(); ++c) {
        if (header[c] == "climatedt") col = c;
    }
    ASSERT_GT(col, 0u);
    EXPECT_EQ(t.row(0)[col], "1");
}

TEST_F(MiniCampaignTables, UserNamerMapsUids) {
    const auto namer = sa::default_user_namer();
    EXPECT_EQ(namer(1001), "user_1");
    EXPECT_EQ(namer(1012), "user_12");
    EXPECT_EQ(namer(555), "uid_555");
}
