// Serving layer: segment tailing, the snapshot-swap recognition service
// (concurrent identify under writes), the TCP query protocol, and the
// checkpoint + segment-replay crash recovery flow — the acceptance path of
// the live recognition daemon.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "fuzzy/fuzzy.hpp"
#include "net/codec.hpp"
#include "net/message.hpp"
#include "serve/serve.hpp"
#include "storage/segment_store.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/rng.hpp"

namespace fs = std::filesystem;
namespace sf = siren::fuzzy;
namespace sv = siren::serve;

namespace {

/// Unique scratch directory, removed on scope exit.
class ScratchDir {
public:
    explicit ScratchDir(const std::string& tag) {
        static std::atomic<int> counter{0};
        path_ = (fs::temp_directory_path() /
                 ("siren_serve_" + tag + "_" + std::to_string(::getpid()) + "_" +
                  std::to_string(counter.fetch_add(1))))
                    .string();
        fs::remove_all(path_);
        fs::create_directories(path_);
    }
    ~ScratchDir() {
        std::error_code ec;
        fs::remove_all(path_, ec);
    }
    const std::string& path() const { return path_; }
    std::string sub(const std::string& name) const { return path_ + "/" + name; }

private:
    std::string path_;
};

/// Overwrite a window with random bytes — the localized-drift model the
/// recognition tests use throughout.
std::vector<std::uint8_t> mutate_region(std::vector<std::uint8_t> data, std::size_t start,
                                        std::size_t len, std::uint64_t seed) {
    siren::util::Rng rng(seed);
    for (std::size_t i = start; i < std::min(start + len, data.size()); ++i) {
        data[i] = static_cast<std::uint8_t>(rng.below(256));
    }
    return data;
}

/// The wire datagram an ingest daemon journals for one FILE_H sighting.
std::string file_hash_datagram(const sf::FuzzyDigest& digest, std::uint64_t job = 7) {
    siren::net::Message m;
    m.job_id = job;
    m.pid = 4242;
    m.exe_hash = "00112233445566778899aabbccddeeff";
    m.host = "nid000012";
    m.time = 1753660800;
    m.type = siren::net::MsgType::kFileHash;
    m.content = digest.to_string();
    return siren::net::encode(m);
}

/// Service options tuned for tests: fast feed polling, no checkpoint churn.
sv::ServeOptions fast_options() {
    sv::ServeOptions options;
    options.feed_poll = std::chrono::milliseconds(2);
    options.writer_idle = std::chrono::milliseconds(2);
    options.checkpoint_interval = std::chrono::milliseconds(0);
    return options;
}

}  // namespace

// ---------------------------------------------------------------------------
// SegmentTail

TEST(SegmentTail, MissingDirectoryIsEmptyPoll) {
    sv::SegmentTail tail("/nonexistent/siren/segments");
    EXPECT_EQ(tail.poll(nullptr), 0u);
    EXPECT_EQ(tail.stats().records, 0u);
}

TEST(SegmentTail, FollowsAppendsAcrossPolls) {
    ScratchDir dir("tail_follow");
    siren::storage::SegmentStore store(dir.path(), 1);

    std::vector<std::string> delivered;
    sv::SegmentTail tail(dir.path());
    const auto collect = [&delivered](std::string_view record) {
        delivered.emplace_back(record);
    };

    store.append(0, "alpha");
    store.append(0, "beta");
    store.sync_all();
    EXPECT_EQ(tail.poll(collect), 2u);
    EXPECT_EQ(tail.poll(collect), 0u) << "no new bytes, no records";

    store.append(0, "gamma");
    store.sync_all();
    EXPECT_EQ(tail.poll(collect), 1u);
    ASSERT_EQ(delivered.size(), 3u);
    EXPECT_EQ(delivered[0], "alpha");
    EXPECT_EQ(delivered[1], "beta");
    EXPECT_EQ(delivered[2], "gamma");
}

TEST(SegmentTail, OffsetsResumeAcrossRestart) {
    ScratchDir dir("tail_resume");
    siren::storage::SegmentStore store(dir.path(), 1);
    store.append(0, "one");
    store.append(0, "two");
    store.sync_all();

    sv::SegmentTail first(dir.path());
    std::size_t seen_first = 0;
    first.poll([&seen_first](std::string_view) { ++seen_first; });
    ASSERT_EQ(seen_first, 2u);
    const auto watermark = first.offsets();

    store.append(0, "three");
    store.sync_all();

    // A restarted tail with the saved watermark sees only the suffix.
    sv::SegmentTail second(dir.path(), watermark);
    std::vector<std::string> suffix;
    second.poll([&suffix](std::string_view r) { suffix.emplace_back(r); });
    ASSERT_EQ(suffix.size(), 1u);
    EXPECT_EQ(suffix[0], "three");
}

TEST(SegmentTail, PartialTailRecordWaitsForCompletion) {
    ScratchDir dir("tail_partial");
    siren::storage::SegmentStore store(dir.path(), 1);
    store.append(0, "complete");
    store.sync_all();

    sv::SegmentTail tail(dir.path());
    EXPECT_EQ(tail.poll(nullptr), 1u);

    // Byte-level simulation of an append in flight: frame header promises
    // more payload than is on disk.
    const auto segments = siren::storage::list_segments(dir.path());
    ASSERT_EQ(segments.size(), 1u);
    {
        std::ofstream out(segments[0], std::ios::binary | std::ios::app);
        const char partial[] = {8, 0, 0, 0, 1, 2, 3, 4, 'h', 'a'};  // 8-byte payload, 2 present
        out.write(partial, sizeof partial);
    }
    EXPECT_EQ(tail.poll(nullptr), 0u) << "incomplete frame must not be delivered";

    // The writer finishes the payload: exactly one record appears. (The
    // CRC is wrong on purpose — completion must surface it as a checksum
    // skip, proving the frame was re-examined, not silently dropped.)
    {
        std::ofstream out(segments[0], std::ios::binary | std::ios::app);
        out.write("aaaaaa", 6);
    }
    EXPECT_EQ(tail.poll(nullptr), 0u);
    EXPECT_EQ(tail.stats().crc_failures, 1u);
}

TEST(SegmentTail, MaxRecordsBoundsOnePoll) {
    ScratchDir dir("tail_bound");
    siren::storage::SegmentStore store(dir.path(), 1);
    for (int i = 0; i < 10; ++i) store.append(0, "r" + std::to_string(i));
    store.sync_all();

    sv::SegmentTail tail(dir.path());
    EXPECT_EQ(tail.poll(nullptr, 4), 4u);
    EXPECT_EQ(tail.poll(nullptr, 4), 4u);
    EXPECT_EQ(tail.poll(nullptr, 4), 2u);
    EXPECT_EQ(tail.stats().records, 10u);
}

// ---------------------------------------------------------------------------
// RecognitionService — snapshot swap and the write path

TEST(RecognitionService, ObserveThenIdentify) {
    sv::RecognitionService service(fast_options());
    siren::util::Rng rng(11);
    const auto blob = rng.bytes(8192);
    const auto digest = sf::fuzzy_hash(blob);

    EXPECT_FALSE(service.identify(digest).has_value()) << "empty registry knows nothing";

    const auto applied = service.observe_sync(digest, "icon");
    EXPECT_TRUE(applied.new_family);
    EXPECT_EQ(applied.name, "icon");

    const auto match = service.identify(digest);
    ASSERT_TRUE(match.has_value());
    EXPECT_EQ(match->name, "icon");
    EXPECT_EQ(match->score, 100);
    EXPECT_EQ(match->family, applied.family);
}

TEST(RecognitionService, AsyncObserveVisibleAfterFlush) {
    sv::RecognitionService service(fast_options());
    siren::util::Rng rng(13);
    const auto digest = sf::fuzzy_hash(rng.bytes(8192));

    const auto seq = service.observe(digest, "amber");
    ASSERT_TRUE(seq.has_value());
    service.flush();
    EXPECT_GE(service.applied_seq(), *seq);
    const auto match = service.identify(digest);
    ASSERT_TRUE(match.has_value());
    EXPECT_EQ(match->name, "amber");
}

TEST(RecognitionService, SnapshotIsImmutableUnderLaterWrites) {
    sv::RecognitionService service(fast_options());
    siren::util::Rng rng(17);
    const auto digest_a = sf::fuzzy_hash(rng.bytes(8192));
    const auto digest_b = sf::fuzzy_hash(rng.bytes(8192));
    service.observe_sync(digest_a, "first");

    const auto snap = service.snapshot();
    ASSERT_EQ(snap->registry.family_count(), 1u);

    service.observe_sync(digest_b, "second");
    EXPECT_EQ(snap->registry.family_count(), 1u)
        << "a held snapshot must never see later writes";
    EXPECT_EQ(service.snapshot()->registry.family_count(), 2u);
    EXPECT_GT(service.snapshot()->version, snap->version);
}

TEST(RecognitionService, TopNAndIdentifyManyAgainstOneSnapshot) {
    sv::RecognitionService service(fast_options());
    siren::util::Rng rng(19);
    const auto base = rng.bytes(16384);
    const auto drifted = mutate_region(base, 3000, 600, 20);
    const auto unrelated = rng.bytes(16384);
    service.observe_sync(sf::fuzzy_hash(base), "gromacs");
    service.observe_sync(sf::fuzzy_hash(unrelated), "lammps");

    const auto top = service.top_n(sf::fuzzy_hash(drifted), 5);
    ASSERT_GE(top.size(), 1u);
    EXPECT_EQ(top.front().name, "gromacs");

    siren::util::ThreadPool pool(2);
    const std::vector<sf::FuzzyDigest> probes = {
        sf::fuzzy_hash(base), sf::fuzzy_hash(unrelated), sf::fuzzy_hash(rng.bytes(4096))};
    const auto serial = service.identify_many(probes);
    const auto parallel = service.identify_many(probes, &pool);
    ASSERT_EQ(serial.size(), 3u);
    ASSERT_TRUE(serial[0] && serial[1]);
    EXPECT_FALSE(serial[2]);
    for (std::size_t i = 0; i < probes.size(); ++i) {
        ASSERT_EQ(serial[i].has_value(), parallel[i].has_value()) << i;
        if (serial[i]) {
            EXPECT_EQ(serial[i]->family, parallel[i]->family);
            EXPECT_EQ(serial[i]->score, parallel[i]->score);
        }
    }
}

TEST(RecognitionService, ConcurrentIdentifyUnderWriteLoad) {
    // The tentpole property: identify answers stay correct and available
    // while a writer storm runs. (Latency independence is measured by
    // bench_serve_qps; here we pin correctness.)
    sv::RecognitionService service(fast_options());
    siren::util::Rng rng(23);
    const auto known = sf::fuzzy_hash(rng.bytes(16384));
    service.observe_sync(known, "stable");

    std::atomic<bool> stop{false};
    std::thread writer([&] {
        siren::util::Rng wrng(29);
        while (!stop.load(std::memory_order_relaxed)) {
            for (int burst = 0; burst < 16; ++burst) {
                service.observe(sf::fuzzy_hash(wrng.bytes(2048)));
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
    });

    // Keep identifying until the writer demonstrably landed a batch (on a
    // single-core box a fixed iteration count can finish before the writer
    // thread is ever scheduled), with a deadline as the backstop.
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
    std::uint64_t probes = 0;
    while (service.counters().observes_applied < 64 &&
           std::chrono::steady_clock::now() < deadline) {
        const auto match = service.identify(known);
        ASSERT_TRUE(match.has_value()) << "identify " << probes << " lost a known family";
        EXPECT_EQ(match->name, "stable");
        EXPECT_EQ(match->score, 100);
        ++probes;
    }
    stop.store(true);
    writer.join();
    service.flush();
    EXPECT_GE(service.counters().observes_applied, 64u) << "writer starved for 10s";
    EXPECT_GT(service.snapshot()->registry.family_count(), 1u) << "writer storm did land";
    EXPECT_GT(probes, 0u);
}

// ---------------------------------------------------------------------------
// Feed path: ingest segments flow into the live registry

TEST(RecognitionService, FeedsFromSegmentsAndFollows) {
    ScratchDir dir("feed");
    siren::util::Rng rng(31);
    const auto blob_a = rng.bytes(8192);
    const auto blob_b = rng.bytes(8192);

    siren::storage::SegmentStore store(dir.path(), 1);
    store.append(0, file_hash_datagram(sf::fuzzy_hash(blob_a)));
    store.append(0, "not a siren datagram at all");
    store.sync_all();

    auto options = fast_options();
    options.segments_dir = dir.path();
    sv::RecognitionService service(options);

    // The pre-existing record was replayed during construction.
    EXPECT_TRUE(service.identify(sf::fuzzy_hash(blob_a)).has_value());
    EXPECT_EQ(service.counters().feed_malformed, 1u);

    // New records appended while the service runs are followed live.
    store.append(0, file_hash_datagram(sf::fuzzy_hash(blob_b)));
    store.sync_all();
    service.flush();
    const auto match = service.identify(sf::fuzzy_hash(blob_b));
    ASSERT_TRUE(match.has_value());
    EXPECT_EQ(service.counters().feed_file_hashes, 2u);
}

// ---------------------------------------------------------------------------
// Checkpoint + recovery

TEST(RecognitionService, CheckpointRoundTripPreservesRegistry) {
    ScratchDir dir("ckpt");
    const auto ckpt = dir.sub("registry.ckpt");
    siren::util::Rng rng(37);
    const auto digest = sf::fuzzy_hash(rng.bytes(8192));

    {
        auto options = fast_options();
        options.checkpoint_path = ckpt;
        sv::RecognitionService service(options);
        service.observe_sync(digest, "icon");
        std::string error;
        ASSERT_TRUE(service.checkpoint_now(&error)) << error;
        ASSERT_TRUE(fs::exists(ckpt));
        service.stop();
    }

    auto options = fast_options();
    options.checkpoint_path = ckpt;
    sv::RecognitionService restored(options);
    const auto match = restored.identify(digest);
    ASSERT_TRUE(match.has_value());
    EXPECT_EQ(match->name, "icon");
    EXPECT_EQ(restored.snapshot()->applied, 1u);
}

TEST(RecognitionService, CorruptCheckpointIsLoudNotSilent) {
    ScratchDir dir("ckpt_bad");
    const auto ckpt = dir.sub("registry.ckpt");
    {
        std::ofstream out(ckpt);
        out << "SIRENCKPT 1\napplied zero\nregistry\n";
    }
    auto options = fast_options();
    options.checkpoint_path = ckpt;
    EXPECT_THROW(sv::RecognitionService{options}, siren::util::ParseError);
    {
        std::ofstream out(ckpt, std::ios::trunc);
        out << "not a checkpoint\n";
    }
    EXPECT_THROW(sv::RecognitionService{options}, siren::util::ParseError);
}

TEST(RecognitionService, CrashRecoveryReplaysSegmentsPastWatermark) {
    // The acceptance flow: feed from segments with checkpointing, "crash"
    // (recover from a mid-run checkpoint, discarding the later one), and
    // converge to the same family assignments via watermark replay.
    ScratchDir dir("recover");
    const auto segments = dir.sub("segments");
    const auto ckpt = dir.sub("registry.ckpt");
    const auto ckpt_saved = dir.sub("registry.ckpt.crashpoint");

    siren::util::Rng rng(41);
    std::vector<sf::FuzzyDigest> corpus;
    for (int fam = 0; fam < 4; ++fam) {
        const auto base = rng.bytes(8192);
        corpus.push_back(sf::fuzzy_hash(base));
        corpus.push_back(sf::fuzzy_hash(mutate_region(base, 2000, 300,
                                                      static_cast<std::uint64_t>(fam) + 100)));
    }

    siren::storage::SegmentStore store(segments, 1);
    std::vector<std::pair<siren::recognize::FamilyId, std::string>> live_assignments;
    {
        auto options = fast_options();
        options.segments_dir = segments;
        options.checkpoint_path = ckpt;
        sv::RecognitionService service(options);

        // Phase 1: half the corpus flows through the feed, then checkpoint.
        for (std::size_t i = 0; i < corpus.size() / 2; ++i) {
            store.append(0, file_hash_datagram(corpus[i]));
        }
        store.sync_all();
        service.flush();
        std::string error;
        ASSERT_TRUE(service.checkpoint_now(&error)) << error;
        fs::copy_file(ckpt, ckpt_saved);  // the state a crash would rewind to

        // Phase 2: the rest arrives after the checkpoint.
        for (std::size_t i = corpus.size() / 2; i < corpus.size(); ++i) {
            store.append(0, file_hash_datagram(corpus[i]));
        }
        store.sync_all();
        service.flush();
        for (const auto& digest : corpus) {
            const auto match = service.identify(digest);
            ASSERT_TRUE(match.has_value());
            live_assignments.emplace_back(match->family, match->name);
        }
        service.stop();
    }

    // Crash simulation: the shutdown checkpoint is lost; only the mid-run
    // one survives. Recovery = that checkpoint + replay past its watermark.
    fs::copy_file(ckpt_saved, ckpt, fs::copy_options::overwrite_existing);
    auto options = fast_options();
    options.segments_dir = segments;
    options.checkpoint_path = ckpt;
    sv::RecognitionService recovered(options);
    for (std::size_t i = 0; i < corpus.size(); ++i) {
        const auto match = recovered.identify(corpus[i]);
        ASSERT_TRUE(match.has_value()) << "probe " << i << " lost after recovery";
        EXPECT_EQ(match->family, live_assignments[i].first) << "probe " << i;
        EXPECT_EQ(match->name, live_assignments[i].second) << "probe " << i;
    }
    EXPECT_EQ(recovered.snapshot()->registry.total_sightings(), corpus.size());

    // The recovered service keeps following the same segment stream.
    const auto late = sf::fuzzy_hash(rng.bytes(8192));
    store.append(0, file_hash_datagram(late));
    store.sync_all();
    recovered.flush();
    EXPECT_TRUE(recovered.identify(late).has_value());
}

// ---------------------------------------------------------------------------
// Query protocol (no sockets)

TEST(QueryProtocol, FramingRoundTripAndLimit) {
    std::string buffer;
    sv::append_frame(buffer, "IDENTIFY x");
    sv::append_frame(buffer, "STATS");

    std::size_t consumed = 0;
    auto first = sv::parse_frame(buffer, consumed);
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(*first, "IDENTIFY x");
    buffer.erase(0, consumed);
    auto second = sv::parse_frame(buffer, consumed);
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(*second, "STATS");
    buffer.erase(0, consumed);
    EXPECT_FALSE(sv::parse_frame(buffer, consumed).has_value());

    std::string huge(4, '\xFF');  // length field = 0xFFFFFFFF
    EXPECT_THROW(sv::parse_frame(huge, consumed), siren::util::ParseError);
}

TEST(QueryProtocol, ExecuteQueryVerbsAndErrors) {
    sv::RecognitionService service(fast_options());
    siren::util::Rng rng(43);
    const auto digest = sf::fuzzy_hash(rng.bytes(8192));
    const auto digest_str = digest.to_string();

    EXPECT_EQ(sv::execute_query(service, "IDENTIFY " + digest_str), "UNKNOWN");
    const auto observed = sv::execute_query(service, "OBSERVE " + digest_str + " icon");
    EXPECT_TRUE(observed.starts_with("OK ")) << observed;
    EXPECT_NE(observed.find(" new icon"), std::string::npos) << observed;
    const auto identified = sv::execute_query(service, "IDENTIFY " + digest_str);
    EXPECT_TRUE(identified.starts_with("OK ")) << identified;
    EXPECT_NE(identified.find("icon"), std::string::npos);

    EXPECT_TRUE(sv::execute_query(service, "TOPN " + digest_str + " 3").starts_with("OK 1\n"));
    // STATS is a versioned key=value schema; assert through the parser,
    // not byte offsets, so added keys never break this test.
    const auto stats = sv::parse_stats(sv::execute_query(service, "STATS"));
    EXPECT_EQ(stats.get("stats_version"), sv::kStatsVersion);
    EXPECT_EQ(stats.role, "leader");
    EXPECT_EQ(stats.get("families"), 1u);

    EXPECT_TRUE(sv::execute_query(service, "").starts_with("ERR"));
    EXPECT_TRUE(sv::execute_query(service, "FROBNICATE x").starts_with("ERR"));
    EXPECT_TRUE(sv::execute_query(service, "IDENTIFY").starts_with("ERR"));
    EXPECT_TRUE(sv::execute_query(service, "IDENTIFY not-a-digest").starts_with("ERR"));
    EXPECT_TRUE(sv::execute_query(service, "TOPN " + digest_str + " zero").starts_with("ERR"));
    EXPECT_TRUE(sv::execute_query(service, "CHECKPOINT").starts_with("ERR"))
        << "no checkpoint path configured";
}

// ---------------------------------------------------------------------------
// TCP server + client

TEST(QueryServer, EndToEndOverTcp) {
    sv::RecognitionService service(fast_options());
    sv::QueryServer server(service);
    ASSERT_NE(server.port(), 0);

    siren::util::Rng rng(47);
    const auto base = rng.bytes(16384);
    const auto digest_str = sf::fuzzy_hash(base).to_string();

    sv::QueryClient client("127.0.0.1", server.port());
    EXPECT_FALSE(client.identify(digest_str).has_value());

    const auto observed = client.observe(digest_str, "icon");
    EXPECT_TRUE(observed.new_family);
    EXPECT_EQ(observed.name, "icon");

    // A label with a space is legal for the registry ("Open_MPI" after its
    // name mapping); the client applies that mapping instead of producing
    // a malformed two-token protocol hint.
    const auto spaced =
        client.observe(sf::fuzzy_hash(rng.bytes(16384)).to_string(), "Open MPI");
    EXPECT_EQ(spaced.name, "Open_MPI");

    const auto match = client.identify(digest_str);
    ASSERT_TRUE(match.has_value());
    EXPECT_EQ(match->name, "icon");
    EXPECT_EQ(match->score, 100);

    const auto top = client.top_n(digest_str, 2);
    ASSERT_EQ(top.size(), 1u);
    EXPECT_EQ(top.front().name, "icon");

    const auto stats = client.stats_text();
    EXPECT_NE(stats.find("families 2\n"), std::string::npos) << stats;

    EXPECT_TRUE(client.request("FROBNICATE").starts_with("ERR"));

    server.stop();
    EXPECT_GE(server.stats().requests, 6u);
    EXPECT_EQ(server.stats().connections, 1u);
}

TEST(QueryServer, BatchIdentifyAndConcurrentClientsUnderWrites) {
    auto options = fast_options();
    options.batch_pool_threads = 2;
    sv::RecognitionService service(options);
    sv::QueryServer server(service);

    siren::util::Rng rng(53);
    const auto blob_a = rng.bytes(16384);
    const auto blob_b = rng.bytes(16384);
    const auto str_a = sf::fuzzy_hash(blob_a).to_string();
    const auto str_b = sf::fuzzy_hash(blob_b).to_string();
    {
        sv::QueryClient seed("127.0.0.1", server.port());
        seed.observe(str_a, "alpha");
        seed.observe(str_b, "beta");
    }

    // A writer keeps the registry hot while two clients query.
    std::atomic<bool> stop{false};
    std::thread writer([&] {
        siren::util::Rng wrng(59);
        while (!stop.load(std::memory_order_relaxed)) {
            service.observe(sf::fuzzy_hash(wrng.bytes(2048)));
            std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
    });

    std::atomic<int> failures{0};
    const auto client_loop = [&](const std::string& digest, const std::string& expected) {
        try {
            sv::QueryClient client("127.0.0.1", server.port());
            for (int i = 0; i < 50; ++i) {
                const auto match = client.identify(digest);
                if (!match || match->name != expected) {
                    failures.fetch_add(1);
                    return;
                }
                const auto many = client.identify_many({digest, "3:zzzzzzz:zzzzzzz", digest});
                if (many.size() != 3 || !many[0] || many[1] || !many[2] ||
                    many[0]->name != expected) {
                    failures.fetch_add(1);
                    return;
                }
            }
        } catch (const std::exception&) {
            failures.fetch_add(1);
        }
    };
    std::thread c1(client_loop, str_a, "alpha");
    std::thread c2(client_loop, str_b, "beta");
    c1.join();
    c2.join();
    stop.store(true);
    writer.join();
    EXPECT_EQ(failures.load(), 0) << "a concurrent identify saw a wrong/missing answer";
    EXPECT_EQ(server.stats().protocol_errors, 0u);
}

TEST(QueryProtocol, IdentifybAlwaysAnswersCounted) {
    sv::RecognitionService service(fast_options());
    siren::util::Rng rng(61);
    const auto digest_str = sf::fuzzy_hash(rng.bytes(8192)).to_string();

    // Counted framing even for one digest — the uniformity IDENTIFYB exists
    // for (QueryClient's truncation check relies on it).
    EXPECT_EQ(sv::execute_query(service, "IDENTIFYB " + digest_str), "OK 1\nunknown\n");
    sv::execute_query(service, "OBSERVE " + digest_str + " icon");
    const auto reply = sv::execute_query(service, "IDENTIFYB " + digest_str);
    EXPECT_TRUE(reply.starts_with("OK 1\nmatch ")) << reply;
    EXPECT_NE(reply.find("icon"), std::string::npos);

    const auto both =
        sv::execute_query(service, "IDENTIFYB " + digest_str + " 3:zzzzzzz:zzzzzzz");
    EXPECT_TRUE(both.starts_with("OK 2\nmatch ")) << both;
    EXPECT_NE(both.find("\nunknown\n"), std::string::npos) << both;

    EXPECT_TRUE(sv::execute_query(service, "IDENTIFYB").starts_with("ERR"));
}

TEST(QueryServer, GarbageFrameDropsConnectionNotServer) {
    sv::RecognitionService service(fast_options());
    sv::QueryServer server(service);

    {
        // Raw socket speaking garbage: a length field beyond the limit.
        sv::QueryClient bad("127.0.0.1", server.port());
        EXPECT_THROW((void)bad.request(std::string(2 << 20, 'x')), siren::util::Error);
    }
    // The server survives and keeps answering well-formed clients.
    sv::QueryClient good("127.0.0.1", server.port());
    EXPECT_TRUE(good.request("STATS").starts_with("OK"));
    server.stop();
    EXPECT_GE(server.stats().protocol_errors, 1u);
}

// ---------------------------------------------------------------------------
// Request coalescing

namespace {

/// Blocking loopback socket for protocol-level tests that need pipelining
/// or a stub server — things QueryClient's one-request-at-a-time API
/// deliberately does not expose.
int raw_connect(std::uint16_t port) {
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

/// Read until `count` complete frames arrive; returns their payloads.
std::vector<std::string> read_frames(int fd, std::size_t count) {
    std::vector<std::string> frames;
    std::string buffer;
    char buf[4096];
    while (frames.size() < count) {
        std::size_t consumed = 0;
        const auto payload = sv::parse_frame(buffer, consumed);
        if (payload) {
            frames.emplace_back(*payload);
            buffer.erase(0, consumed);
            continue;
        }
        const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
        if (n <= 0) break;  // peer closed: return what we have
        buffer.append(buf, static_cast<std::size_t>(n));
    }
    return frames;
}

}  // namespace

TEST(QueryServer, CoalescingOffByDefault) {
    sv::RecognitionService service(fast_options());
    sv::QueryServer server(service);
    sv::QueryClient client("127.0.0.1", server.port());
    siren::util::Rng rng(67);
    (void)client.identify(sf::fuzzy_hash(rng.bytes(8192)).to_string());
    server.stop();
    EXPECT_EQ(server.stats().coalesced_batches, 0u);
    EXPECT_EQ(server.stats().coalesced_probes, 0u);
}

TEST(QueryServer, CoalescedConcurrentSingletonsMatchSequentialAnswers) {
    auto options = fast_options();
    options.coalesce.batch_window_us = 2000;
    options.coalesce.batch_max = 8;
    options.batch_pool_threads = 2;
    sv::RecognitionService service(options);

    siren::util::Rng rng(71);
    std::vector<std::string> known;
    for (int fam = 0; fam < 6; ++fam) {
        const auto base = rng.bytes(16384);
        service.observe_sync(sf::fuzzy_hash(base), "fam" + std::to_string(fam));
        known.push_back(sf::fuzzy_hash(base).to_string());
        known.push_back(sf::fuzzy_hash(mutate_region(base, 2000, 400,
                                                     static_cast<std::uint64_t>(fam)))
                            .to_string());
    }
    known.push_back(sf::fuzzy_hash(rng.bytes(4096)).to_string());  // unknown probe

    // The oracle: the single-threaded, uncoalesced answer per digest. No
    // writers run, so the snapshot cannot move under the clients.
    std::vector<std::optional<sv::Identified>> expected;
    for (const auto& digest : known) {
        expected.push_back(service.identify(sf::FuzzyDigest::parse(digest)));
    }

    sv::QueryServer server(service);
    std::atomic<int> mismatches{0};
    std::vector<std::thread> clients;
    for (int t = 0; t < 8; ++t) {
        clients.emplace_back([&, t] {
            try {
                sv::QueryClient client("127.0.0.1", server.port());
                for (int i = 0; i < 20; ++i) {
                    const std::size_t pick =
                        (static_cast<std::size_t>(t) * 20 + static_cast<std::size_t>(i)) %
                        known.size();
                    const auto match = client.identify(known[pick]);
                    const auto& want = expected[pick];
                    if (match.has_value() != want.has_value() ||
                        (match && (match->family != want->family ||
                                   match->score != want->score || match->name != want->name))) {
                        mismatches.fetch_add(1);
                        return;
                    }
                }
            } catch (const std::exception&) {
                mismatches.fetch_add(1);
            }
        });
    }
    for (auto& c : clients) c.join();
    server.stop();
    EXPECT_EQ(mismatches.load(), 0) << "a coalesced singleton got a non-sequential answer";
    // Every singleton IDENTIFY flows through the batcher when coalescing is
    // on; even a worst-case schedule where every probe flushes alone still
    // counts its flushes.
    EXPECT_GE(server.stats().coalesced_batches, 1u);
    EXPECT_EQ(server.stats().coalesced_probes, 160u);
    EXPECT_LE(server.stats().coalesced_batches, server.stats().coalesced_probes);
}

TEST(QueryServer, PipelinedSingletonsRideOneBatchAndReplyInOrder) {
    auto options = fast_options();
    options.coalesce.batch_window_us = 5000;
    options.coalesce.batch_max = 8;
    sv::RecognitionService service(options);
    siren::util::Rng rng(73);
    std::vector<std::string> digests;
    for (int i = 0; i < 5; ++i) {
        const auto blob = rng.bytes(8192);
        service.observe_sync(sf::fuzzy_hash(blob), "pipe" + std::to_string(i));
        digests.push_back(sf::fuzzy_hash(blob).to_string());
    }
    sv::QueryServer server(service);

    // One write carrying five singleton frames plus a trailing STATS: the
    // five park in one batch, and STATS — not coalescible — must wait its
    // turn so replies come back strictly in request order.
    const int fd = raw_connect(server.port());
    ASSERT_GE(fd, 0);
    std::string burst;
    for (const auto& digest : digests) sv::append_frame(burst, "IDENTIFY " + digest);
    sv::append_frame(burst, "STATS");
    ASSERT_EQ(::send(fd, burst.data(), burst.size(), 0),
              static_cast<ssize_t>(burst.size()));

    const auto replies = read_frames(fd, 6);
    ::close(fd);
    ASSERT_EQ(replies.size(), 6u);
    for (int i = 0; i < 5; ++i) {
        EXPECT_TRUE(replies[static_cast<std::size_t>(i)].starts_with("OK ")) << replies[i];
        EXPECT_NE(replies[static_cast<std::size_t>(i)].find("pipe" + std::to_string(i)),
                  std::string::npos)
            << "reply " << i << " out of order: " << replies[i];
    }
    const auto stats = sv::parse_stats(replies[5]);
    EXPECT_EQ(stats.role, "leader") << replies[5];
    EXPECT_EQ(stats.get("stats_version"), sv::kStatsVersion) << replies[5];
    EXPECT_NE(replies[5].find("\nsimd_level "), std::string::npos) << replies[5];
    EXPECT_NE(replies[5].find("\ncoalesced_batches "), std::string::npos) << replies[5];
    EXPECT_NE(replies[5].find("\ncoalesce_occupancy "), std::string::npos) << replies[5];

    server.stop();
    EXPECT_EQ(server.stats().coalesced_probes, 5u);
    EXPECT_EQ(server.stats().coalesced_batches, 1u)
        << "five pipelined singletons below batch_max must flush as one batch";
}

TEST(QueryServer, CoalescerAnswersMalformedDigestInOrder) {
    auto options = fast_options();
    options.coalesce.batch_window_us = 2000;
    options.coalesce.batch_max = 4;
    sv::RecognitionService service(options);
    siren::util::Rng rng(79);
    const auto digest_str = sf::fuzzy_hash(rng.bytes(8192)).to_string();
    service.observe_sync(sf::FuzzyDigest::parse(digest_str), "icon");
    sv::QueryServer server(service);

    const int fd = raw_connect(server.port());
    ASSERT_GE(fd, 0);
    std::string burst;
    sv::append_frame(burst, "IDENTIFY " + digest_str);
    sv::append_frame(burst, "IDENTIFY not-a-digest");
    sv::append_frame(burst, "IDENTIFYB " + digest_str);
    ASSERT_EQ(::send(fd, burst.data(), burst.size(), 0),
              static_cast<ssize_t>(burst.size()));
    const auto replies = read_frames(fd, 3);
    ::close(fd);
    server.stop();
    ASSERT_EQ(replies.size(), 3u);
    EXPECT_TRUE(replies[0].starts_with("OK ")) << replies[0];
    EXPECT_TRUE(replies[1].starts_with("ERR")) << replies[1];
    EXPECT_TRUE(replies[2].starts_with("OK 1\nmatch "))
        << "coalesced IDENTIFYB must keep counted framing: " << replies[2];
}

// ---------------------------------------------------------------------------
// QueryClient::identify_many single-probe framing

TEST(QueryClient, IdentifyManyOfOneMatchesIdentify) {
    sv::RecognitionService service(fast_options());
    siren::util::Rng rng(83);
    const auto digest_str = sf::fuzzy_hash(rng.bytes(8192)).to_string();
    service.observe_sync(sf::FuzzyDigest::parse(digest_str), "solo");
    sv::QueryServer server(service);

    sv::QueryClient client("127.0.0.1", server.port());
    const auto single = client.identify(digest_str);
    const auto many = client.identify_many({digest_str});
    ASSERT_EQ(many.size(), 1u);
    ASSERT_TRUE(single && many[0]);
    EXPECT_EQ(many[0]->family, single->family);
    EXPECT_EQ(many[0]->score, single->score);
    EXPECT_EQ(many[0]->name, single->name);

    const auto unknown = client.identify_many({"3:zzzzzzz:zzzzzzz"});
    ASSERT_EQ(unknown.size(), 1u);
    EXPECT_FALSE(unknown[0].has_value());
}

TEST(QueryClient, IdentifyManyOfOneDetectsTruncatedReply) {
    // Regression: the old single-element shortcut answered through bare
    // IDENTIFY framing, so a batch reply cut off after its header passed
    // undetected for exactly one probe. A stub server that advertises one
    // result and sends none must now trip the truncation check.
    const int listener = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    ASSERT_GE(listener, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    ASSERT_EQ(::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
    ASSERT_EQ(::listen(listener, 1), 0);
    socklen_t len = sizeof addr;
    ::getsockname(listener, reinterpret_cast<sockaddr*>(&addr), &len);
    const std::uint16_t port = ntohs(addr.sin_port);

    std::string seen_request;
    std::thread stub([&] {
        const int conn = ::accept(listener, nullptr, nullptr);
        char buf[512];
        const ssize_t n = ::recv(conn, buf, sizeof buf, 0);
        if (n > 4) seen_request.assign(buf + 4, static_cast<std::size_t>(n) - 4);
        std::string reply;
        sv::append_frame(reply, "OK 1\n");  // header promises a line, body missing
        (void)::send(conn, reply.data(), reply.size(), MSG_NOSIGNAL);
        ::close(conn);
    });

    sv::QueryClient client("127.0.0.1", port);
    try {
        (void)client.identify_many({"3:abcdefg:hijklmn"});
        FAIL() << "truncated counted reply must throw";
    } catch (const siren::util::Error& e) {
        EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos) << e.what();
    }
    stub.join();
    ::close(listener);
    EXPECT_TRUE(seen_request.starts_with("IDENTIFYB "))
        << "single-probe identify_many must use counted framing: " << seen_request;
}

// ---------------------------------------------------------------------------
// fd exhaustion at the accept seam

TEST(QueryServer, FdExhaustionStallsAcceptThenRecovers) {
    sv::RecognitionService service(fast_options());
    sv::QueryServer server(service);
    ASSERT_NE(server.port(), 0);

    {  // sanity: the server accepts and answers before the squeeze
        sv::QueryClient client("127.0.0.1", server.port());
        EXPECT_NE(client.stats_text().find("families"), std::string::npos);
    }
    const auto accepted_before = server.stats().connections;

    // Client sockets created while fds are plentiful: connect() only needs
    // the listen backlog, so they establish even while the server cannot
    // accept4 them.
    int pending[3];
    for (int& s : pending) {
        s = ::socket(AF_INET, SOCK_STREAM, 0);
        ASSERT_GE(s, 0);
    }

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server.port());
    ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);

    // Deny the whole process new fds: the next accept4 fails with EMFILE.
    // RAII restore so a failing assertion cannot starve the rest of the
    // binary.
    struct Restore {
        rlimit saved{};
        bool armed = false;
        void now() {
            if (armed) {
                ::setrlimit(RLIMIT_NOFILE, &saved);
                armed = false;
            }
        }
        ~Restore() { now(); }
    } restore;
    ASSERT_EQ(::getrlimit(RLIMIT_NOFILE, &restore.saved), 0);
    restore.armed = true;
    rlimit tight = restore.saved;
    tight.rlim_cur = 0;
    ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &tight), 0);

    for (int s : pending) {
        ASSERT_EQ(::connect(s, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
    }

    // The listener must disarm (counted) instead of hot-spinning the event
    // loop or wedging it.
    auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (server.stats().accept_stalls == 0 &&
           std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ASSERT_GE(server.stats().accept_stalls, 1u)
        << "EMFILE on accept must disarm the listener and count the stall";
    EXPECT_EQ(server.stats().connections, accepted_before)
        << "nothing can be accepted while fds are exhausted";

    // fds come back: the re-armed listener drains the backlog it never
    // dropped — every pre-squeeze connection gets served.
    restore.now();
    deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (server.stats().connections < accepted_before + 3 &&
           std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_EQ(server.stats().connections, accepted_before + 3);

    std::string request;
    sv::append_frame(request, "STATS");
    ASSERT_EQ(::send(pending[0], request.data(), request.size(), 0),
              static_cast<ssize_t>(request.size()));
    char buf[4096];
    EXPECT_GT(::recv(pending[0], buf, sizeof buf, 0), 0)
        << "a connection accepted after the stall must be fully served";

    for (int s : pending) ::close(s);
}

// ---------------------------------------------------------------------------
// Overload shedding

TEST(QueryProtocol, ObserveShedsWhenWriterQueueSaturated) {
    auto options = fast_options();
    options.shed.shed_queue_depth = 1;  // any pending observe triggers the shed
    sv::RecognitionService service(options);

    siren::util::Rng rng(101);
    const auto probe = sf::fuzzy_hash(rng.bytes(8192)).to_string();
    EXPECT_TRUE(sv::execute_query(service, "OBSERVE " + probe + " calm").starts_with("OK"))
        << "an idle service admits observes";

    // Saturate the writer queue; the network path must shed with the typed
    // marker instead of blocking the (single-threaded) event loop behind
    // the backlog. The enqueues are async, so the queue genuinely backs up.
    for (int i = 0; i < 512; ++i) {
        service.observe(sf::fuzzy_hash(rng.bytes(2048)));
    }
    const auto shed = sv::execute_query(service, "OBSERVE " + probe + " storm");
    ASSERT_TRUE(shed.starts_with("ERR overloaded")) << shed;
    EXPECT_GE(service.counters().observes_shed, 1u);

    // In-process callers are never shed — the queue keeps accepting.
    EXPECT_TRUE(service.observe(sf::fuzzy_hash(rng.bytes(2048))).has_value());

    // Once the backlog drains, the same request is admitted again, and
    // STATS carries the shed count for operators.
    service.flush();
    EXPECT_TRUE(sv::execute_query(service, "OBSERVE " + probe + " after").starts_with("OK"));
    const auto stats = sv::execute_query(service, "STATS");
    EXPECT_NE(stats.find("observes_shed "), std::string::npos) << stats;
}

TEST(QueryServer, CoalescerShedsBeyondDepthButKeepsReplyOrder) {
    auto options = fast_options();
    options.coalesce.batch_window_us = 100000;  // 100ms: probes park long enough to pile up
    options.coalesce.batch_max = 64;
    options.coalesce.shed_coalesce_depth = 2;
    sv::RecognitionService service(options);
    sv::QueryServer server(service);
    ASSERT_NE(server.port(), 0);

    siren::util::Rng rng(103);
    const auto digest = sf::fuzzy_hash(rng.bytes(8192)).to_string();

    // Five pipelined singleton IDENTIFYs in one write: two park in the
    // coalescer, three must shed immediately — but every reply still
    // arrives, in request order, on this connection.
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server.port());
    ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);

    std::string burst;
    for (int i = 0; i < 5; ++i) sv::append_frame(burst, "IDENTIFY " + digest);
    ASSERT_EQ(::send(fd, burst.data(), burst.size(), 0),
              static_cast<ssize_t>(burst.size()));

    std::vector<std::string> replies;
    std::string wire;
    char buf[4096];
    while (replies.size() < 5) {
        std::size_t consumed = 0;
        if (const auto payload = sv::parse_frame(wire, consumed)) {
            replies.emplace_back(*payload);
            wire.erase(0, consumed);
            continue;
        }
        const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
        ASSERT_GT(n, 0) << "server closed before all five replies arrived";
        wire.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);

    std::size_t shed_replies = 0;
    std::size_t answered = 0;
    for (const auto& line : replies) {
        if (line.starts_with("ERR overloaded")) {
            ++shed_replies;
        } else if (!line.empty()) {
            ++answered;
        }
    }
    std::string transcript;
    for (const auto& line : replies) transcript += line + "\n";
    EXPECT_EQ(shed_replies, 3u) << transcript;
    EXPECT_EQ(answered, 2u) << transcript;
    EXPECT_EQ(server.stats().shed_coalesce, 3u);
    EXPECT_EQ(server.stats().coalesced_probes, 2u)
        << "the parked probes still resolve through the batch";
    server.stop();
}

// ---------------------------------------------------------------------------
// O(delta) snapshot publication: structural sharing, publish failpoints,
// and reader tail latency under a publish storm

namespace {

/// Synthetic digest with a chosen block size: random base64-ish parts.
/// Random 24-grams essentially never collide on a 7-gram, so every
/// observe founds its own family.
sf::FuzzyDigest synthetic_digest(std::uint64_t block_size, siren::util::Rng& rng) {
    static constexpr char kAlphabet[] =
        "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
    sf::FuzzyDigest digest;
    digest.block_size = block_size;
    for (int i = 0; i < 24; ++i) digest.digest1.push_back(kAlphabet[rng.below(64)]);
    for (int i = 0; i < 12; ++i) digest.digest2.push_back(kAlphabet[rng.below(64)]);
    return digest;
}

/// Checkpoint text for a registry of `families` single-exemplar families —
/// the fast path to a registry-scale service: the checkpoint loader adds
/// exemplars without running the observe matching, so booting 100k
/// families costs parse + index-append, not 100k similarity queries.
std::string synthetic_checkpoint(std::size_t families, std::uint64_t seed) {
    siren::util::Rng rng(seed);
    std::string body = "SIRENCKPT 1\napplied 0\nregistry\n";
    for (std::size_t i = 0; i < families; ++i) {
        body += "family " + std::to_string(i) + " 1 fam-" + std::to_string(i) + "\n";
    }
    std::string exemplars;
    for (std::size_t i = 0; i < families; ++i) {
        exemplars += "exemplar " + std::to_string(i) + " " +
                     synthetic_digest(1536, rng).to_string() + "\n";
    }
    return body + exemplars;
}

}  // namespace

TEST(RecognitionService, PublishSharesStructureWithPreviousSnapshot) {
    sv::RecognitionService service(fast_options());
    siren::util::Rng rng(41);
    for (int i = 0; i < 300; ++i) {
        service.observe(synthetic_digest(1536, rng), "fam" + std::to_string(i));
    }
    service.flush();
    const auto before = service.snapshot();

    service.observe_sync(synthetic_digest(1536, rng), "delta");
    const auto after = service.snapshot();
    ASSERT_GT(after->version, before->version);

    // The publish path measured itself and reported the sharing.
    const auto counters = service.counters();
    EXPECT_GT(counters.publish_ns, 0u);
    EXPECT_GT(counters.publish_ns_last, 0u);
    EXPECT_GT(counters.total_chunks, 0u);
    EXPECT_GT(counters.shared_chunks, 0u)
        << "a one-observe publish must share chunks with its predecessor";

    // Direct pin between the two held snapshots: a single observe against
    // a 300-family registry leaves most chunks pointer-identical.
    const auto sharing = after->registry.sharing_with(before->registry);
    EXPECT_GT(sharing.shared_chunks * 2, sharing.total_chunks)
        << "shared " << sharing.shared_chunks << " of " << sharing.total_chunks;
    std::string why;
    EXPECT_TRUE(after->registry.self_check(&why)) << why;
}

TEST(RecognitionService, PublishFailpointsDelayAndErrorNeverTearSnapshots) {
    if (!siren::util::failpoint::compiled_in()) {
        GTEST_SKIP() << "build carries no failpoint hooks (SIREN_FAILPOINTS=OFF)";
    }
    siren::util::failpoint::clear();
    sv::RecognitionService service(fast_options());
    siren::util::Rng rng(43);
    const auto known = synthetic_digest(3072, rng);
    service.observe_sync(known, "anchor");

    // Phase 1 — slow copies: readers keep serving (possibly stale, never
    // torn) while every publish sleeps inside the copy failpoint.
    siren::util::failpoint::activate("serve.publish.copy", "delay(2000)");
    for (int i = 0; i < 3; ++i) {
        service.observe_sync(synthetic_digest(1536, rng), "slow" + std::to_string(i));
        const auto match = service.identify(known);
        ASSERT_TRUE(match.has_value());
        EXPECT_EQ(match->name, "anchor");
    }
    EXPECT_GT(siren::util::failpoint::fire_count("serve.publish.copy"), 0u);

    // Phase 2 — aborted publishes (both failpoints, one-in-two cadence):
    // the writer keeps its dirty state and retries, so observe_sync still
    // completes and every visible snapshot passes the torn-state oracle.
    siren::util::failpoint::activate("serve.publish.swap", "error(5)%2");
    for (int i = 0; i < 6; ++i) {
        service.observe_sync(synthetic_digest(1536, rng), "swap" + std::to_string(i));
        std::string why;
        EXPECT_TRUE(service.snapshot()->registry.self_check(&why)) << why;
    }
    siren::util::failpoint::deactivate("serve.publish.swap");
    siren::util::failpoint::activate("serve.publish.copy", "error(5)%2");
    for (int i = 0; i < 4; ++i) {
        service.observe_sync(synthetic_digest(1536, rng), "copy" + std::to_string(i));
    }
    siren::util::failpoint::clear();
    service.flush();

    const auto counters = service.counters();
    EXPECT_GT(counters.publish_errors, 0u) << "the error cadence never fired";
    EXPECT_EQ(service.snapshot()->registry.family_count(), 1u + 3u + 6u + 4u)
        << "aborted publishes must not lose applied observes";
    std::string why;
    EXPECT_TRUE(service.snapshot()->registry.self_check(&why)) << why;
    const auto match = service.identify(known);
    ASSERT_TRUE(match.has_value());
    EXPECT_EQ(match->name, "anchor");
}

TEST(RecognitionService, IdentifyTailLatencyFlatUnderPublishStorm) {
    // O(delta) acceptance: a writer publishing a stream of small batches
    // against a registry-scale corpus must not move the reader's tail
    // latency — the publish copies touched chunks only, and the swap stays
    // one atomic store. Sizes shrink under sanitizers (the TSan leg runs
    // this test; the property is the same, the constant is smaller).
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
    constexpr std::size_t kFamilies = 8000;
    constexpr int kBatches = 60;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
    constexpr std::size_t kFamilies = 8000;
    constexpr int kBatches = 60;
#else
    constexpr std::size_t kFamilies = 100000;
    constexpr int kBatches = 250;
#endif
#else
    constexpr std::size_t kFamilies = 100000;
    constexpr int kBatches = 250;
#endif

    ScratchDir dir("storm");
    const auto ckpt = dir.sub("storm.ckpt");
    {
        std::ofstream out(ckpt);
        out << synthetic_checkpoint(kFamilies, 47);
    }
    auto options = fast_options();
    options.checkpoint_path = ckpt;
    sv::RecognitionService service(std::move(options));
    ASSERT_EQ(service.snapshot()->registry.family_count(), kFamilies);

    // The probe is family 0's exemplar (the checkpoint generator's Rng
    // stream replayed), so every identify must answer fam-0 at score 100.
    siren::util::Rng probe_rng(47);
    const auto probe = synthetic_digest(1536, probe_rng);

    const auto sample_ns = [&] {
        const auto t0 = std::chrono::steady_clock::now();
        const auto match = service.identify(probe);
        const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
        EXPECT_TRUE(match.has_value());
        if (match) EXPECT_EQ(match->name, "fam-0");
        return static_cast<std::uint64_t>(ns);
    };
    const auto p99_of = [](std::vector<std::uint64_t> ns) {
        std::sort(ns.begin(), ns.end());
        return ns[(ns.size() * 99) / 100];
    };

    std::vector<std::uint64_t> idle;
    for (int i = 0; i < 100; ++i) idle.push_back(sample_ns());
    const auto idle_p99 = p99_of(idle);

    const auto publishes_before = service.counters().publishes;
    std::atomic<bool> storm_done{false};
    std::thread writer([&] {
        siren::util::Rng wrng(53);
        for (int batch = 0; batch < kBatches; ++batch) {
            service.observe(synthetic_digest(768, wrng));
            service.observe_sync(synthetic_digest(768, wrng));  // force a publish
        }
        storm_done.store(true, std::memory_order_release);
    });

    std::vector<std::uint64_t> stormy;
    while (!storm_done.load(std::memory_order_acquire)) stormy.push_back(sample_ns());
    writer.join();
    ASSERT_FALSE(stormy.empty());
    const auto storm_p99 = p99_of(stormy);

    const auto publishes = service.counters().publishes - publishes_before;
    EXPECT_GE(publishes, static_cast<std::uint64_t>(kBatches) / 2)
        << "the storm must actually publish per small batch";

    // Generous bound: an O(registry) publish holding anything readers need
    // would push the tail by milliseconds-per-publish; scheduler noise
    // does not reach 25x-plus-floor.
    const auto bound = std::max<std::uint64_t>(25 * idle_p99, 20'000'000);
    EXPECT_LE(storm_p99, bound) << "reader p99 " << storm_p99 << "ns vs idle p99 " << idle_p99
                                << "ns across " << publishes << " publishes";

    // And the post-storm snapshot still shares nearly everything with the
    // boot corpus: the storm's families are the only divergence.
    const auto counters = service.counters();
    EXPECT_GT(counters.shared_chunks, 0u);
    EXPECT_GT(counters.total_chunks, counters.shared_chunks);
}
