// Wire protocol: codec round trips, chunk/reassembly, queue semantics,
// lossy channel determinism, and real UDP loopback.

#include <gtest/gtest.h>

#include <thread>

#include "net/channel.hpp"
#include "net/chunker.hpp"
#include "net/codec.hpp"
#include "net/message.hpp"
#include "net/udp.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace sn = siren::net;
namespace su = siren::util;

namespace {

sn::Message sample_message() {
    sn::Message m;
    m.job_id = 1000042;
    m.step_id = 3;
    m.pid = 4242;
    m.exe_hash = "00ff00ff00ff00ff00ff00ff00ff00ff";
    m.host = "nid000123";
    m.time = 1733900000;
    m.layer = sn::Layer::kSelf;
    m.type = sn::MsgType::kObjects;
    m.content = "/lib64/libc.so.6\n/opt/siren/lib/siren.so";
    return m;
}

}  // namespace

TEST(Codec, RoundTrip) {
    const sn::Message m = sample_message();
    EXPECT_EQ(sn::decode(sn::encode(m)), m);
}

TEST(Codec, RoundTripWithNastyContent) {
    sn::Message m = sample_message();
    m.content = "pipes| and \\ slashes \n newlines \t tabs ||";
    m.host = "host|with|pipes";
    EXPECT_EQ(sn::decode(sn::encode(m)), m);
}

TEST(Codec, AllTypesAndLayersRoundTrip) {
    for (int t = 0; t <= static_cast<int>(sn::MsgType::kMemMapHash); ++t) {
        sn::Message m = sample_message();
        m.type = static_cast<sn::MsgType>(t);
        m.layer = t % 2 == 0 ? sn::Layer::kSelf : sn::Layer::kScript;
        EXPECT_EQ(sn::decode(sn::encode(m)), m);
    }
}

TEST(Codec, RejectsMalformedDatagrams) {
    EXPECT_THROW(sn::decode(""), su::ParseError);
    EXPECT_THROW(sn::decode("GARBAGE|JOBID=1"), su::ParseError);
    EXPECT_THROW(sn::decode("SIREN1|JOBID=1"), su::ParseError);  // missing fields
    EXPECT_THROW(sn::decode("SIREN1|JOBID=x|STEPID=0|PID=1|HASH=h|HOST=h|TIME=0|LAYER=SELF|"
                            "TYPE=IDS|CONTENT=c"),
                 su::ParseError);
    EXPECT_THROW(sn::decode("SIREN1|JOBID=1|STEPID=0|PID=1|HASH=h|HOST=h|TIME=0|LAYER=BAD|"
                            "TYPE=IDS|CONTENT=c"),
                 su::ParseError);
}

TEST(Codec, IgnoresUnknownFieldsForForwardCompat) {
    const std::string wire = sn::encode(sample_message()) + "|FUTURE=stuff";
    EXPECT_EQ(sn::decode(wire), sample_message());
}

// ---------------------------------------------------------------------------
// Zero-copy path: encode_into / decode_view must agree with the owned codec
// byte for byte and message for message (docs/wire_format.md).

namespace {

std::vector<sn::Message> view_path_corpus() {
    std::vector<sn::Message> corpus;
    corpus.push_back(sample_message());

    sn::Message nasty = sample_message();
    nasty.content = "pipes| and \\ slashes \n newlines \t tabs ||";
    nasty.host = "host|with|pipes";
    corpus.push_back(nasty);

    sn::Message escaped_host = sample_message();
    escaped_host.host = "nid\\0001\t2";
    corpus.push_back(escaped_host);

    sn::Message embedded = sample_message();
    embedded.content = std::string("a|b\nc") + '\x01' + "d\\e";
    corpus.push_back(embedded);

    sn::Message empty = sample_message();
    empty.content.clear();
    corpus.push_back(empty);
    return corpus;
}

}  // namespace

TEST(CodecView, EncodeIntoMatchesEncodeAcrossReuse) {
    std::string wire;  // reused across all messages
    for (const auto& m : view_path_corpus()) {
        sn::encode_into(m, wire);
        EXPECT_EQ(wire, sn::encode(m));
    }
}

TEST(CodecView, DecodeViewAgreesWithOwnedDecode) {
    for (const auto& m : view_path_corpus()) {
        const std::string wire = sn::encode(m);
        sn::MessageView view;
        sn::decode_view(wire, view);
        EXPECT_EQ(view.to_message(), sn::decode(wire));
        EXPECT_EQ(view.to_message(), m);
        EXPECT_EQ(view.host_str(), m.host);
        EXPECT_EQ(view.content_str(), m.content);
    }
}

TEST(CodecView, ViewsAliasTheDatagram) {
    sn::Message m = sample_message();
    m.content = "/lib64/libc.so.6";  // no escapable bytes anywhere
    const std::string wire = sn::encode(m);
    sn::MessageView view;
    sn::decode_view(wire, view);
    for (const auto field : {view.exe_hash, view.host, view.content}) {
        EXPECT_GE(field.data(), wire.data());
        EXPECT_LE(field.data() + field.size(), wire.data() + wire.size());
    }
    EXPECT_FALSE(view.host_escaped);
    EXPECT_FALSE(view.content_escaped);
}

TEST(CodecView, EscapedFieldsStayRawUntilAsked) {
    sn::Message m = sample_message();
    m.content = "a|b";
    m.host = "h\tx";
    const std::string wire = sn::encode(m);
    sn::MessageView view;
    sn::decode_view(wire, view);
    EXPECT_TRUE(view.content_escaped);
    EXPECT_TRUE(view.host_escaped);
    EXPECT_EQ(view.content, "a\\pb");  // raw wire bytes, untouched
    EXPECT_EQ(view.content_str(), "a|b");
    EXPECT_EQ(view.host_str(), "h\tx");

    std::string assembled;
    view.append_content(assembled);
    EXPECT_EQ(assembled, "a|b");
}

TEST(CodecView, ReencodeIsByteIdentical) {
    for (const auto& m : view_path_corpus()) {
        const std::string wire = sn::encode(m);
        sn::MessageView view;
        sn::decode_view(wire, view);
        std::string reencoded;
        sn::encode_into(view, reencoded);
        EXPECT_EQ(reencoded, wire);
    }
}

TEST(CodecView, ProcessKeyIntoMatchesOwnedKey) {
    for (const auto& m : view_path_corpus()) {
        const std::string wire = sn::encode(m);
        sn::MessageView view;
        sn::decode_view(wire, view);
        std::string key;
        view.process_key_into(key);
        EXPECT_EQ(key, m.process_key());
    }
}

// ---------------------------------------------------------------------------
// Decode hardening: the wire never legitimately repeats, drops or reorders
// mandatory fields silently — sweep permutations of all three corruptions.

TEST(Codec, RejectsDuplicateFieldsNamingTheOffender) {
    const std::string wire = sn::encode(sample_message());
    const auto fields = su::split(wire, '|');
    ASSERT_GT(fields.size(), 1u);
    // Duplicate each field (skip the magic) somewhere in the datagram.
    for (std::size_t dup = 1; dup < fields.size(); ++dup) {
        const std::string corrupted = wire + "|" + fields[dup];
        const std::string key = fields[dup].substr(0, fields[dup].find('='));
        try {
            sn::decode(corrupted);
            FAIL() << "duplicated " << key << " accepted";
        } catch (const su::ParseError& e) {
            EXPECT_NE(std::string(e.what()).find(key), std::string::npos)
                << "error should name the duplicated field: " << e.what();
        }
    }
}

TEST(Codec, FieldPermutationSweep) {
    const sn::Message m = sample_message();
    const std::string wire = sn::encode(m);
    auto fields = su::split(wire, '|');
    ASSERT_EQ(fields[0], std::string(sn::kWireMagic));

    siren::util::Rng rng(20260728);
    const auto rebuild = [](const std::vector<std::string>& parts) {
        std::string out;
        for (std::size_t i = 0; i < parts.size(); ++i) {
            if (i != 0) out += '|';
            out += parts[i];
        }
        return out;
    };

    // Reordered (magic stays first): any permutation of the key=value
    // fields must decode to the same message.
    for (int round = 0; round < 32; ++round) {
        std::vector<std::string> shuffled(fields.begin() + 1, fields.end());
        for (std::size_t i = shuffled.size(); i > 1; --i) {
            std::swap(shuffled[i - 1], shuffled[rng.index(i)]);
        }
        std::vector<std::string> parts = {fields[0]};
        parts.insert(parts.end(), shuffled.begin(), shuffled.end());
        EXPECT_EQ(sn::decode(rebuild(parts)), m) << rebuild(parts);
    }

    // Truncated: dropping any mandatory field must throw; dropping the
    // optional SEQ/TOTAL pair must not.
    for (std::size_t drop = 1; drop < fields.size(); ++drop) {
        std::vector<std::string> parts;
        for (std::size_t i = 0; i < fields.size(); ++i) {
            if (i != drop) parts.push_back(fields[i]);
        }
        const std::string key = fields[drop].substr(0, fields[drop].find('='));
        if (key == "SEQ" || key == "TOTAL") {
            EXPECT_EQ(sn::decode(rebuild(parts)), m) << key << " is optional";
        } else {
            EXPECT_THROW(sn::decode(rebuild(parts)), su::ParseError) << key << " is mandatory";
        }
    }

    // Duplicated at a random position (not just appended): must throw.
    for (std::size_t dup = 1; dup < fields.size(); ++dup) {
        std::vector<std::string> parts = fields;
        const std::size_t at = 1 + rng.index(parts.size() - 1);
        parts.insert(parts.begin() + static_cast<std::ptrdiff_t>(at), fields[dup]);
        EXPECT_THROW(sn::decode(rebuild(parts)), su::ParseError) << rebuild(parts);
    }
}

TEST(Chunker, SmallContentSingleChunk) {
    const auto chunks = sn::chunk_content(sample_message(), "tiny");
    ASSERT_EQ(chunks.size(), 1u);
    EXPECT_EQ(chunks[0].seq, 0u);
    EXPECT_EQ(chunks[0].total, 1u);
    EXPECT_EQ(chunks[0].content, "tiny");
}

TEST(Chunker, EmptyContentStillSendsOneChunk) {
    const auto chunks = sn::chunk_content(sample_message(), "");
    ASSERT_EQ(chunks.size(), 1u);
    EXPECT_EQ(chunks[0].content, "");
}

TEST(Chunker, LargeContentSplitsAndFits) {
    const std::string content(20000, 'x');
    const auto chunks = sn::chunk_content(sample_message(), content, 1400);
    EXPECT_GT(chunks.size(), 10u);
    std::string reassembled;
    for (const auto& c : chunks) {
        EXPECT_LE(sn::encode(c).size(), 1400u);
        reassembled += c.content;
    }
    EXPECT_EQ(reassembled, content);
}

TEST(Chunker, ReassemblerMergesInOrder) {
    const std::string content(5000, 'a');
    auto chunks = sn::chunk_content(sample_message(), content, 1400);
    // Deliver out of order.
    std::rotate(chunks.begin(), chunks.begin() + 1, chunks.end());

    sn::Reassembler reassembler;
    for (const auto& c : chunks) reassembler.add(c);
    const auto assembled = reassembler.assemble();
    ASSERT_EQ(assembled.size(), 1u);
    EXPECT_TRUE(assembled[0].complete());
    EXPECT_EQ(assembled[0].merged.content, content);
}

TEST(Chunker, ReassemblerReportsMissingChunks) {
    const std::string content(5000, 'b');
    auto chunks = sn::chunk_content(sample_message(), content, 1400);
    ASSERT_GT(chunks.size(), 2u);
    chunks.erase(chunks.begin() + 1);  // drop one

    sn::Reassembler reassembler;
    for (const auto& c : chunks) reassembler.add(c);
    const auto assembled = reassembler.assemble();
    ASSERT_EQ(assembled.size(), 1u);
    EXPECT_FALSE(assembled[0].complete());
    EXPECT_LT(assembled[0].merged.content.size(), content.size());
}

TEST(Chunker, DuplicateChunksTolerated) {
    const auto chunks = sn::chunk_content(sample_message(), "abc");
    sn::Reassembler reassembler;
    reassembler.add(chunks[0]);
    reassembler.add(chunks[0]);
    const auto assembled = reassembler.assemble();
    ASSERT_EQ(assembled.size(), 1u);
    EXPECT_EQ(assembled[0].merged.content, "abc");
}

TEST(Chunker, DistinctTypesReassembleIndependently) {
    sn::Message a = sample_message();
    a.type = sn::MsgType::kModules;
    sn::Message b = sample_message();
    b.type = sn::MsgType::kObjects;

    sn::Reassembler reassembler;
    for (const auto& c : sn::chunk_content(a, "modules")) reassembler.add(c);
    for (const auto& c : sn::chunk_content(b, "objects")) reassembler.add(c);
    EXPECT_EQ(reassembler.assemble().size(), 2u);
}

TEST(Queue, PushPopFifo) {
    sn::MessageQueue queue(8);
    sn::Message m = sample_message();
    m.pid = 1;
    EXPECT_TRUE(queue.push(m));
    m.pid = 2;
    EXPECT_TRUE(queue.push(m));
    EXPECT_EQ(queue.pop()->pid, 1);
    EXPECT_EQ(queue.pop()->pid, 2);
}

TEST(Queue, DropsWhenFull) {
    sn::MessageQueue queue(2);
    EXPECT_TRUE(queue.push(sample_message()));
    EXPECT_TRUE(queue.push(sample_message()));
    EXPECT_FALSE(queue.push(sample_message()));
    EXPECT_EQ(queue.dropped(), 1u);
}

TEST(Queue, CloseDrainsThenEnds) {
    sn::MessageQueue queue(8);
    queue.push(sample_message());
    queue.close();
    EXPECT_TRUE(queue.pop().has_value());
    EXPECT_FALSE(queue.pop().has_value());
    EXPECT_FALSE(queue.push(sample_message()));
}

TEST(Channel, DeliversWithoutLoss) {
    sn::MessageQueue queue(1024);
    sn::InMemoryChannel channel(queue, 0.0, 1);
    for (int i = 0; i < 100; ++i) channel.send(sn::encode(sample_message()));
    EXPECT_EQ(channel.stats().delivered.load(), 100u);
    EXPECT_EQ(channel.stats().lost.load(), 0u);
    EXPECT_EQ(queue.size(), 100u);
}

TEST(Channel, LossIsDeterministicPerSeed) {
    auto run = [](std::uint64_t seed) {
        sn::MessageQueue queue(1 << 16);
        sn::InMemoryChannel channel(queue, 0.25, seed);
        for (int i = 0; i < 2000; ++i) channel.send(sn::encode(sample_message()));
        return channel.stats().lost.load();
    };
    EXPECT_EQ(run(5), run(5));
    EXPECT_NE(run(5), run(6));
    const auto lost = run(5);
    EXPECT_GT(lost, 300u);
    EXPECT_LT(lost, 700u);
}

TEST(Channel, CountsMalformedInsteadOfThrowing) {
    sn::MessageQueue queue(16);
    sn::InMemoryChannel channel(queue, 0.0, 1);
    channel.send("complete garbage");
    EXPECT_EQ(channel.stats().malformed.load(), 1u);
    EXPECT_EQ(queue.size(), 0u);
}

TEST(Udp, LoopbackSendReceive) {
    sn::MessageQueue queue(1024);
    sn::UdpReceiver receiver(queue, 0);  // ephemeral port
    ASSERT_GT(receiver.port(), 0);

    sn::UdpSender sender("127.0.0.1", receiver.port());
    const sn::Message m = sample_message();
    for (int i = 0; i < 50; ++i) sender.send(sn::encode(m));

    // UDP is lossy even on loopback in theory; expect most to arrive.
    for (int spin = 0; spin < 100 && queue.size() < 50; ++spin) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_GE(queue.size(), 45u);
    auto received = queue.pop();
    ASSERT_TRUE(received.has_value());
    EXPECT_EQ(*received, m);
    receiver.stop();
}

TEST(Udp, SenderNeverThrowsOnSend) {
    // Sending to a port nobody listens on must not throw (fire and forget).
    sn::UdpSender sender("127.0.0.1", 1);  // almost certainly closed
    EXPECT_NO_THROW(sender.send("SIREN1|whatever"));
}

TEST(Udp, StopReturnsPromptlyWithNoTraffic) {
    // Regression: the receiver thread waits with poll(), not SO_RCVTIMEO
    // (sandboxed kernels ignore the socket option, leaving recv() blocked
    // forever and stop() wedged on the join).
    sn::MessageQueue queue(64);
    sn::UdpReceiver receiver(queue, 0);
    ASSERT_GT(receiver.port(), 0);

    const auto start = std::chrono::steady_clock::now();
    receiver.stop();
    const auto elapsed = std::chrono::steady_clock::now() - start;
    EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(), 2000)
        << "stop() must return within a few poll slices even with zero traffic";
}

TEST(Udp, StopIsIdempotent) {
    sn::MessageQueue queue(64);
    sn::UdpReceiver receiver(queue, 0);
    receiver.stop();
    EXPECT_NO_THROW(receiver.stop());  // destructor will call it again, too
}

TEST(Message, ProcessKeyDistinguishesExecChains) {
    sn::Message a = sample_message();
    sn::Message b = sample_message();
    b.exe_hash = "11111111111111111111111111111111";  // same PID, new exe
    EXPECT_NE(a.process_key(), b.process_key());
}

// ---------------------------------------------------------------------------
// Randomized round-trip property sweep: arbitrary binary-ish content must
// survive encode -> decode and chunk -> shuffle -> reassemble unchanged.

class WireFuzzSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WireFuzzSweep, EncodeDecodeAndChunkReassembleRoundTrip) {
    siren::util::Rng rng(GetParam());

    for (int round = 0; round < 25; ++round) {
        sn::Message m;
        m.job_id = rng.next();
        m.step_id = static_cast<std::uint32_t>(rng.below(1 << 20));
        m.pid = static_cast<std::int64_t>(rng.below(1 << 22));
        m.exe_hash = rng.ident(32);
        m.host = "nid" + rng.ident(6);
        m.time = static_cast<std::int64_t>(1733900000 + rng.below(1000000));
        m.layer = rng.chance(0.5) ? sn::Layer::kSelf : sn::Layer::kScript;
        m.type = static_cast<sn::MsgType>(rng.below(14));

        // Content with every byte class the collector actually emits:
        // newlines (object lists), separators, and high/low bytes from
        // binary-derived strings.
        std::string content;
        const std::size_t len = rng.below(6000);
        for (std::size_t i = 0; i < len; ++i) {
            content += static_cast<char>(1 + rng.below(255));  // no NUL
        }
        m.content = content;

        // Property 1: codec round trip.
        ASSERT_EQ(sn::decode(sn::encode(m)), m) << "seed " << GetParam();

        // Property 2: chunk -> shuffle -> reassemble, random chunk budget.
        const std::size_t budget = 600 + rng.below(1400);
        auto chunks = sn::chunk_content(m, m.content, budget);
        for (const auto& c : chunks) {
            ASSERT_LE(sn::encode(c).size(), budget) << "chunk exceeds datagram budget";
        }
        for (std::size_t i = chunks.size(); i > 1; --i) {
            std::swap(chunks[i - 1], chunks[rng.index(i)]);
        }
        sn::Reassembler reassembler;
        for (const auto& c : chunks) reassembler.add(c);
        const auto assembled = reassembler.assemble();
        ASSERT_EQ(assembled.size(), 1u);
        ASSERT_TRUE(assembled[0].complete());
        EXPECT_EQ(assembled[0].merged.content, m.content);
        EXPECT_EQ(assembled[0].merged.job_id, m.job_id);
        EXPECT_EQ(assembled[0].merged.type, m.type);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireFuzzSweep,
                         ::testing::Values(101u, 202u, 303u, 404u, 505u, 606u));
