// util: strings, base64, hex, rng, thread pool, tables, env.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "util/base64.hpp"
#include "util/env.hpp"
#include "util/error.hpp"
#include "util/hex.hpp"
#include "util/interner.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace su = siren::util;

TEST(Strings, SplitKeepsEmptyFields) {
    EXPECT_EQ(su::split("a||b", '|'), (std::vector<std::string>{"a", "", "b"}));
    EXPECT_EQ(su::split("", '|'), (std::vector<std::string>{""}));
    EXPECT_EQ(su::split_nonempty("a||b|", '|'), (std::vector<std::string>{"a", "b"}));
}

TEST(Strings, SplitViewMatchesSplitAndAliasesInput) {
    const std::string input = "a||b|cc";
    const auto views = su::split_view(input, '|');
    const auto owned = su::split(input, '|');
    ASSERT_EQ(views.size(), owned.size());
    for (std::size_t i = 0; i < views.size(); ++i) {
        EXPECT_EQ(views[i], owned[i]);
        if (!views[i].empty()) {
            EXPECT_GE(views[i].data(), input.data());
            EXPECT_LE(views[i].data() + views[i].size(), input.data() + input.size());
        }
    }
}

TEST(Strings, SplitViewIntoReusesBuffer) {
    std::vector<std::string_view> pieces;
    EXPECT_EQ(su::split_view_into("x:y:z", ':', pieces), 3u);
    EXPECT_EQ(pieces, (std::vector<std::string_view>{"x", "y", "z"}));
    // Reuse: the buffer is cleared, not appended to.
    EXPECT_EQ(su::split_view_into("", ':', pieces), 1u);
    EXPECT_EQ(pieces, (std::vector<std::string_view>{""}));
}

TEST(Interner, DedupesToIdenticalStorage) {
    su::StringInterner interner;
    const std::string a = "/usr/bin/bash";
    const std::string b = "/usr/bin/bash";  // distinct buffer, equal content
    const auto va = interner.intern(a);
    const auto vb = interner.intern(b);
    EXPECT_EQ(va, "/usr/bin/bash");
    EXPECT_TRUE(su::interned_eq(va, vb));
    EXPECT_EQ(static_cast<const void*>(va.data()), static_cast<const void*>(vb.data()));
    EXPECT_FALSE(su::interned_eq(va, interner.intern("/usr/bin/zsh")));
    EXPECT_EQ(interner.size(), 2u);
}

TEST(Interner, ViewsSurviveGrowth) {
    su::StringInterner interner;
    const auto first = interner.intern("stable");
    for (int i = 0; i < 1000; ++i) interner.intern("filler-" + std::to_string(i));
    EXPECT_TRUE(su::interned_eq(first, interner.intern("stable")));
    EXPECT_EQ(first, "stable");
}

TEST(Interner, ConcurrentInternsAgree) {
    su::StringInterner interner;
    constexpr int kThreads = 4;
    std::vector<std::array<std::string_view, 16>> seen(kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int i = 0; i < 16; ++i) {
                seen[t][i] = interner.intern("shared-" + std::to_string(i));
            }
        });
    }
    for (auto& th : threads) th.join();
    for (int t = 1; t < kThreads; ++t) {
        for (int i = 0; i < 16; ++i) {
            EXPECT_TRUE(su::interned_eq(seen[0][i], seen[t][i]));
        }
    }
    EXPECT_EQ(interner.size(), 16u);
}

TEST(Strings, JoinRoundTripsSplit) {
    const std::vector<std::string> parts = {"x", "y", "zz"};
    EXPECT_EQ(su::split(su::join(parts, ":"), ':'), parts);
}

TEST(Strings, Trim) {
    EXPECT_EQ(su::trim("  abc\t\n"), "abc");
    EXPECT_EQ(su::trim("   "), "");
    EXPECT_EQ(su::trim("x"), "x");
}

TEST(Strings, CaseHelpers) {
    EXPECT_EQ(su::to_lower("AbC"), "abc");
    EXPECT_TRUE(su::icontains("Cray clang", "CLANG"));
    EXPECT_FALSE(su::icontains("gcc", "clang"));
    EXPECT_TRUE(su::starts_with("/usr/bin/ls", "/usr/"));
    EXPECT_TRUE(su::ends_with("libm.so.6", ".6"));
}

TEST(Strings, EscapeFieldRoundTrip) {
    const std::string nasty = "a|b\\c\nd\te|";
    EXPECT_EQ(su::unescape_field(su::escape_field(nasty)), nasty);
    EXPECT_EQ(su::escape_field("a|b").find('|'), std::string::npos);
}

TEST(Strings, PathHelpers) {
    EXPECT_EQ(su::basename("/usr/bin/bash"), "bash");
    EXPECT_EQ(su::basename("bash"), "bash");
    EXPECT_EQ(su::dirname("/usr/bin/bash"), "/usr/bin/");
    EXPECT_EQ(su::dirname("bash"), "");
}

TEST(Strings, WithCommas) {
    EXPECT_EQ(su::with_commas(0), "0");
    EXPECT_EQ(su::with_commas(999), "999");
    EXPECT_EQ(su::with_commas(2317859), "2,317,859");
    EXPECT_EQ(su::with_commas(1000), "1,000");
}

TEST(Strings, ReplaceAll) {
    EXPECT_EQ(su::replace_all("{user}/x/{user}", "{user}", "u1"), "u1/x/u1");
    EXPECT_EQ(su::replace_all("abc", "z", "y"), "abc");
}

TEST(Base64, KnownVectors) {
    EXPECT_EQ(su::base64_encode(""), "");
    EXPECT_EQ(su::base64_encode("f"), "Zg==");
    EXPECT_EQ(su::base64_encode("fo"), "Zm8=");
    EXPECT_EQ(su::base64_encode("foo"), "Zm9v");
    EXPECT_EQ(su::base64_encode("foobar"), "Zm9vYmFy");
}

TEST(Base64, RoundTrip) {
    su::Rng rng(1);
    for (std::size_t len : {0u, 1u, 2u, 3u, 17u, 256u}) {
        const auto bytes = rng.bytes(len);
        const auto decoded = su::base64_decode(su::base64_encode(bytes.data(), bytes.size()));
        EXPECT_EQ(decoded, bytes);
    }
}

TEST(Base64, RejectsMalformed) {
    EXPECT_THROW(su::base64_decode("abc"), su::ParseError);
    EXPECT_THROW(su::base64_decode("a=bc"), su::ParseError);
    EXPECT_THROW(su::base64_decode("????"), su::ParseError);
}

TEST(Hex, RoundTrip) {
    const std::vector<std::uint8_t> bytes = {0x00, 0xff, 0x12, 0xab};
    EXPECT_EQ(su::hex_encode(bytes), "00ff12ab");
    EXPECT_EQ(su::hex_decode("00ff12ab"), bytes);
    EXPECT_EQ(su::hex_decode("00FF12AB"), bytes);
    EXPECT_THROW(su::hex_decode("0"), su::ParseError);
    EXPECT_THROW(su::hex_decode("zz"), su::ParseError);
}

TEST(Hex, U64FixedWidth) {
    EXPECT_EQ(su::hex_u64(0), "0000000000000000");
    EXPECT_EQ(su::hex_u64(0xdeadbeef), "00000000deadbeef");
}

TEST(Rng, DeterministicPerSeed) {
    su::Rng a(42), b(42), c(43);
    EXPECT_EQ(a.next(), b.next());
    EXPECT_NE(a.next(), c.next());
}

TEST(Rng, BelowIsInRange) {
    su::Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(rng.below(17), 17u);
    }
}

TEST(Rng, RangeInclusive) {
    su::Rng rng(7);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 500; ++i) seen.insert(rng.range(-2, 2));
    EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformInUnitInterval) {
    su::Rng rng(7);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
    su::Rng rng(7);
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
}

TEST(Rng, ForkIndependent) {
    su::Rng parent(9);
    su::Rng a = parent.fork(1);
    su::Rng b = parent.fork(2);
    EXPECT_NE(a.next(), b.next());
    // Forks are stable: re-deriving yields the same stream.
    su::Rng a2 = parent.fork(1);
    su::Rng a3 = parent.fork(1);
    EXPECT_EQ(a2.next(), a3.next());
}

TEST(Rng, BytesLength) {
    su::Rng rng(3);
    EXPECT_EQ(rng.bytes(0).size(), 0u);
    EXPECT_EQ(rng.bytes(7).size(), 7u);
    EXPECT_EQ(rng.bytes(64).size(), 64u);
}

TEST(ThreadPool, RunsSubmittedTasks) {
    su::ThreadPool pool(4);
    auto f = pool.submit([] { return 21 * 2; });
    EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
    su::ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForPropagatesException) {
    su::ThreadPool pool(2);
    EXPECT_THROW(
        pool.parallel_for(100, [&](std::size_t i) {
            if (i == 50) throw su::Error("boom");
        }),
        su::Error);
}

TEST(ThreadPool, ParallelForGrainStillCoversAllIndices) {
    su::ThreadPool pool(4);
    for (const std::size_t grain : {std::size_t{1}, std::size_t{7}, std::size_t{1000},
                                    std::size_t{5000}}) {
        std::vector<std::atomic<int>> hits(1000);
        pool.parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); }, grain);
        for (const auto& h : hits) ASSERT_EQ(h.load(), 1) << "grain " << grain;
    }
}

TEST(ThreadPool, ChunkGeometryIsDeterministic) {
    su::ThreadPool pool(3);
    // Auto grain: max(1, n / (8 * threads)) — n=1000, 3 threads -> 41.
    EXPECT_EQ(pool.chunk_count(1000), (1000 + 40) / 41);
    EXPECT_EQ(pool.chunk_count(1000, 100), 10u);
    EXPECT_EQ(pool.chunk_count(5, 100), 1u);
    EXPECT_EQ(pool.chunk_count(0), 0u);
}

TEST(ThreadPool, ParallelForChunksPartitionsTheRange) {
    su::ThreadPool pool(4);
    const std::size_t n = 997;  // prime: uneven tail chunk
    const std::size_t grain = 64;
    const std::size_t chunks = pool.chunk_count(n, grain);
    std::vector<std::pair<std::size_t, std::size_t>> ranges(chunks, {0, 0});
    std::vector<std::atomic<int>> covered(n);
    pool.parallel_for_chunks(
        n,
        [&](std::size_t begin, std::size_t end, std::size_t chunk) {
            ranges[chunk] = {begin, end};
            for (std::size_t i = begin; i < end; ++i) covered[i].fetch_add(1);
        },
        grain);
    for (const auto& c : covered) ASSERT_EQ(c.load(), 1);
    for (std::size_t t = 0; t < chunks; ++t) {
        EXPECT_EQ(ranges[t].first, t * grain);
        EXPECT_EQ(ranges[t].second, std::min(n, t * grain + grain));
    }
}

TEST(TextTable, RendersAlignedColumns) {
    su::TextTable t({"A", "Name"});
    t.add_row({"1", "x"});
    t.add_row({"22", "longer"});
    const std::string out = t.render();
    EXPECT_NE(out.find("A   Name"), std::string::npos);
    EXPECT_NE(out.find("22  longer"), std::string::npos);
}

TEST(TextTable, RejectsArityMismatch) {
    su::TextTable t({"A", "B"});
    EXPECT_THROW(t.add_row({"only-one"}), su::Error);
}

TEST(TextTable, TsvEscapesNothingButTabs) {
    su::TextTable t({"A"});
    t.add_row({"x"});
    EXPECT_EQ(t.render_tsv(), "A\nx\n");
}

TEST(Env, Defaults) {
    ::unsetenv("SIREN_TEST_ENV");
    EXPECT_EQ(su::get_env_or("SIREN_TEST_ENV", "dflt"), "dflt");
    EXPECT_DOUBLE_EQ(su::get_env_double("SIREN_TEST_ENV", 1.5), 1.5);
    ::setenv("SIREN_TEST_ENV", "2.5", 1);
    EXPECT_DOUBLE_EQ(su::get_env_double("SIREN_TEST_ENV", 1.5), 2.5);
    ::setenv("SIREN_TEST_ENV", "junk", 1);
    EXPECT_EQ(su::get_env_int("SIREN_TEST_ENV", 3), 3);
    ::unsetenv("SIREN_TEST_ENV");
}
