// Collector: the Table-1 policy matrix, scope classification, message sets
// per scope, derived-data memoization, Python package extraction.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "collect/collector.hpp"
#include "collect/exe_store.hpp"
#include "collect/policy.hpp"
#include "collect/python.hpp"
#include "net/channel.hpp"
#include "net/codec.hpp"
#include "workload/synthesizer.hpp"

namespace sc = siren::collect;
namespace sn = siren::net;
namespace ss = siren::sim;

namespace {

/// Transport that records decoded messages.
class CaptureTransport : public sn::Transport {
public:
    void send(std::string_view datagram) noexcept override {
        try {
            messages.push_back(sn::decode(datagram));
        } catch (...) {
        }
    }
    std::vector<sn::Message> messages;

    std::set<std::string> types(sn::Layer layer) const {
        std::set<std::string> out;
        for (const auto& m : messages) {
            if (m.layer == layer) out.insert(std::string(sn::to_string(m.type)));
        }
        return out;
    }
};

ss::SimProcess base_process(const std::string& exe) {
    ss::SimProcess p;
    p.job_id = 42;
    p.step_id = 0;
    p.slurm_procid = 0;
    p.host = "nid000001";
    p.pid = 1234;
    p.ppid = 1233;
    p.uid = 1001;
    p.gid = 1001;
    p.start_time = 1733900000;
    p.exe_path = exe;
    p.exe_meta.inode = 55;
    p.exe_meta.size = 1000;
    p.loaded_objects = {"/lib64/libc.so.6", "/opt/siren/lib/siren.so"};
    p.loaded_modules = {"PrgEnv-cray/8.4.0"};
    return p;
}

void fill_store(sc::FileStore& store, const std::string& path) {
    siren::workload::BinaryRecipe recipe;
    recipe.lineage = "testware";
    recipe.compilers = {"GCC: (SUSE Linux) 7.5.0"};
    recipe.needed = {"libc.so.6"};
    recipe.code_blocks = 4;

    sc::ExecutableImage image;
    image.bytes = siren::workload::synthesize(recipe);
    store.register_executable(path, std::move(image));
}

}  // namespace

// --- Table 1: the policy matrix, row by row ---------------------------------

TEST(Policy, Table1SystemExecutable) {
    const auto p = sc::Policy::for_scope(sc::Scope::kSystemExecutable);
    EXPECT_TRUE(p.file_meta);
    EXPECT_TRUE(p.libraries);
    EXPECT_FALSE(p.modules);
    EXPECT_FALSE(p.compilers);
    EXPECT_FALSE(p.memory_map);
    EXPECT_FALSE(p.file_hash);
    EXPECT_FALSE(p.strings_hash);
    EXPECT_FALSE(p.symbols_hash);
}

TEST(Policy, Table1UserExecutable) {
    const auto p = sc::Policy::for_scope(sc::Scope::kUserExecutable);
    EXPECT_TRUE(p.file_meta);
    EXPECT_TRUE(p.libraries);
    EXPECT_TRUE(p.modules);
    EXPECT_TRUE(p.compilers);
    EXPECT_TRUE(p.memory_map);
    EXPECT_TRUE(p.file_hash);
    EXPECT_TRUE(p.strings_hash);
    EXPECT_TRUE(p.symbols_hash);
}

TEST(Policy, Table1PythonInterpreter) {
    const auto p = sc::Policy::for_scope(sc::Scope::kPythonInterpreter);
    EXPECT_TRUE(p.file_meta);
    EXPECT_TRUE(p.libraries);
    EXPECT_FALSE(p.modules);
    EXPECT_FALSE(p.compilers);
    EXPECT_TRUE(p.memory_map);
    EXPECT_FALSE(p.file_hash);
    EXPECT_FALSE(p.strings_hash);
    EXPECT_FALSE(p.symbols_hash);
}

TEST(Policy, Table1PythonScript) {
    const auto p = sc::Policy::for_scope(sc::Scope::kPythonScript);
    EXPECT_TRUE(p.file_meta);
    EXPECT_FALSE(p.libraries);
    EXPECT_FALSE(p.modules);
    EXPECT_FALSE(p.compilers);
    EXPECT_FALSE(p.memory_map);
    EXPECT_TRUE(p.file_hash);
    EXPECT_FALSE(p.strings_hash);
    EXPECT_FALSE(p.symbols_hash);
}

TEST(Policy, Classify) {
    EXPECT_EQ(sc::classify(base_process("/usr/bin/bash")), sc::Scope::kSystemExecutable);
    EXPECT_EQ(sc::classify(base_process("/users/u/app")), sc::Scope::kUserExecutable);
    EXPECT_EQ(sc::classify(base_process("/usr/bin/python3.10")), sc::Scope::kPythonInterpreter);
    // User-dir Python interpreter counts as user executable (paper §3.1).
    EXPECT_EQ(sc::classify(base_process("/users/u/miniconda3/bin/python3.9")),
              sc::Scope::kUserExecutable);
}

// --- collector behaviour per scope ------------------------------------------

TEST(Collector, SystemScopeMessageSet) {
    sc::FileStore store;
    fill_store(store, "/usr/bin/bash");
    CaptureTransport transport;
    sc::Collector collector(store, transport);
    collector.collect(base_process("/usr/bin/bash"));

    EXPECT_EQ(transport.types(sn::Layer::kSelf),
              (std::set<std::string>{"IDS", "FILEMETA", "OBJECTS", "OBJECTS_H"}));
}

TEST(Collector, UserScopeMessageSet) {
    const std::string exe = "/users/u/app/bin/app";
    sc::FileStore store;
    fill_store(store, exe);
    CaptureTransport transport;
    sc::Collector collector(store, transport);
    auto p = base_process(exe);
    p.memory_map = {{0x400000, 0x500000, "r-xp", exe}};
    collector.collect(p);

    EXPECT_EQ(transport.types(sn::Layer::kSelf),
              (std::set<std::string>{"IDS", "FILEMETA", "OBJECTS", "OBJECTS_H", "MODULES",
                                     "MODULES_H", "COMPILERS", "COMPILERS_H", "MEMMAP",
                                     "MEMMAP_H", "FILE_H", "STRINGS_H", "SYMBOLS_H"}));
}

TEST(Collector, PythonInterpreterWithScript) {
    const std::string exe = "/usr/bin/python3.10";
    sc::FileStore store;
    fill_store(store, exe);
    CaptureTransport transport;
    sc::Collector collector(store, transport);

    auto p = base_process(exe);
    ss::PythonInfo info;
    info.script_path = "/users/u/run.py";
    info.script_content = "import numpy\nprint('hi')\n";
    p.python = info;
    p.memory_map = {{0x400000, 0x500000, "r-xp", exe}};
    collector.collect(p);

    EXPECT_EQ(transport.types(sn::Layer::kSelf),
              (std::set<std::string>{"IDS", "FILEMETA", "OBJECTS", "OBJECTS_H", "MEMMAP",
                                     "MEMMAP_H"}));
    EXPECT_EQ(transport.types(sn::Layer::kScript),
              (std::set<std::string>{"IDS", "FILEMETA", "SCRIPT_H"}));
}

TEST(Collector, SkipsNonzeroRanks) {
    sc::FileStore store;
    fill_store(store, "/usr/bin/bash");
    CaptureTransport transport;
    sc::Collector collector(store, transport);

    auto p = base_process("/usr/bin/bash");
    p.slurm_procid = 3;
    EXPECT_EQ(collector.collect(p), 0u);
    EXPECT_TRUE(transport.messages.empty());
    EXPECT_EQ(collector.stats().processes_skipped_rank.load(), 1u);

    sc::CollectorOptions all_ranks;
    all_ranks.only_rank_zero = false;
    sc::Collector collector2(store, transport, all_ranks);
    EXPECT_GT(collector2.collect(p), 0u);
}

TEST(Collector, GracefulOnUnknownExecutable) {
    // A user-scope process whose binary is not in the store: hashing fails
    // internally, but collect() must not throw and still counts the error.
    sc::FileStore empty_store;
    CaptureTransport transport;
    sc::Collector collector(empty_store, transport);
    EXPECT_NO_THROW(collector.collect(base_process("/users/u/ghost")));
    EXPECT_EQ(collector.stats().collection_errors.load(), 1u);
}

TEST(Collector, HeaderFieldsPropagate) {
    sc::FileStore store;
    fill_store(store, "/usr/bin/bash");
    CaptureTransport transport;
    sc::Collector collector(store, transport);
    collector.collect(base_process("/usr/bin/bash"));

    ASSERT_FALSE(transport.messages.empty());
    for (const auto& m : transport.messages) {
        EXPECT_EQ(m.job_id, 42u);
        EXPECT_EQ(m.pid, 1234);
        EXPECT_EQ(m.host, "nid000001");
        EXPECT_EQ(m.time, 1733900000);
        EXPECT_EQ(m.exe_hash, sc::Collector::exe_path_hash("/usr/bin/bash"));
    }
}

TEST(Collector, ExePathHashDiffersPerPath) {
    EXPECT_NE(sc::Collector::exe_path_hash("/usr/bin/bash"),
              sc::Collector::exe_path_hash("/usr/bin/srun"));
}

TEST(ExeStore, DerivedDataMemoizedAndConsistent) {
    const std::string path = "/users/u/app";
    sc::FileStore store;
    fill_store(store, path);
    const auto& d1 = store.derived(path);
    const auto& d2 = store.derived(path);
    EXPECT_EQ(&d1, &d2) << "second call must hit the cache";
    EXPECT_TRUE(d1.is_elf);
    EXPECT_FALSE(d1.file_hash.empty());
    EXPECT_FALSE(d1.strings_hash.empty());
    EXPECT_FALSE(d1.symbols_hash.empty());
    EXPECT_EQ(d1.compilers, (std::vector<std::string>{"GCC: (SUSE Linux) 7.5.0"}));
}

TEST(ExeStore, ReRegistrationInvalidatesCache) {
    const std::string path = "/users/u/app";
    sc::FileStore store;
    fill_store(store, path);
    const std::string hash_before = store.derived(path).file_hash;

    sc::ExecutableImage other;
    other.bytes = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
    store.register_executable(path, std::move(other));
    EXPECT_NE(store.derived(path).file_hash, hash_before);
    EXPECT_FALSE(store.derived(path).is_elf);
}

TEST(ExeStore, NonElfBytesDegradeGracefully) {
    sc::FileStore store;
    sc::ExecutableImage image;
    image.bytes = {'#', '!', '/', 'b', 'i', 'n', '/', 's', 'h', '\n'};
    store.register_executable("/users/u/script.sh", std::move(image));
    const auto& d = store.derived("/users/u/script.sh");
    EXPECT_FALSE(d.is_elf);
    EXPECT_FALSE(d.file_hash.empty());
    EXPECT_TRUE(d.compilers.empty());
    EXPECT_TRUE(d.symbols_hash.empty());
}

// --- Python package extraction ----------------------------------------------

TEST(Python, ExtractsDynloadModules) {
    const auto pkgs = sc::extract_python_packages({
        "/usr/lib64/python3.10/lib-dynload/_heapq.cpython-310-x86_64-linux-gnu.so",
        "/usr/lib64/python3.10/lib-dynload/math.cpython-310-x86_64-linux-gnu.so",
        "/usr/lib64/python3.10/lib-dynload/_posixsubprocess.cpython-310-x86_64-linux-gnu.so",
    });
    EXPECT_EQ(pkgs, (std::vector<std::string>{"heapq", "math", "posixsubprocess"}));
}

TEST(Python, ExtractsSitePackages) {
    const auto pkgs = sc::extract_python_packages({
        "/usr/lib64/python3.11/site-packages/numpy/core/_multiarray_umath.cpython-311.so",
        "/usr/lib64/python3.11/site-packages/pandas/_libs/lib.cpython-311.so",
        "/appl/x/site-packages/mpi4py.libs/libmpi.so",
    });
    EXPECT_EQ(pkgs, (std::vector<std::string>{"mpi4py", "numpy", "pandas"}));
}

TEST(Python, IgnoresNonPythonMappings) {
    const auto pkgs = sc::extract_python_packages({
        "/usr/bin/python3.10",
        "/lib64/libc.so.6",
        "",
        "/opt/siren/lib/siren.so",
    });
    EXPECT_TRUE(pkgs.empty());
}

TEST(Python, DeduplicatesAcrossMappings) {
    const auto pkgs = sc::extract_python_packages({
        "/x/site-packages/numpy/a.so",
        "/x/site-packages/numpy/b.so",
    });
    EXPECT_EQ(pkgs, (std::vector<std::string>{"numpy"}));
}

// ---------------------------------------------------------------------------
// Container gating (paper §3.1 limitation; §6 future work when enabled).

TEST(Collector, ContainerProcessesSkippedByDefault) {
    sc::FileStore store;
    fill_store(store, "/users/user_4/app/bin/app");
    CaptureTransport transport;
    sc::Collector collector(store, transport);

    auto p = base_process("/users/user_4/app/bin/app");
    p.in_container = true;
    EXPECT_EQ(collector.collect(p), 0u)
        << "siren.so is not mounted inside the container (paper §3.1)";
    EXPECT_EQ(collector.stats().processes_skipped_container.load(), 1u);
    EXPECT_EQ(collector.stats().processes_collected.load(), 0u);
    EXPECT_TRUE(transport.messages.empty());
}

TEST(Collector, ContainerCollectionOptInRestoresCoverage) {
    sc::FileStore store;
    fill_store(store, "/users/user_4/app/bin/app");
    CaptureTransport transport;
    sc::CollectorOptions options;
    options.collect_containers = true;  // §6 future work: mount siren.so
    sc::Collector collector(store, transport, options);

    auto p = base_process("/users/user_4/app/bin/app");
    p.in_container = true;
    EXPECT_GT(collector.collect(p), 0u);
    EXPECT_EQ(collector.stats().processes_skipped_container.load(), 0u);
    EXPECT_EQ(collector.stats().processes_collected.load(), 1u);
    EXPECT_FALSE(transport.messages.empty());
}

TEST(Collector, ContainerSkipStillCountsProcessAsSeen) {
    sc::FileStore store;
    fill_store(store, "/users/user_4/app/bin/app");
    CaptureTransport transport;
    sc::Collector collector(store, transport);

    auto contained = base_process("/users/user_4/app/bin/app");
    contained.in_container = true;
    collector.collect(contained);
    collector.collect(base_process("/users/user_4/app/bin/app"));

    EXPECT_EQ(collector.stats().processes_seen.load(), 2u)
        << "coverage accounting needs the denominator";
    EXPECT_EQ(collector.stats().processes_collected.load(), 1u);
}
