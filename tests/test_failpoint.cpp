// Registry semantics of the failpoint subsystem (src/util/failpoint.hpp):
// spec parsing, %N cadence, counters, re-arm resets, and the build-flag
// contract of the SIREN_FAILPOINT macro. These call eval() directly, so
// they hold in every build — only the macro tests depend on whether the
// hooks were compiled in.

#include <gtest/gtest.h>

#include <chrono>
#include <string>

#include "util/error.hpp"
#include "util/failpoint.hpp"

namespace fp = siren::util::failpoint;

namespace {

// The registry is process-global; every test starts and ends empty.
class Failpoint : public ::testing::Test {
protected:
    void SetUp() override { fp::clear(); }
    void TearDown() override { fp::clear(); }
};

}  // namespace

TEST_F(Failpoint, UnarmedEvalIsFalse) {
    const auto hit = fp::eval("test.unarmed");
    EXPECT_FALSE(hit);
    EXPECT_EQ(hit.action, fp::Action::kNone);
    EXPECT_EQ(fp::fire_count("test.unarmed"), 0u);
    EXPECT_TRUE(fp::counters().empty());
}

TEST_F(Failpoint, ErrorSpecCarriesErrno) {
    fp::activate("test.err", "error(28)");
    const auto hit = fp::eval("test.err");
    ASSERT_TRUE(hit);
    EXPECT_EQ(hit.action, fp::Action::kError);
    EXPECT_EQ(hit.err, 28);
    EXPECT_EQ(fp::fire_count("test.err"), 1u);
}

TEST_F(Failpoint, ShortWriteAndCorruptSpecs) {
    fp::activate("test.short", "short-write");
    fp::activate("test.corrupt", "corrupt-byte");
    EXPECT_EQ(fp::eval("test.short").action, fp::Action::kShortWrite);
    EXPECT_EQ(fp::eval("test.corrupt").action, fp::Action::kCorrupt);
}

TEST_F(Failpoint, OneInNFiresOnEveryNthHit) {
    fp::activate("test.cadence", "error(5)%3");
    int fired = 0;
    for (int i = 1; i <= 9; ++i) {
        if (fp::eval("test.cadence")) {
            ++fired;
            // Fires land exactly on hits 3, 6, 9.
            EXPECT_EQ(i % 3, 0) << "fired on hit " << i;
        }
    }
    EXPECT_EQ(fired, 3);
    const auto counters = fp::counters();
    ASSERT_EQ(counters.size(), 1u);
    EXPECT_EQ(counters[0].name, "test.cadence");
    EXPECT_EQ(counters[0].hits, 9u);
    EXPECT_EQ(counters[0].fires, 3u);
}

TEST_F(Failpoint, DelaySpecSleepsButInjectsNothing) {
    fp::activate("test.delay", "delay(20000)");
    const auto start = std::chrono::steady_clock::now();
    const auto hit = fp::eval("test.delay");
    const auto elapsed = std::chrono::steady_clock::now() - start;
    EXPECT_FALSE(hit) << "a pure delay passes the call through";
    EXPECT_GE(elapsed, std::chrono::milliseconds(15));
    EXPECT_EQ(fp::fire_count("test.delay"), 1u) << "the sleep itself counts as a fire";
}

TEST_F(Failpoint, ReArmReplacesModeAndResetsCounters) {
    fp::activate("test.rearm", "error(5)");
    fp::eval("test.rearm");
    fp::eval("test.rearm");
    EXPECT_EQ(fp::fire_count("test.rearm"), 2u);

    fp::activate("test.rearm", "short-write%2");
    EXPECT_EQ(fp::fire_count("test.rearm"), 0u) << "re-arm resets counters";
    EXPECT_FALSE(fp::eval("test.rearm")) << "fresh cadence: first hit skipped";
    EXPECT_EQ(fp::eval("test.rearm").action, fp::Action::kShortWrite);
}

TEST_F(Failpoint, DeactivateDisarms) {
    fp::activate("test.off", "error(5)");
    ASSERT_TRUE(fp::eval("test.off"));
    fp::deactivate("test.off");
    EXPECT_FALSE(fp::eval("test.off"));
    EXPECT_EQ(fp::fire_count("test.off"), 0u) << "counters drop with the point";
    fp::deactivate("test.off");  // disarming an unarmed point is a no-op
}

TEST_F(Failpoint, SpecListArmsMultiplePoints) {
    fp::activate_from_spec_list(" test.b = short-write %2 ; test.a=error(17);; ");
    const auto counters = fp::counters();
    ASSERT_EQ(counters.size(), 2u);
    EXPECT_EQ(counters[0].name, "test.a") << "counters() is name-sorted";
    EXPECT_EQ(counters[1].name, "test.b");
    EXPECT_EQ(fp::eval("test.a").err, 17);
}

TEST_F(Failpoint, MalformedSpecsThrow) {
    EXPECT_THROW(fp::activate("test.bad", "explode"), siren::util::ParseError);
    EXPECT_THROW(fp::activate("test.bad", "error()"), siren::util::ParseError);
    EXPECT_THROW(fp::activate("test.bad", "error(x)"), siren::util::ParseError);
    EXPECT_THROW(fp::activate("test.bad", "error(5)%0"), siren::util::ParseError);
    EXPECT_THROW(fp::activate_from_spec_list("=error(5)"), siren::util::ParseError);
    EXPECT_THROW(fp::activate_from_spec_list("no-equals-sign"), siren::util::ParseError);
    EXPECT_FALSE(fp::eval("test.bad")) << "a failed activate must not arm";
}

TEST_F(Failpoint, MacroHonorsBuildFlag) {
    fp::activate("test.macro", "error(9)");
    const auto hit = SIREN_FAILPOINT("test.macro");
    if (fp::compiled_in()) {
        EXPECT_TRUE(hit);
        EXPECT_EQ(hit.err, 9);
        EXPECT_EQ(fp::fire_count("test.macro"), 1u);
    } else {
        EXPECT_FALSE(hit) << "without SIREN_FAILPOINTS the macro folds to a no-op";
        EXPECT_EQ(fp::fire_count("test.macro"), 0u);
    }
}
