// Security scanner: advisory matching, slopsquat detection, registry
// classification, severity ordering.

#include <gtest/gtest.h>

#include "analytics/security.hpp"

namespace sa = siren::analytics;

namespace {

siren::consolidate::ProcessRecord python_record(std::uint64_t job, std::int64_t uid,
                                                const std::vector<std::string>& packages) {
    siren::consolidate::ProcessRecord r;
    r.job_id = job;
    r.uid = uid;
    r.pid = 1;
    r.exe_path = "/usr/bin/python3.10";
    r.category = siren::consolidate::Category::kPython;
    r.python_packages = packages;
    r.script_hash = "3:abc:de";
    return r;
}

}  // namespace

TEST(Security, KnownPackagesAreClean) {
    const auto scanner = sa::SecurityScanner::with_defaults();
    for (const char* pkg : {"numpy", "heapq", "struct", "mpi4py", "pandas"}) {
        std::string detail;
        EXPECT_EQ(scanner.classify(pkg, &detail), "") << pkg;
    }
}

TEST(Security, AdvisoriesMatch) {
    const auto scanner = sa::SecurityScanner::with_defaults();
    std::string detail;
    EXPECT_EQ(scanner.classify("pickle", &detail), "advisory");
    EXPECT_NE(detail.find("deserialization"), std::string::npos);
    EXPECT_EQ(scanner.classify("request", &detail), "advisory");  // typo-bait entry
}

TEST(Security, SlopsquatDetectionByEditDistance) {
    const auto scanner = sa::SecurityScanner::with_defaults();
    std::string detail;
    // One keystroke away from numpy.
    EXPECT_EQ(scanner.classify("nunpy", &detail), "slopsquat-suspect");
    EXPECT_NE(detail.find("numpy"), std::string::npos);
    // Transposition of pandas.
    EXPECT_EQ(scanner.classify("apndas", &detail), "slopsquat-suspect");
}

TEST(Security, UnknownButNotCloseIsUnregistered) {
    const auto scanner = sa::SecurityScanner::with_defaults();
    std::string detail;
    EXPECT_EQ(scanner.classify("myinhouselib", &detail), "unregistered");
}

TEST(Security, ScanAggregatesAndSorts) {
    sa::Aggregates agg;
    agg.add(python_record(1, 1001, {"numpy", "pickle", "nunpy"}));
    agg.add(python_record(2, 1002, {"pickle"}));

    const auto findings = sa::SecurityScanner::with_defaults().scan(agg);
    ASSERT_EQ(findings.size(), 2u);

    // Critical (slopsquat) sorts before warning (advisory).
    EXPECT_EQ(findings[0].package, "nunpy");
    EXPECT_EQ(findings[0].severity, sa::Severity::kCritical);
    EXPECT_EQ(findings[0].users, 1u);

    EXPECT_EQ(findings[1].package, "pickle");
    EXPECT_EQ(findings[1].kind, "advisory");
    EXPECT_EQ(findings[1].users, 2u);
    EXPECT_EQ(findings[1].jobs, 2u);
}

TEST(Security, CleanCampaignHasNoCriticalFindings) {
    sa::Aggregates agg;
    agg.add(python_record(1, 1001, {"numpy", "scipy", "heapq", "struct"}));
    const auto findings = sa::SecurityScanner::with_defaults().scan(agg);
    for (const auto& f : findings) {
        EXPECT_NE(f.severity, sa::Severity::kCritical) << f.package;
    }
}

TEST(Security, CustomScannerRules) {
    sa::SecurityScanner scanner({{"badpkg", sa::Severity::kCritical, "do not use"}},
                                {"goodpkg"});
    std::string detail;
    EXPECT_EQ(scanner.classify("badpkg", &detail), "advisory");
    EXPECT_EQ(scanner.classify("goodpkg", &detail), "");
    EXPECT_EQ(scanner.classify("weird", &detail), "unregistered");
}

TEST(Security, SeverityNames) {
    EXPECT_EQ(sa::to_string(sa::Severity::kInfo), "info");
    EXPECT_EQ(sa::to_string(sa::Severity::kWarning), "warning");
    EXPECT_EQ(sa::to_string(sa::Severity::kCritical), "critical");
}
