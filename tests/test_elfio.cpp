// ELF substrate: builder/reader round trips, extraction helpers, and
// robustness against malformed images.

#include <gtest/gtest.h>

#include "elfio/elfio.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace se = siren::elfio;
namespace su = siren::util;

namespace {

std::vector<std::uint8_t> sample_image() {
    se::Builder builder;
    builder.set_type(se::ET_EXEC)
        .set_text({0x48, 0x31, 0xc0, 0xc3})
        .set_rodata_strings({"hello from siren", "version 2.1", "ERROR: %s"})
        .set_comments({"GCC: (SUSE Linux) 7.5.0", "Cray clang version 15.0.1"})
        .set_needed({"libc.so.6", "libm.so.6"})
        .set_symbols({{"icon_run", se::STB_GLOBAL, se::STT_FUNC, 0x401000, 64},
                      {"icon_state", se::STB_GLOBAL, se::STT_OBJECT, 0x402000, 8},
                      {"local_helper", se::STB_LOCAL, se::STT_FUNC, 0x401040, 16}});
    return builder.build();
}

}  // namespace

TEST(Builder, ProducesParsableElf) {
    const auto image = sample_image();
    EXPECT_TRUE(se::Reader::looks_like_elf(image));
    const se::Reader reader(image);
    EXPECT_EQ(reader.type(), se::ET_EXEC);
    EXPECT_EQ(reader.machine(), se::EM_X86_64);
}

TEST(Reader, SectionsPresent) {
    const auto image = sample_image();
    const se::Reader reader(image);
    for (const char* name :
         {".text", ".rodata", ".comment", ".dynstr", ".dynamic", ".symtab", ".strtab"}) {
        EXPECT_NE(reader.section_by_name(name), nullptr) << name;
    }
    EXPECT_EQ(reader.section_by_name(".does-not-exist"), nullptr);
}

TEST(Reader, CommentStringsRoundTrip) {
    const auto image = sample_image();
    const se::Reader reader(image);
    EXPECT_EQ(reader.comment_strings(),
              (std::vector<std::string>{"GCC: (SUSE Linux) 7.5.0",
                                        "Cray clang version 15.0.1"}));
}

TEST(Reader, NeededLibrariesRoundTrip) {
    const auto image = sample_image();
    const se::Reader reader(image);
    EXPECT_EQ(reader.needed_libraries(),
              (std::vector<std::string>{"libc.so.6", "libm.so.6"}));
}

TEST(Reader, GlobalSymbolsExcludeLocals) {
    const auto image = sample_image();
    const se::Reader reader(image);
    const auto names = reader.global_symbol_names();
    EXPECT_EQ(names, (std::vector<std::string>{"icon_run", "icon_state"}));

    const auto all = reader.symbols();
    // NULL symbol + 3 declared.
    EXPECT_EQ(all.size(), 4u);
    EXPECT_EQ(all[3].name, "local_helper");
    EXPECT_FALSE(all[3].is_global());
}

TEST(Reader, SectionDataMatchesInput) {
    const auto image = sample_image();
    const se::Reader reader(image);
    const auto* text = reader.section_by_name(".text");
    ASSERT_NE(text, nullptr);
    const auto data = reader.section_data(*text);
    ASSERT_EQ(data.size(), 4u);
    EXPECT_EQ(data[0], 0x48);
    EXPECT_EQ(data[3], 0xc3);
}

TEST(Reader, RejectsNonElf) {
    const std::vector<std::uint8_t> junk = {'M', 'Z', 0, 0};
    EXPECT_FALSE(se::Reader::looks_like_elf(junk));
    EXPECT_THROW(se::Reader{junk}, su::ParseError);
    EXPECT_THROW(se::Reader{std::vector<std::uint8_t>{}}, su::ParseError);
}

TEST(Reader, RejectsTruncatedImage) {
    auto image = sample_image();
    image.resize(image.size() / 3);  // chop section table / payloads
    if (se::Reader::looks_like_elf(image)) {
        EXPECT_THROW(se::Reader{image}, su::ParseError);
    }
}

TEST(Reader, FuzzedMutationsNeverCrash) {
    // Robustness: random corruption may parse or throw ParseError, but must
    // never crash or read out of bounds (run under ASAN in CI).
    const auto pristine = sample_image();
    su::Rng rng(99);
    for (int round = 0; round < 200; ++round) {
        auto image = pristine;
        const std::size_t flips = 1 + rng.index(8);
        for (std::size_t i = 0; i < flips; ++i) {
            image[rng.index(image.size())] ^= static_cast<std::uint8_t>(1 + rng.index(255));
        }
        try {
            const se::Reader reader(image);
            (void)reader.comment_strings();
            (void)reader.symbols();
            (void)reader.needed_libraries();
            (void)reader.global_symbol_names();
        } catch (const su::ParseError&) {
            // acceptable outcome
        }
    }
}

TEST(Extract, PrintableStrings) {
    const std::vector<std::uint8_t> blob = {'a', 'b',  'c', 'd', 0x00, 'x',
                                            'y', 0x01, 'l', 'o', 'n',  'g',
                                            'e', 'r',  ' ', 's', 't',  'r'};
    const auto strings = se::printable_strings(blob, 4);
    EXPECT_EQ(strings, (std::vector<std::string>{"abcd", "longer str"}));
}

TEST(Extract, MinLengthFilters) {
    const std::vector<std::uint8_t> blob = {'a', 'b', 0x00, 'c', 'd', 'e', 'f', 'g'};
    EXPECT_EQ(se::printable_strings(blob, 4), (std::vector<std::string>{"cdefg"}));
    EXPECT_EQ(se::printable_strings(blob, 2), (std::vector<std::string>{"ab", "cdefg"}));
}

TEST(Extract, StringsBlobStable) {
    EXPECT_EQ(se::strings_blob({"a", "b"}), "a\nb\n");
    EXPECT_EQ(se::strings_blob({}), "");
}

TEST(Builder, EmptySectionsAreLegal) {
    se::Builder builder;
    const auto image = builder.build();
    const se::Reader reader(image);
    EXPECT_TRUE(reader.comment_strings().empty());
    EXPECT_TRUE(reader.needed_libraries().empty());
    EXPECT_TRUE(reader.global_symbol_names().empty());
}

TEST(Builder, LargeTextSection) {
    su::Rng rng(5);
    se::Builder builder;
    builder.set_text(rng.bytes(1 << 20));
    const auto image = builder.build();
    const se::Reader reader(image);
    const auto* text = reader.section_by_name(".text");
    ASSERT_NE(text, nullptr);
    EXPECT_EQ(text->size, 1u << 20);
}

TEST(Builder, StringsSurviveStripStyleExtraction) {
    // The .rodata strings must be recoverable by the printable-strings
    // scan over the whole image (that is what ST_H hashes).
    const auto image = sample_image();
    const auto strings = se::printable_strings(image, 5);
    bool found = false;
    for (const auto& s : strings) found = found || s == "hello from siren";
    EXPECT_TRUE(found);
}
