// Simulated HPC substrate: path categorization, Python detection, module
// resolution, cluster identifiers, metadata round trips.

#include <gtest/gtest.h>

#include "sim/cluster.hpp"
#include "sim/fsnames.hpp"
#include "sim/modules.hpp"
#include "util/error.hpp"

namespace ss = siren::sim;

TEST(Fsnames, SystemDirectories) {
    // The exact prefix list of the paper (§3.1).
    for (const char* path :
         {"/usr/bin/bash", "/bin/sh", "/opt/cray/pe/bin/cc", "/etc/profile", "/lib/ld.so",
          "/sbin/init", "/var/run/x", "/proc/self/exe", "/sys/devices/x", "/boot/vmlinuz",
          "/dev/null"}) {
        EXPECT_EQ(ss::categorize_path(path), ss::PathCategory::kSystem) << path;
    }
}

TEST(Fsnames, UserDirectories) {
    for (const char* path :
         {"/users/user_4/icon/bin/icon", "/scratch/project_1/a.out", "/home/x/tool",
          "/projappl/p/gromacs/gmx", "relative/a.out", "a.out"}) {
        EXPECT_EQ(ss::categorize_path(path), ss::PathCategory::kUser) << path;
    }
}

TEST(Fsnames, PythonInterpreterDetection) {
    EXPECT_TRUE(ss::is_python_interpreter("/usr/bin/python"));
    EXPECT_TRUE(ss::is_python_interpreter("/usr/bin/python3"));
    EXPECT_TRUE(ss::is_python_interpreter("/usr/bin/python3.11"));
    EXPECT_TRUE(ss::is_python_interpreter("/users/u/miniconda3/bin/python3.9"));
    EXPECT_FALSE(ss::is_python_interpreter("/usr/bin/python-config"));
    EXPECT_FALSE(ss::is_python_interpreter("/usr/bin/perl"));
    EXPECT_FALSE(ss::is_python_interpreter("/usr/bin/pythonic_tool"));
}

TEST(Fsnames, InterpreterName) {
    EXPECT_EQ(ss::interpreter_name("/usr/bin/python3.10"), "python3.10");
}

TEST(SimProcess, CategoryLogic) {
    ss::SimProcess p;
    p.exe_path = "/usr/bin/python3.10";
    EXPECT_TRUE(p.is_python());

    // A Python interpreter in a *user* directory is not category Python.
    p.exe_path = "/users/u2/miniconda3/envs/w/bin/python3.9";
    EXPECT_FALSE(p.is_python());
    EXPECT_EQ(p.path_category(), ss::PathCategory::kUser);
}

TEST(Modules, ResolveExpandsDependenciesOnce) {
    ss::ModuleSystem mods;
    mods.add({"craype", "2.7.20", {}});
    mods.add({"cce", "15.0.1", {"craype"}});
    mods.add({"PrgEnv-cray", "8.4.0", {"cce", "craype"}});

    const auto resolved = mods.resolve({"PrgEnv-cray", "craype"});
    EXPECT_EQ(resolved, (std::vector<std::string>{"craype/2.7.20", "cce/15.0.1",
                                                  "PrgEnv-cray/8.4.0"}));
}

TEST(Modules, UnknownModulesKeptVerbatim) {
    ss::ModuleSystem mods;
    const auto resolved = mods.resolve({"my-custom-thing"});
    EXPECT_EQ(resolved, (std::vector<std::string>{"my-custom-thing"}));
}

TEST(Modules, DuplicateRegistrationRejected) {
    ss::ModuleSystem mods;
    mods.add({"rocm", "5.2.3", {}});
    EXPECT_THROW(mods.add({"rocm", "5.2.3", {}}), siren::util::Error);
    mods.add({"rocm", "5.4.0", {}});  // other version fine
}

TEST(Modules, LoadedModulesRendering) {
    EXPECT_EQ(ss::ModuleSystem::loadedmodules_value({"a/1", "b/2"}), "a/1:b/2");
    EXPECT_EQ(ss::ModuleSystem::loadedmodules_value({}), "");
}

TEST(Cluster, HostnamesAndPids) {
    ss::Cluster cluster(4);
    EXPECT_EQ(cluster.node_count(), 4u);
    EXPECT_EQ(cluster.hostname(0), "nid000001");
    EXPECT_EQ(cluster.hostname(3), "nid000004");

    const auto pid1 = cluster.next_pid(0);
    const auto pid2 = cluster.next_pid(0);
    EXPECT_EQ(pid2, pid1 + 1);

    const auto job1 = cluster.next_job_id();
    EXPECT_EQ(cluster.next_job_id(), job1 + 1);
}

TEST(FileMeta, RenderParseRoundTrip) {
    ss::FileMeta m;
    m.inode = 123456;
    m.size = 987654;
    m.mode = 0750;
    m.owner_uid = 1004;
    m.owner_gid = 1004;
    m.atime = 1733900000;
    m.mtime = 1733890000;
    m.ctime = 1733880000;

    const ss::FileMeta parsed = ss::FileMeta::parse(m.render());
    EXPECT_EQ(parsed.inode, m.inode);
    EXPECT_EQ(parsed.size, m.size);
    EXPECT_EQ(parsed.mode, m.mode);
    EXPECT_EQ(parsed.owner_uid, m.owner_uid);
    EXPECT_EQ(parsed.mtime, m.mtime);
}

TEST(FileMeta, ParseRejectsGarbage) {
    EXPECT_THROW(ss::FileMeta::parse("not metadata"), siren::util::ParseError);
    EXPECT_THROW(ss::FileMeta::parse("inode=1 size=2"), siren::util::ParseError);
}

TEST(MapsEntry, RenderFormat) {
    ss::MapsEntry e{0x400000, 0x600000, "r-xp", "/usr/bin/python3.10"};
    const std::string line = e.render();
    EXPECT_NE(line.find("000000400000-000000600000"), std::string::npos);
    EXPECT_NE(line.find("r-xp"), std::string::npos);
    EXPECT_NE(line.find("/usr/bin/python3.10"), std::string::npos);
}
