// Edit distances: Levenshtein, Damerau-Levenshtein, weighted variant —
// including metric properties as parameterized sweeps.

#include <gtest/gtest.h>

#include "fuzzy/edit_distance.hpp"
#include "util/rng.hpp"

namespace sf = siren::fuzzy;

TEST(Levenshtein, Basics) {
    EXPECT_EQ(sf::levenshtein("", ""), 0u);
    EXPECT_EQ(sf::levenshtein("abc", "abc"), 0u);
    EXPECT_EQ(sf::levenshtein("abc", ""), 3u);
    EXPECT_EQ(sf::levenshtein("", "abc"), 3u);
    EXPECT_EQ(sf::levenshtein("kitten", "sitting"), 3u);
    EXPECT_EQ(sf::levenshtein("flaw", "lawn"), 2u);
}

TEST(Levenshtein, TranspositionCostsTwo) {
    // Without the Damerau extension, a swap is delete+insert.
    EXPECT_EQ(sf::levenshtein("ab", "ba"), 2u);
}

TEST(Damerau, TranspositionCostsOne) {
    EXPECT_EQ(sf::damerau_levenshtein("ab", "ba"), 1u);
    EXPECT_EQ(sf::damerau_levenshtein("abcdef", "abdcef"), 1u);
    // Damerau's own example: a single transposition plus substitution.
    EXPECT_EQ(sf::damerau_levenshtein("ca", "abc"), 3u);  // restricted variant
}

TEST(Damerau, MatchesLevenshteinWhenNoSwapsHelp) {
    EXPECT_EQ(sf::damerau_levenshtein("kitten", "sitting"), 3u);
    EXPECT_EQ(sf::damerau_levenshtein("abc", "xyz"), 3u);
}

TEST(Weighted, SubstitutionDefaultCostsTwo) {
    // ssdeep semantics: substitution = 2 (= delete+insert), swap = 2.
    EXPECT_EQ(sf::weighted_edit_distance("abc", "axc"), 2u);
    EXPECT_EQ(sf::weighted_edit_distance("abc", "abcd"), 1u);
    EXPECT_EQ(sf::weighted_edit_distance("ab", "ba"), 2u);
}

TEST(Weighted, CustomCosts) {
    sf::EditCosts costs;
    costs.substitute = 1;
    EXPECT_EQ(sf::weighted_edit_distance("abc", "axc", costs), 1u);
    costs.insert = 5;
    EXPECT_EQ(sf::weighted_edit_distance("", "aa", costs), 10u);
}

// --- metric-property sweeps -------------------------------------------------

class EditDistanceProperties : public ::testing::TestWithParam<std::uint64_t> {
protected:
    std::string random_string(siren::util::Rng& rng, std::size_t max_len) {
        const std::size_t len = rng.index(max_len + 1);
        std::string s;
        for (std::size_t i = 0; i < len; ++i) s += static_cast<char>('a' + rng.index(4));
        return s;
    }
};

TEST_P(EditDistanceProperties, SymmetryAndIdentity) {
    siren::util::Rng rng(GetParam());
    for (int i = 0; i < 50; ++i) {
        const std::string a = random_string(rng, 24);
        const std::string b = random_string(rng, 24);
        EXPECT_EQ(sf::damerau_levenshtein(a, b), sf::damerau_levenshtein(b, a));
        EXPECT_EQ(sf::damerau_levenshtein(a, a), 0u);
        EXPECT_EQ(sf::levenshtein(a, b), sf::levenshtein(b, a));
    }
}

TEST_P(EditDistanceProperties, TriangleInequality) {
    siren::util::Rng rng(GetParam() ^ 0xABCDu);
    for (int i = 0; i < 30; ++i) {
        const std::string a = random_string(rng, 16);
        const std::string b = random_string(rng, 16);
        const std::string c = random_string(rng, 16);
        EXPECT_LE(sf::levenshtein(a, c), sf::levenshtein(a, b) + sf::levenshtein(b, c));
    }
}

TEST_P(EditDistanceProperties, DamerauNeverExceedsLevenshtein) {
    siren::util::Rng rng(GetParam() ^ 0x1234u);
    for (int i = 0; i < 50; ++i) {
        const std::string a = random_string(rng, 20);
        const std::string b = random_string(rng, 20);
        EXPECT_LE(sf::damerau_levenshtein(a, b), sf::levenshtein(a, b));
    }
}

TEST_P(EditDistanceProperties, BoundedByLongerString) {
    siren::util::Rng rng(GetParam() ^ 0x77u);
    for (int i = 0; i < 50; ++i) {
        const std::string a = random_string(rng, 20);
        const std::string b = random_string(rng, 20);
        EXPECT_LE(sf::levenshtein(a, b), std::max(a.size(), b.size()));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EditDistanceProperties,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));
