// Edit distances: Levenshtein, Damerau-Levenshtein, weighted variant —
// including metric properties as parameterized sweeps.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "fuzzy/edit_distance.hpp"
#include "util/rng.hpp"

namespace sf = siren::fuzzy;

TEST(Levenshtein, Basics) {
    EXPECT_EQ(sf::levenshtein("", ""), 0u);
    EXPECT_EQ(sf::levenshtein("abc", "abc"), 0u);
    EXPECT_EQ(sf::levenshtein("abc", ""), 3u);
    EXPECT_EQ(sf::levenshtein("", "abc"), 3u);
    EXPECT_EQ(sf::levenshtein("kitten", "sitting"), 3u);
    EXPECT_EQ(sf::levenshtein("flaw", "lawn"), 2u);
}

TEST(Levenshtein, TranspositionCostsTwo) {
    // Without the Damerau extension, a swap is delete+insert.
    EXPECT_EQ(sf::levenshtein("ab", "ba"), 2u);
}

TEST(Damerau, TranspositionCostsOne) {
    EXPECT_EQ(sf::damerau_levenshtein("ab", "ba"), 1u);
    EXPECT_EQ(sf::damerau_levenshtein("abcdef", "abdcef"), 1u);
    // Damerau's own example: a single transposition plus substitution.
    EXPECT_EQ(sf::damerau_levenshtein("ca", "abc"), 3u);  // restricted variant
}

TEST(Damerau, MatchesLevenshteinWhenNoSwapsHelp) {
    EXPECT_EQ(sf::damerau_levenshtein("kitten", "sitting"), 3u);
    EXPECT_EQ(sf::damerau_levenshtein("abc", "xyz"), 3u);
}

TEST(Weighted, SubstitutionDefaultCostsTwo) {
    // ssdeep semantics: substitution = 2 (= delete+insert), swap = 2.
    EXPECT_EQ(sf::weighted_edit_distance("abc", "axc"), 2u);
    EXPECT_EQ(sf::weighted_edit_distance("abc", "abcd"), 1u);
    EXPECT_EQ(sf::weighted_edit_distance("ab", "ba"), 2u);
}

TEST(Weighted, CustomCosts) {
    sf::EditCosts costs;
    costs.substitute = 1;
    EXPECT_EQ(sf::weighted_edit_distance("abc", "axc", costs), 1u);
    costs.insert = 5;
    EXPECT_EQ(sf::weighted_edit_distance("", "aa", costs), 10u);
}

TEST(Indel, Basics) {
    EXPECT_EQ(sf::indel_distance("", ""), 0u);
    EXPECT_EQ(sf::indel_distance("abc", ""), 3u);
    EXPECT_EQ(sf::indel_distance("abc", "abc"), 0u);
    EXPECT_EQ(sf::indel_distance("abc", "axc"), 2u) << "a substitution is delete+insert";
    EXPECT_EQ(sf::indel_distance("ab", "ba"), 2u);
    EXPECT_EQ(sf::indel_distance("abc", "abcd"), 1u);
}

TEST(Indel, EqualsDefaultWeightedDistance) {
    // The dispatch invariant behind the bit-parallel fast path: with the
    // default ssdeep costs the weighted distance IS the indel distance.
    EXPECT_EQ(sf::weighted_edit_distance("kitten", "sitting"),
              sf::indel_distance("kitten", "sitting"));
}

// --- bit-parallel vs reference DP -------------------------------------------

namespace {

/// Independent textbook DP used only as the test oracle, so the
/// bit-parallel kernels are checked against a second implementation.
std::size_t reference_levenshtein(std::string_view a, std::string_view b) {
    std::vector<std::size_t> prev(b.size() + 1), cur(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j) prev[j] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
        cur[0] = i;
        for (std::size_t j = 1; j <= b.size(); ++j) {
            cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1,
                               prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1)});
        }
        std::swap(prev, cur);
    }
    return prev[b.size()];
}

std::size_t reference_lcs(std::string_view a, std::string_view b) {
    std::vector<std::size_t> prev(b.size() + 1), cur(b.size() + 1);
    for (std::size_t i = 1; i <= a.size(); ++i) {
        for (std::size_t j = 1; j <= b.size(); ++j) {
            cur[j] = a[i - 1] == b[j - 1] ? prev[j - 1] + 1 : std::max(prev[j], cur[j - 1]);
        }
        std::swap(prev, cur);
    }
    return prev[b.size()];
}

std::string random_word(siren::util::Rng& rng, std::size_t max_len, int alphabet) {
    const std::size_t len = rng.index(max_len + 1);
    std::string s;
    for (std::size_t i = 0; i < len; ++i) {
        s += static_cast<char>('a' + rng.index(static_cast<std::size_t>(alphabet)));
    }
    return s;
}

}  // namespace

class BitParallelSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BitParallelSweep, LevenshteinMatchesReferenceAcrossWordBoundary) {
    // Lengths 0..80 cross the 64-char word boundary, so both the Myers
    // kernel and the DP fallback are exercised against the oracle.
    siren::util::Rng rng(GetParam());
    for (int i = 0; i < 200; ++i) {
        const std::string a = random_word(rng, 80, 4);
        const std::string b = random_word(rng, 80, 4);
        EXPECT_EQ(sf::levenshtein(a, b), reference_levenshtein(a, b))
            << "a='" << a << "' b='" << b << "'";
    }
}

TEST_P(BitParallelSweep, IndelMatchesLcsFormula) {
    siren::util::Rng rng(GetParam() ^ 0xBEEFu);
    for (int i = 0; i < 200; ++i) {
        const std::string a = random_word(rng, 80, 4);
        const std::string b = random_word(rng, 80, 4);
        EXPECT_EQ(sf::indel_distance(a, b), a.size() + b.size() - 2 * reference_lcs(a, b))
            << "a='" << a << "' b='" << b << "'";
    }
}

TEST_P(BitParallelSweep, WeightedDistanceUnchangedByDispatch) {
    // The ssdeep scorer's distance must be identical whether it comes from
    // the bit-parallel indel path (default costs, digest-length strings)
    // or the general weighted DP (any costs); sub/transpose >= delete +
    // insert collapses both to the LCS formula.
    siren::util::Rng rng(GetParam() ^ 0x5151u);
    const sf::EditCosts expensive{1, 1, 5, 7};
    for (int i = 0; i < 100; ++i) {
        const std::string a = random_word(rng, 64, 3);
        const std::string b = random_word(rng, 64, 3);
        const std::size_t indel = a.size() + b.size() - 2 * reference_lcs(a, b);
        EXPECT_EQ(sf::weighted_edit_distance(a, b), indel);
        EXPECT_EQ(sf::weighted_edit_distance(a, b, expensive), indel)
            << "costs pricier than delete+insert cannot change the optimum";
    }
}

TEST_P(BitParallelSweep, InterleavedX4MatchesScalarBounded) {
    // The batched rescore kernel interleaves four Myers computations; every
    // lane must stay bit-identical to the scalar bounded call — including
    // the max_dist+1 abandon sentinel and the >64-char DP fallback — for
    // any lane mix.
    siren::util::Rng rng(GetParam() ^ 0x4444u);
    for (int round = 0; round < 200; ++round) {
        std::string a_store[4];
        std::string b_store[4];
        std::string_view a[4];
        std::string_view b[4];
        std::size_t max_dist[4];
        for (int k = 0; k < 4; ++k) {
            // Lengths 0..80 cross the 64-char pattern boundary, so some
            // lanes take the scalar fallback while others stay batched.
            a_store[k] = random_word(rng, 80, 4);
            b_store[k] = random_word(rng, 80, 4);
            a[k] = a_store[k];
            b[k] = b_store[k];
            max_dist[k] = rng.index(96);
        }
        std::size_t batched[4];
        sf::indel_distance_bounded_x4(a, b, max_dist, batched);
        for (int k = 0; k < 4; ++k) {
            EXPECT_EQ(batched[k], sf::indel_distance_bounded(a[k], b[k], max_dist[k]))
                << "lane " << k << " a='" << a[k] << "' b='" << b[k]
                << "' max_dist=" << max_dist[k];
        }
    }
}

TEST(IndelX4, EmptyAndBoundaryLanes) {
    const std::string_view a[4] = {"", "abcdef", "", "zzzz"};
    const std::string_view b[4] = {"", "", "xyz", "zzzz"};
    const std::size_t max_dist[4] = {0, 3, 10, 0};
    std::size_t out[4];
    sf::indel_distance_bounded_x4(a, b, max_dist, out);
    EXPECT_EQ(out[0], 0u);
    EXPECT_EQ(out[1], 4u) << "abandoned: length gap 6 > max_dist 3 reports max_dist+1";
    EXPECT_EQ(out[2], 3u);
    EXPECT_EQ(out[3], 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitParallelSweep, ::testing::Values(101u, 202u, 303u));

// --- metric-property sweeps -------------------------------------------------

class EditDistanceProperties : public ::testing::TestWithParam<std::uint64_t> {
protected:
    std::string random_string(siren::util::Rng& rng, std::size_t max_len) {
        const std::size_t len = rng.index(max_len + 1);
        std::string s;
        for (std::size_t i = 0; i < len; ++i) s += static_cast<char>('a' + rng.index(4));
        return s;
    }
};

TEST_P(EditDistanceProperties, SymmetryAndIdentity) {
    siren::util::Rng rng(GetParam());
    for (int i = 0; i < 50; ++i) {
        const std::string a = random_string(rng, 24);
        const std::string b = random_string(rng, 24);
        EXPECT_EQ(sf::damerau_levenshtein(a, b), sf::damerau_levenshtein(b, a));
        EXPECT_EQ(sf::damerau_levenshtein(a, a), 0u);
        EXPECT_EQ(sf::levenshtein(a, b), sf::levenshtein(b, a));
    }
}

TEST_P(EditDistanceProperties, TriangleInequality) {
    siren::util::Rng rng(GetParam() ^ 0xABCDu);
    for (int i = 0; i < 30; ++i) {
        const std::string a = random_string(rng, 16);
        const std::string b = random_string(rng, 16);
        const std::string c = random_string(rng, 16);
        EXPECT_LE(sf::levenshtein(a, c), sf::levenshtein(a, b) + sf::levenshtein(b, c));
    }
}

TEST_P(EditDistanceProperties, DamerauNeverExceedsLevenshtein) {
    siren::util::Rng rng(GetParam() ^ 0x1234u);
    for (int i = 0; i < 50; ++i) {
        const std::string a = random_string(rng, 20);
        const std::string b = random_string(rng, 20);
        EXPECT_LE(sf::damerau_levenshtein(a, b), sf::levenshtein(a, b));
    }
}

TEST_P(EditDistanceProperties, BoundedByLongerString) {
    siren::util::Rng rng(GetParam() ^ 0x77u);
    for (int i = 0; i < 50; ++i) {
        const std::string a = random_string(rng, 20);
        const std::string b = random_string(rng, 20);
        EXPECT_LE(sf::levenshtein(a, b), std::max(a.size(), b.size()));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EditDistanceProperties,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));
