// Consolidation: chunk reassembly into records, Python script merging,
// exec()-chain disambiguation, loss accounting.

#include <gtest/gtest.h>

#include "collect/collector.hpp"
#include "collect/exe_store.hpp"
#include "consolidate/consolidator.hpp"
#include "net/channel.hpp"
#include "net/chunker.hpp"
#include "net/codec.hpp"
#include "workload/synthesizer.hpp"

namespace sc = siren::collect;
namespace sn = siren::net;
namespace ss = siren::sim;
namespace sx = siren::consolidate;

namespace {

class CaptureTransport : public sn::Transport {
public:
    void send(std::string_view datagram) noexcept override {
        try {
            messages.push_back(sn::decode(datagram));
        } catch (...) {
        }
    }
    std::vector<sn::Message> messages;
};

ss::SimProcess user_process() {
    ss::SimProcess p;
    p.job_id = 7;
    p.step_id = 0;
    p.host = "nid000002";
    p.pid = 500;
    p.ppid = 499;
    p.uid = 1004;
    p.gid = 1004;
    p.start_time = 1734000000;
    p.exe_path = "/users/user_4/icon-model/build_0/bin/icon";
    p.loaded_objects = {"/lib64/libc.so.6", "/opt/siren/lib/siren.so"};
    p.loaded_modules = {"PrgEnv-cray/8.4.0", "cce/15.0.1"};
    p.memory_map = {{0x400000, 0x500000, "r-xp", p.exe_path}};
    return p;
}

std::vector<sn::Message> collect_messages(const ss::SimProcess& p) {
    siren::workload::BinaryRecipe recipe;
    recipe.lineage = "icon";
    recipe.compilers = {"GCC: (SUSE Linux) 7.5.0"};
    recipe.code_blocks = 4;

    sc::FileStore store;
    sc::ExecutableImage image;
    image.bytes = siren::workload::synthesize(recipe);
    store.register_executable(p.exe_path, std::move(image));

    CaptureTransport transport;
    sc::Collector collector(store, transport);
    collector.collect(p);
    return transport.messages;
}

}  // namespace

TEST(Consolidate, BuildsOneRecordPerProcess) {
    const auto messages = collect_messages(user_process());
    const auto result = sx::consolidate(messages);
    ASSERT_EQ(result.records.size(), 1u);

    const auto& r = result.records[0];
    EXPECT_EQ(r.job_id, 7u);
    EXPECT_EQ(r.pid, 500);
    EXPECT_EQ(r.ppid, 499);
    EXPECT_EQ(r.uid, 1004);
    EXPECT_EQ(r.exe_path, "/users/user_4/icon-model/build_0/bin/icon");
    EXPECT_EQ(r.category, sx::Category::kUser);
    ASSERT_TRUE(r.exe_meta.has_value());
    EXPECT_EQ(r.modules,
              (std::vector<std::string>{"PrgEnv-cray/8.4.0", "cce/15.0.1"}));
    EXPECT_EQ(r.objects.size(), 2u);
    EXPECT_FALSE(r.file_hash.empty());
    EXPECT_FALSE(r.strings_hash.empty());
    EXPECT_FALSE(r.symbols_hash.empty());
    EXPECT_FALSE(r.objects_hash.empty());
    EXPECT_FALSE(r.modules_hash.empty());
    EXPECT_FALSE(r.compilers_hash.empty());
    EXPECT_FALSE(r.has_missing_fields());
}

TEST(Consolidate, CategoryDerivation) {
    auto p = user_process();
    p.exe_path = "/usr/bin/bash";
    p.memory_map.clear();
    auto result = sx::consolidate(collect_messages(p));
    ASSERT_EQ(result.records.size(), 1u);
    EXPECT_EQ(result.records[0].category, sx::Category::kSystem);

    p.exe_path = "/usr/bin/python3.10";
    result = sx::consolidate(collect_messages(p));
    ASSERT_EQ(result.records.size(), 1u);
    EXPECT_EQ(result.records[0].category, sx::Category::kPython);
}

TEST(Consolidate, PythonScriptMergedIntoInterpreterRow) {
    auto p = user_process();
    p.exe_path = "/usr/bin/python3.10";
    ss::PythonInfo info;
    info.script_path = "/users/user_4/scripts/run.py";
    info.script_content = "import numpy\n";
    info.script_meta.inode = 4242;
    p.python = info;
    p.memory_map = {
        {0x400000, 0x500000, "r-xp", "/usr/bin/python3.10"},
        {0x7f0000000000, 0x7f0000040000, "r-xp",
         "/usr/lib64/python3.10/lib-dynload/_heapq.cpython-310.so"},
        {0x7f0000100000, 0x7f0000140000, "r-xp",
         "/usr/lib64/python3.10/site-packages/numpy/core/umath.so"},
    };

    const auto result = sx::consolidate(collect_messages(p));
    ASSERT_EQ(result.records.size(), 1u) << "SCRIPT layer must merge, not add a record";
    const auto& r = result.records[0];
    EXPECT_EQ(r.script_path, "/users/user_4/scripts/run.py");
    EXPECT_FALSE(r.script_hash.empty());
    ASSERT_TRUE(r.script_meta.has_value());
    EXPECT_EQ(r.script_meta->inode, 4242u);
    EXPECT_EQ(r.python_packages, (std::vector<std::string>{"heapq", "numpy"}));
}

TEST(Consolidate, ExecChainSamePidSeparatedByPathHash) {
    // bash exec()s into srun: same JOBID/PID/HOST/TIME, different exe.
    auto bash = user_process();
    bash.exe_path = "/usr/bin/bash";
    bash.memory_map.clear();
    auto srun = bash;
    srun.exe_path = "/usr/bin/srun";

    auto messages = collect_messages(bash);
    const auto srun_messages = collect_messages(srun);
    messages.insert(messages.end(), srun_messages.begin(), srun_messages.end());

    const auto result = sx::consolidate(messages);
    EXPECT_EQ(result.records.size(), 2u)
        << "the HASH header must split exec() chains sharing a PID";
}

TEST(Consolidate, LostChunksMarkFieldIncomplete) {
    auto p = user_process();
    // Huge module list forces chunking of MODULES.
    for (int i = 0; i < 400; ++i) {
        p.loaded_modules.push_back("filler-module-" + std::to_string(i) + "/1.0.0");
    }
    auto messages = collect_messages(p);

    // Drop one MODULES chunk (not the only one).
    std::size_t dropped = 0;
    for (std::size_t i = 0; i < messages.size(); ++i) {
        if (messages[i].type == sn::MsgType::kModules && messages[i].total > 1 &&
            messages[i].seq == 1) {
            messages.erase(messages.begin() + static_cast<std::ptrdiff_t>(i));
            dropped = 1;
            break;
        }
    }
    ASSERT_EQ(dropped, 1u) << "test setup: MODULES should have chunked";

    const auto result = sx::consolidate(messages);
    ASSERT_EQ(result.records.size(), 1u);
    const auto& r = result.records[0];
    EXPECT_TRUE(r.has_missing_fields());
    ASSERT_EQ(r.incomplete_fields.size(), 1u);
    EXPECT_EQ(r.incomplete_fields[0], "SELF:MODULES");
    EXPECT_EQ(result.jobs_with_missing_fields, 1u);
    EXPECT_EQ(result.processes_with_missing_fields, 1u);
}

TEST(Consolidate, TotalJobAccounting) {
    auto p1 = user_process();
    auto p2 = user_process();
    p2.job_id = 8;
    p2.pid = 501;
    auto messages = collect_messages(p1);
    const auto more = collect_messages(p2);
    messages.insert(messages.end(), more.begin(), more.end());

    const auto result = sx::consolidate(messages);
    EXPECT_EQ(result.total_jobs, 2u);
    EXPECT_EQ(result.jobs_with_missing_fields, 0u);
    EXPECT_DOUBLE_EQ(result.job_missing_ratio(), 0.0);
}

TEST(Consolidate, RecordSurvivesTotalIdsLoss) {
    auto messages = collect_messages(user_process());
    // Remove the IDS message entirely: category becomes unknown but the
    // record must still exist (graceful degradation).
    messages.erase(std::remove_if(messages.begin(), messages.end(),
                                  [](const sn::Message& m) {
                                      return m.type == sn::MsgType::kIds;
                                  }),
                   messages.end());
    const auto result = sx::consolidate(messages);
    ASSERT_EQ(result.records.size(), 1u);
    EXPECT_EQ(result.records[0].category, sx::Category::kUnknown);
    EXPECT_TRUE(result.records[0].exe_path.empty());
}

TEST(Consolidate, EmptyInput) {
    const auto result = sx::consolidate(std::vector<sn::Message>{});
    EXPECT_TRUE(result.records.empty());
    EXPECT_EQ(result.total_jobs, 0u);
}

TEST(Consolidate, OrderInsensitive) {
    // UDP reorders datagrams freely; a reversed stream must consolidate to
    // the same record as the in-order one.
    auto messages = collect_messages(user_process());
    const auto in_order = sx::consolidate(messages);
    std::reverse(messages.begin(), messages.end());
    const auto reversed = sx::consolidate(messages);

    ASSERT_EQ(in_order.records.size(), 1u);
    ASSERT_EQ(reversed.records.size(), 1u);
    const auto& a = in_order.records[0];
    const auto& b = reversed.records[0];
    EXPECT_EQ(a.exe_path, b.exe_path);
    EXPECT_EQ(a.modules, b.modules);
    EXPECT_EQ(a.objects, b.objects);
    EXPECT_EQ(a.file_hash, b.file_hash);
    EXPECT_EQ(a.has_missing_fields(), b.has_missing_fields());
}

TEST(Consolidate, DuplicateDatagramsTolerated) {
    // UDP can also duplicate. Doubling the whole stream must not create a
    // second record or corrupt chunked fields.
    auto messages = collect_messages(user_process());
    const auto baseline = sx::consolidate(messages);
    auto doubled = messages;
    doubled.insert(doubled.end(), messages.begin(), messages.end());
    const auto result = sx::consolidate(doubled);

    ASSERT_EQ(result.records.size(), 1u);
    EXPECT_EQ(result.records[0].exe_path, baseline.records[0].exe_path);
    EXPECT_EQ(result.records[0].modules, baseline.records[0].modules);
    EXPECT_FALSE(result.records[0].has_missing_fields());
}

TEST(Consolidate, InterleavedProcessesSeparate) {
    auto p1 = user_process();
    auto p2 = user_process();
    p2.pid = 501;
    p2.exe_path = "/users/user_4/icon-model/build_1/bin/icon";
    const auto m1 = collect_messages(p1);
    const auto m2 = collect_messages(p2);

    // Interleave the two message streams datagram by datagram.
    std::vector<sn::Message> mixed;
    for (std::size_t i = 0; i < std::max(m1.size(), m2.size()); ++i) {
        if (i < m1.size()) mixed.push_back(m1[i]);
        if (i < m2.size()) mixed.push_back(m2[i]);
    }
    const auto result = sx::consolidate(mixed);
    ASSERT_EQ(result.records.size(), 2u);
    EXPECT_NE(result.records[0].pid, result.records[1].pid);
    for (const auto& r : result.records) {
        EXPECT_FALSE(r.has_missing_fields()) << "interleaving must not lose chunks";
    }
}

// ---------------------------------------------------------------------------
// Zero-copy equivalence: consolidate(span<MessageView>) over raw datagram
// bytes must produce records and loss accounting identical to the owned
// consolidate(vector<Message>) — across chunking, drops, duplicates,
// reordering, exec chains and Python merging.

namespace {

/// Capture raw datagram bytes, the way the framework's InlineShard arenas
/// them (the views decode in place; `wires` owns the bytes).
class RawCaptureTransport : public sn::Transport {
public:
    void send(std::string_view datagram) noexcept override {
        wires.emplace_back(datagram);
    }
    std::vector<std::string> wires;
};

std::vector<std::string> collect_wires(const ss::SimProcess& p) {
    siren::workload::BinaryRecipe recipe;
    recipe.lineage = "icon";
    recipe.compilers = {"GCC: (SUSE Linux) 7.5.0"};
    recipe.code_blocks = 4;

    sc::FileStore store;
    sc::ExecutableImage image;
    image.bytes = siren::workload::synthesize(recipe);
    store.register_executable(p.exe_path, std::move(image));

    RawCaptureTransport transport;
    sc::Collector collector(store, transport);
    collector.collect(p);
    return transport.wires;
}

/// Consolidate the same datagrams through both paths and assert identity.
void expect_paths_agree(const std::vector<std::string>& wires) {
    std::vector<sn::Message> owned;
    std::vector<sn::MessageView> views;
    for (const auto& wire : wires) {
        owned.push_back(sn::decode(wire));
        sn::MessageView view;
        sn::decode_view(wire, view);
        views.push_back(view);
    }

    const auto by_owned = sx::consolidate(owned);
    const auto by_view = sx::consolidate(views);

    EXPECT_EQ(by_view.records, by_owned.records);
    EXPECT_EQ(by_view.total_jobs, by_owned.total_jobs);
    EXPECT_EQ(by_view.jobs_with_missing_fields, by_owned.jobs_with_missing_fields);
    EXPECT_EQ(by_view.processes_with_missing_fields, by_owned.processes_with_missing_fields);
    EXPECT_EQ(by_view.incomplete_field_groups, by_owned.incomplete_field_groups);
}

}  // namespace

TEST(ConsolidateView, MatchesOwnedPathForCompleteProcess) {
    expect_paths_agree(collect_wires(user_process()));
}

TEST(ConsolidateView, MatchesOwnedPathWithEscapedHost) {
    auto p = user_process();
    p.host = "nid|weird\thost\\01";
    expect_paths_agree(collect_wires(p));
}

TEST(ConsolidateView, MatchesOwnedPathUnderChunkingDamage) {
    auto p = user_process();
    for (int i = 0; i < 400; ++i) {
        p.loaded_modules.push_back("filler-module-" + std::to_string(i) + "/1.0.0");
    }
    auto wires = collect_wires(p);
    ASSERT_GT(wires.size(), 4u);

    // Drop one datagram, duplicate another, reverse the rest.
    wires.erase(wires.begin() + static_cast<std::ptrdiff_t>(wires.size() / 2));
    wires.push_back(wires[1]);
    std::reverse(wires.begin(), wires.end());
    expect_paths_agree(wires);
}

TEST(ConsolidateView, MatchesOwnedPathAcrossProcessesAndLayers) {
    auto bash = user_process();
    bash.exe_path = "/usr/bin/bash";
    bash.memory_map.clear();
    auto srun = bash;  // exec() chain: same PID, new exe
    srun.exe_path = "/usr/bin/srun";

    auto python = user_process();
    python.pid = 777;
    python.exe_path = "/usr/bin/python3.10";
    ss::PythonInfo info;
    info.script_path = "/users/user_4/scripts/run.py";
    info.script_content = "import numpy\n";
    info.script_meta.inode = 4242;
    python.python = info;
    python.memory_map = {
        {0x400000, 0x500000, "r-xp", "/usr/bin/python3.10"},
        {0x7f0000100000, 0x7f0000140000, "r-xp",
         "/usr/lib64/python3.10/site-packages/numpy/core/umath.so"},
    };

    std::vector<std::string> wires = collect_wires(bash);
    for (const auto& p : {srun, python}) {
        const auto more = collect_wires(p);
        wires.insert(wires.end(), more.begin(), more.end());
    }
    expect_paths_agree(wires);

    // Sanity on the view result itself: three records, script merged.
    std::vector<sn::MessageView> views;
    std::vector<std::string> backing = wires;
    for (const auto& wire : backing) {
        sn::MessageView view;
        sn::decode_view(wire, view);
        views.push_back(view);
    }
    const auto result = sx::consolidate(views);
    ASSERT_EQ(result.records.size(), 3u);
}

TEST(ConsolidateView, EmptySpan) {
    const auto result = sx::consolidate(std::span<const sn::MessageView>{});
    EXPECT_TRUE(result.records.empty());
    EXPECT_EQ(result.total_jobs, 0u);
}

TEST(ConsolidateView, ConsolidatorIsReusableAcrossFlushes) {
    sx::ViewConsolidator consolidator;
    const auto wires_a = collect_wires(user_process());
    auto p = user_process();
    p.pid = 900;
    const auto wires_b = collect_wires(p);

    for (const auto* wires : {&wires_a, &wires_b, &wires_a}) {
        std::vector<sn::MessageView> views;
        for (const auto& wire : *wires) {
            sn::MessageView view;
            sn::decode_view(wire, view);
            views.push_back(view);
        }
        const auto result = consolidator.consolidate(views);
        ASSERT_EQ(result.records.size(), 1u);
        EXPECT_FALSE(result.records[0].has_missing_fields());
    }
}
