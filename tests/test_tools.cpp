// End-to-end tests of the operator CLIs (siren_hash, siren_registry):
// real fork/exec of the built binaries, exit codes and stdout contracts.

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <array>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#ifndef SIREN_HASH_PATH
#define SIREN_HASH_PATH "siren_hash"
#endif
#ifndef SIREN_REGISTRY_PATH
#define SIREN_REGISTRY_PATH "siren_registry"
#endif

namespace {

namespace fs = std::filesystem;

struct RunResult {
    int exit_code = -1;
    std::string out;
};

/// Run a binary with args, capture stdout; returns exit code -1 on spawn
/// failure (callers GTEST_SKIP on that, for locked-down environments).
RunResult run(const std::string& binary, const std::vector<std::string>& args) {
    std::string command = binary;
    for (const auto& a : args) command += " '" + a + "'";
    command += " 2>/dev/null";

    RunResult result;
    FILE* pipe = ::popen(command.c_str(), "r");
    if (pipe == nullptr) return result;
    std::array<char, 4096> buf{};
    std::size_t n = 0;
    while ((n = ::fread(buf.data(), 1, buf.size(), pipe)) > 0) {
        result.out.append(buf.data(), n);
    }
    const int status = ::pclose(pipe);
    if (WIFEXITED(status)) result.exit_code = WEXITSTATUS(status);
    return result;
}

/// A scratch file with deterministic content, deleted on scope exit.
class ScratchFile {
public:
    ScratchFile(const std::string& name, std::size_t size, std::uint8_t fill_seed) {
        path_ = (fs::temp_directory_path() / name).string();
        std::ofstream out(path_, std::ios::binary);
        // xorshift stream per seed: files with different seeds share no
        // structure (a linear ramp pattern would fuzzy-match across seeds).
        std::uint64_t state = 0x9E3779B97F4A7C15ull * (fill_seed + 1);
        for (std::size_t i = 0; i < size; ++i) {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            out.put(static_cast<char>(state & 0xFF));
        }
    }
    ~ScratchFile() { std::error_code ec; fs::remove(path_, ec); }
    const std::string& path() const { return path_; }

private:
    std::string path_;
};

}  // namespace

TEST(ToolsHash, PrintsDigestPerFile) {
    ScratchFile f("siren_tools_a.bin", 8192, 1);
    const auto r = run(SIREN_HASH_PATH, {f.path()});
    if (r.exit_code == -1) GTEST_SKIP() << "cannot spawn processes here";
    EXPECT_EQ(r.exit_code, 0);
    // "digest  path" — digest has the bs:d1:d2 shape.
    EXPECT_NE(r.out.find(':'), std::string::npos);
    EXPECT_NE(r.out.find(f.path()), std::string::npos);
}

TEST(ToolsHash, CompareModeSelfIs100) {
    ScratchFile f("siren_tools_b.bin", 8192, 2);
    const auto r = run(SIREN_HASH_PATH, {"-c", f.path(), f.path()});
    if (r.exit_code == -1) GTEST_SKIP() << "cannot spawn processes here";
    EXPECT_EQ(r.exit_code, 0);
    EXPECT_EQ(r.out, "100\n");
}

TEST(ToolsHash, MissingFileExitsTwo) {
    const auto r = run(SIREN_HASH_PATH, {"/nonexistent/siren/file"});
    if (r.exit_code == -1) GTEST_SKIP() << "cannot spawn processes here";
    EXPECT_EQ(r.exit_code, 2);
}

TEST(ToolsHash, NoArgumentsIsUsageError) {
    const auto r = run(SIREN_HASH_PATH, {});
    if (r.exit_code == -1) GTEST_SKIP() << "cannot spawn processes here";
    EXPECT_EQ(r.exit_code, 1);
}

TEST(ToolsRegistry, ObserveMatchListRoundTrip) {
    const auto reg = (fs::temp_directory_path() / "siren_tools_reg.txt").string();
    std::error_code ec;
    fs::remove(reg, ec);

    ScratchFile app("siren_tools_app.bin", 16384, 3);
    ScratchFile other("siren_tools_other.bin", 16384, 200);

    auto r = run(SIREN_REGISTRY_PATH, {"observe", reg, app.path(), "MyApp"});
    if (r.exit_code == -1) GTEST_SKIP() << "cannot spawn processes here";
    EXPECT_EQ(r.exit_code, 0);
    EXPECT_NE(r.out.find("MyApp"), std::string::npos);
    EXPECT_NE(r.out.find("[new family]"), std::string::npos);

    // The registry file persists; a match from a fresh process recognizes
    // the same bytes and does not mutate the registry.
    r = run(SIREN_REGISTRY_PATH, {"match", reg, app.path()});
    EXPECT_EQ(r.exit_code, 0);
    EXPECT_NE(r.out.find("MyApp"), std::string::npos);
    EXPECT_NE(r.out.find("score 100"), std::string::npos);

    r = run(SIREN_REGISTRY_PATH, {"match", reg, other.path()});
    EXPECT_EQ(r.exit_code, 0);
    EXPECT_NE(r.out.find("unknown"), std::string::npos);

    r = run(SIREN_REGISTRY_PATH, {"list", reg});
    EXPECT_EQ(r.exit_code, 0);
    EXPECT_NE(r.out.find("MyApp"), std::string::npos);

    fs::remove(reg, ec);
}

TEST(ToolsRegistry, CorruptRegistryExitsTwo) {
    const auto reg = (fs::temp_directory_path() / "siren_tools_corrupt.txt").string();
    {
        std::ofstream out(reg);
        out << "this is not a registry\n";
    }
    ScratchFile app("siren_tools_c.bin", 8192, 4);
    const auto r = run(SIREN_REGISTRY_PATH, {"observe", reg, app.path()});
    if (r.exit_code == -1) GTEST_SKIP() << "cannot spawn processes here";
    EXPECT_EQ(r.exit_code, 2);
    std::error_code ec;
    fs::remove(reg, ec);
}

TEST(ToolsRegistry, UsageErrorsExitOne) {
    const auto r = run(SIREN_REGISTRY_PATH, {"bogus-command", "x"});
    if (r.exit_code == -1) GTEST_SKIP() << "cannot spawn processes here";
    EXPECT_EQ(r.exit_code, 1);
}

#ifndef SIREN_QUERY_PATH
#define SIREN_QUERY_PATH "siren_query"
#endif
#ifndef SIREN_RECOGNIZED_PATH
#define SIREN_RECOGNIZED_PATH "siren_recognized"
#endif

TEST(ToolsQuery, UnknownFlagIsUsageErrorNotTablesView) {
    // Regression: `siren_query DB --bogus` used to fall through to the
    // default tables view; an unrecognized flag must be rejected loudly.
    const auto r = run(SIREN_QUERY_PATH, {"/tmp", "--bogus"});
    if (r.exit_code == -1) GTEST_SKIP() << "cannot spawn processes here";
    EXPECT_EQ(r.exit_code, 1);
    EXPECT_TRUE(r.out.empty()) << "usage goes to stderr, not stdout: " << r.out;
}

TEST(ToolsQuery, UnknownLeadingFlagIsUsageError) {
    const auto r = run(SIREN_QUERY_PATH, {"--bogus", "x"});
    if (r.exit_code == -1) GTEST_SKIP() << "cannot spawn processes here";
    EXPECT_EQ(r.exit_code, 1);
}

TEST(ToolsQuery, ExtraArgumentsAreUsageErrors) {
    const auto r = run(SIREN_QUERY_PATH, {"/tmp", "--records", "extra"});
    if (r.exit_code == -1) GTEST_SKIP() << "cannot spawn processes here";
    EXPECT_EQ(r.exit_code, 1);
}

TEST(ToolsQuery, BadEndpointExitsOne) {
    const auto r = run(SIREN_QUERY_PATH, {"--identify", "not-an-endpoint", "3:abc:def"});
    if (r.exit_code == -1) GTEST_SKIP() << "cannot spawn processes here";
    EXPECT_EQ(r.exit_code, 1);
}

TEST(ToolsQuery, UnreachableServiceExitsTwo) {
    // Port 1 on loopback: connect() refused — runtime failure, not usage.
    const auto r = run(SIREN_QUERY_PATH, {"--identify", "127.0.0.1:1", "3:abc:def"});
    if (r.exit_code == -1) GTEST_SKIP() << "cannot spawn processes here";
    EXPECT_EQ(r.exit_code, 2);
}

TEST(ToolsRecognized, UsageErrors) {
    auto r = run(SIREN_RECOGNIZED_PATH, {});
    if (r.exit_code == -1) GTEST_SKIP() << "cannot spawn processes here";
    EXPECT_EQ(r.exit_code, 1);
    r = run(SIREN_RECOGNIZED_PATH, {"not-a-port"});
    EXPECT_EQ(r.exit_code, 1);
    r = run(SIREN_RECOGNIZED_PATH, {"0", "--bogus"});
    EXPECT_EQ(r.exit_code, 1);
    r = run(SIREN_RECOGNIZED_PATH, {"0", "--threshold", "200"});
    EXPECT_EQ(r.exit_code, 1);
    r = run(SIREN_RECOGNIZED_PATH, {"0", "--seconds"});
    EXPECT_EQ(r.exit_code, 1) << "a flag missing its value is incomplete, not ignored";
}

#ifndef SIREN_BENCH_TO_JSON_PATH
#define SIREN_BENCH_TO_JSON_PATH "tools/bench_to_json.py"
#endif

TEST(ToolsBenchToJson, CondensesGoogleBenchmarkOutput) {
    const auto raw = (fs::temp_directory_path() / "siren_tools_bench_raw.json").string();
    {
        std::ofstream out(raw);
        out << R"({
  "context": {"date": "2026-07-28T00:00:00", "num_cpus": 8},
  "benchmarks": [
    {"name": "BM_Decode", "run_type": "iteration", "iterations": 1000,
     "real_time": 400.0, "cpu_time": 399.0, "time_unit": "ns"},
    {"name": "BM_DecodeView", "run_type": "iteration", "iterations": 4000,
     "real_time": 100.0, "cpu_time": 99.0, "time_unit": "ns",
     "allocs_per_op": 0.0}
  ]
})";
    }

    const auto r = run("python3", {SIREN_BENCH_TO_JSON_PATH, raw});
    if (r.exit_code == -1) GTEST_SKIP() << "cannot spawn processes here";
    if (r.exit_code == 127) GTEST_SKIP() << "python3 unavailable";
    EXPECT_EQ(r.exit_code, 0);
    // The condensed record keeps both benchmarks and derives the headline
    // decode_view_speedup ratio (400 / 100 = 4.0).
    EXPECT_NE(r.out.find("\"BM_DecodeView\""), std::string::npos) << r.out;
    EXPECT_NE(r.out.find("\"decode_view_speedup\": 4.0"), std::string::npos) << r.out;
    EXPECT_NE(r.out.find("\"allocs_per_op\": 0.0"), std::string::npos) << r.out;

    std::error_code ec;
    fs::remove(raw, ec);
}

TEST(ToolsBenchToJson, BadInputExitsOne) {
    const auto r = run("python3", {SIREN_BENCH_TO_JSON_PATH, "/nonexistent/bench.json"});
    if (r.exit_code == -1) GTEST_SKIP() << "cannot spawn processes here";
    if (r.exit_code == 127) GTEST_SKIP() << "python3 unavailable";
    EXPECT_EQ(r.exit_code, 1);
}
