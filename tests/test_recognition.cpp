// Campaign-scale recognition: the registry fed by consolidated campaign
// aggregates (analytics::recognition_report). Integration across workload
// -> collect -> consolidate -> analytics -> recognize.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "analytics/recognition.hpp"
#include "core/siren.hpp"

namespace sa = siren::analytics;

namespace {

/// One consolidated mini campaign shared by all tests in this file (the
/// pipeline run costs ~100 ms; the report assertions are read-only).
const siren::CampaignResult& mini_result() {
    static const siren::CampaignResult result = [] {
        siren::FrameworkOptions options;
        options.scale = 1.0;
        options.seed = 2024;
        return run_campaign(siren::workload::mini_campaign(), options);
    }();
    return result;
}

sa::RecognitionReport mini_report() {
    return sa::recognition_report(mini_result().aggregates, sa::Labeler::default_rules(),
                                  {.match_threshold = 55});
}

}  // namespace

TEST(Recognition, CoversEveryUserBinary) {
    const auto report = mini_report();
    std::size_t digests = 0;
    for (const auto& [path, exe] : mini_result().aggregates.execs) {
        if (exe.category == siren::consolidate::Category::kUser) {
            digests += exe.file_hashes.size();
        }
    }
    EXPECT_EQ(report.sightings, digests) << "every (path, FILE_H) pair must be observed";
    EXPECT_EQ(report.sightings, report.recognized + report.families_founded);
    std::size_t in_rows = 0;
    for (const auto& row : report.rows) in_rows += row.distinct_binaries;
    EXPECT_EQ(in_rows, report.sightings);
}

TEST(Recognition, RepeatedExecutionsAreRecognized) {
    // The mini campaign's icon lineage has multiple builds; after the first
    // founds the family the rest must be recognized, so the recognition
    // rate is strictly positive and families << sightings.
    const auto report = mini_report();
    EXPECT_GT(report.recognized, 0u);
    EXPECT_GT(report.recognition_rate(), 0.3);
    EXPECT_LT(report.rows.size(), report.sightings);
}

TEST(Recognition, UnknownBinariesJoinTheirLabeledFamily) {
    // The campaign plants a.out copies of icon builds (labeler: UNKNOWN).
    // Similarity must fold them into the icon family, and the report must
    // count the family as a beyond-the-regex-baseline identification.
    const auto report = mini_report();
    const auto icon = std::find_if(report.rows.begin(), report.rows.end(),
                                   [](const sa::RecognitionRow& r) { return r.name == "icon"; });
    ASSERT_NE(icon, report.rows.end()) << "icon family must exist and be named";
    EXPECT_FALSE(icon->anonymous);
    EXPECT_GE(icon->paths, 2u) << "both the named builds and the a.out copies map to icon";
    EXPECT_GE(report.anonymous_named, 1u);
}

TEST(Recognition, RowsSortedByDistinctBinariesDescending) {
    const auto report = mini_report();
    for (std::size_t i = 0; i + 1 < report.rows.size(); ++i) {
        EXPECT_GE(report.rows[i].distinct_binaries, report.rows[i + 1].distinct_binaries);
    }
}

TEST(Recognition, ProcessesAttributedOncePerPath) {
    const auto report = mini_report();
    std::uint64_t attributed = 0;
    std::uint64_t total_user = 0;
    std::size_t user_paths = 0;
    for (const auto& row : report.rows) attributed += row.processes;
    for (const auto& [path, exe] : mini_result().aggregates.execs) {
        if (exe.category == siren::consolidate::Category::kUser) {
            total_user += exe.processes;
            ++user_paths;
        }
    }
    EXPECT_EQ(attributed, total_user) << "no double counting across families";
    std::size_t paths_in_rows = 0;
    for (const auto& row : report.rows) paths_in_rows += row.paths;
    EXPECT_EQ(paths_in_rows, user_paths);
}

TEST(Recognition, DeterministicAcrossRuns) {
    const auto a = mini_report();
    const auto b = mini_report();
    ASSERT_EQ(a.rows.size(), b.rows.size());
    for (std::size_t i = 0; i < a.rows.size(); ++i) {
        EXPECT_EQ(a.rows[i].name, b.rows[i].name);
        EXPECT_EQ(a.rows[i].distinct_binaries, b.rows[i].distinct_binaries);
        EXPECT_EQ(a.rows[i].processes, b.rows[i].processes);
    }
    EXPECT_EQ(a.recognized, b.recognized);
    EXPECT_EQ(a.anonymous_named, b.anonymous_named);
}

TEST(Recognition, ThresholdGovernsFamilyGranularity) {
    // An impossible threshold isolates every sighting; a permissive one
    // merges lineages: family count must be monotone in the threshold.
    const auto& agg = mini_result().aggregates;
    const auto labeler = sa::Labeler::default_rules();
    std::size_t prev = 0;
    for (const int threshold : {5, 55, 101}) {
        const auto report =
            sa::recognition_report(agg, labeler, {.match_threshold = threshold});
        EXPECT_GE(report.rows.size(), prev) << "threshold " << threshold;
        prev = report.rows.size();
    }
    const auto isolate = sa::recognition_report(agg, labeler, {.match_threshold = 101});
    EXPECT_EQ(isolate.rows.size(), isolate.sightings) << "threshold > 100 isolates everything";
}
