// Durable segment store: record framing, fsync-batched writes, rotation,
// torn-tail crash recovery, checksum detection, and compaction
// (docs/storage_format.md).

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "hashing/crc32c.hpp"
#include "storage/segment.hpp"
#include "storage/segment_store.hpp"
#include "serve/segment_tail.hpp"
#include "util/failpoint.hpp"

namespace st = siren::storage;
namespace fs = std::filesystem;

namespace {

class StoreDir {
public:
    StoreDir() {
        path_ = (fs::temp_directory_path() /
                 ("siren_segments_" + std::to_string(::getpid()) + "_" +
                  std::to_string(counter_++)))
                    .string();
        fs::remove_all(path_);
    }
    ~StoreDir() {
        std::error_code ec;
        fs::remove_all(path_, ec);
    }
    const std::string& path() const { return path_; }

private:
    static inline int counter_ = 0;
    std::string path_;
};

std::string record(int i) {
    return "SIREN-record-" + std::to_string(i) + "-" + std::string(40 + i % 17, 'x');
}

std::vector<std::string> collect_records(const std::string& dir, st::ReplayStats* out = nullptr) {
    std::vector<std::string> records;
    const auto stats =
        st::replay_directory(dir, [&](std::string_view r) { records.emplace_back(r); });
    if (out != nullptr) *out = stats;
    return records;
}

}  // namespace

TEST(Segment, WriteReplayRoundTrip) {
    StoreDir dir;
    {
        st::SegmentWriter writer(dir.path(), "t-");
        for (int i = 0; i < 100; ++i) EXPECT_TRUE(writer.append(record(i)));
        EXPECT_TRUE(writer.append(""));  // empty records are legal
        writer.close();
        EXPECT_EQ(writer.appended(), 101u);
        EXPECT_EQ(writer.errors(), 0u);
    }
    st::ReplayStats stats;
    const auto records = collect_records(dir.path(), &stats);
    ASSERT_EQ(records.size(), 101u);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(records[static_cast<std::size_t>(i)], record(i));
    EXPECT_EQ(records.back(), "");
    EXPECT_EQ(stats.records, 101u);
    EXPECT_EQ(stats.segments, 1u);
    EXPECT_EQ(stats.torn_tails, 0u);
    EXPECT_EQ(stats.crc_failures, 0u);
}

TEST(Segment, SyncIsVisibleWithoutClose) {
    StoreDir dir;
    st::SegmentWriter writer(dir.path(), "t-");
    for (int i = 0; i < 10; ++i) writer.append(record(i));
    writer.sync();  // durability barrier; writer still open
    EXPECT_EQ(writer.unsynced_bytes(), 0u);
    EXPECT_EQ(collect_records(dir.path()).size(), 10u);
}

// The crash-recovery workflow: restart a writer on the same durable
// directory. It must resume the sequence AFTER the previous run's segments
// (never truncate them — that is exactly the data the store promises
// survives a restart) and replay must then see both runs.
TEST(Segment, RestartResumesSequenceWithoutClobbering) {
    StoreDir dir;
    std::string first_path;
    {
        st::SegmentWriter writer(dir.path(), "t-");
        for (int i = 0; i < 5; ++i) writer.append(record(i));
        first_path = writer.active_path();
        writer.close();
    }
    const auto first_size = fs::file_size(first_path);
    {
        st::SegmentWriter writer(dir.path(), "t-");
        for (int i = 5; i < 10; ++i) writer.append(record(i));
        EXPECT_NE(writer.active_path(), first_path)
            << "the restarted writer must open a fresh segment";
        writer.close();
    }
    EXPECT_EQ(fs::file_size(first_path), first_size) << "first run's segment left intact";

    st::ReplayStats stats;
    const auto records = collect_records(dir.path(), &stats);
    ASSERT_EQ(records.size(), 10u);
    for (int i = 0; i < 10; ++i) EXPECT_EQ(records[static_cast<std::size_t>(i)], record(i));
    EXPECT_EQ(stats.segments, 2u);
}

// Sequences that outgrow the 8-digit zero padding must still replay in
// append order: numerically, 11111112 < 100000000, even though the 9-digit
// name sorts first lexicographically.
TEST(Segment, ReplayOrdersByNumericSequenceBeyondPadding) {
    StoreDir dir;
    {
        st::SegmentWriter writer(dir.path(), "t-");
        writer.append(record(0));
        writer.rotate();  // seals t-00000000.seg
        writer.append(record(1));
        writer.close();  // leaves t-00000001.seg
    }
    fs::rename(fs::path(dir.path()) / "t-00000000.seg", fs::path(dir.path()) / "t-11111112.seg");
    fs::rename(fs::path(dir.path()) / "t-00000001.seg", fs::path(dir.path()) / "t-100000000.seg");

    const auto records = collect_records(dir.path());
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0], record(0));
    EXPECT_EQ(records[1], record(1));

    // And a writer restarted here resumes after the 9-digit survivor.
    st::SegmentWriter writer(dir.path(), "t-");
    writer.append(record(2));
    EXPECT_EQ(writer.active_path(), dir.path() + "/t-100000001.seg");
    writer.close();
}

TEST(SegmentStore, RestartedStoreAppendsNextToSurvivingSegments) {
    StoreDir dir;
    constexpr std::size_t kShards = 2;
    for (int run = 0; run < 3; ++run) {
        st::SegmentStore store(dir.path(), kShards);
        for (std::size_t s = 0; s < kShards; ++s) {
            for (int i = 0; i < 10; ++i) store.append(s, record(run * 10 + i));
        }
        store.close();
    }
    EXPECT_EQ(collect_records(dir.path()).size(), 3u * kShards * 10u);
}

TEST(Segment, RotationSplitsIntoMultipleFiles) {
    StoreDir dir;
    st::SegmentOptions options;
    options.max_segment_bytes = 2048;  // force frequent rotation
    std::vector<std::string> sealed;
    {
        st::SegmentWriter writer(dir.path(), "t-", options,
                                 [&](const std::string& path) { sealed.push_back(path); });
        for (int i = 0; i < 200; ++i) writer.append(record(i));
        writer.close();
        EXPECT_GT(writer.segments_opened(), 3u);
    }
    EXPECT_GE(sealed.size(), 3u);
    for (const auto& path : sealed) EXPECT_TRUE(fs::exists(path)) << path;

    st::ReplayStats stats;
    const auto records = collect_records(dir.path(), &stats);
    ASSERT_EQ(records.size(), 200u);
    // Lexicographic file order must reproduce append order.
    for (int i = 0; i < 200; ++i) EXPECT_EQ(records[static_cast<std::size_t>(i)], record(i));
    EXPECT_GE(stats.segments, 4u);
}

// Group-commit mode: a successful background sync_written() must retire
// the durability-lag stat (and make the next sync a no-op) instead of
// letting unsynced_bytes grow without bound.
TEST(Segment, SyncWrittenRetiresDurabilityLag) {
    StoreDir dir;
    st::SegmentOptions options;
    options.buffer_bytes = 1;  // every append goes straight to the fd
    st::SegmentWriter writer(dir.path(), "t-", options);
    writer.set_inline_fsync(false);
    for (int i = 0; i < 20; ++i) writer.append(record(i));
    EXPECT_GT(writer.unsynced_bytes(), 0u);

    writer.sync_written();
    EXPECT_EQ(writer.unsynced_bytes(), 0u);
    const auto syncs_after_flush = writer.syncs();
    writer.sync_written();  // nothing new written since
    EXPECT_EQ(writer.syncs(), syncs_after_flush) << "no redundant fsync when lag is zero";
    writer.sync();
    EXPECT_EQ(writer.syncs(), syncs_after_flush) << "sync() skips the fsync too";
    writer.close();
}

// The crash-recovery contract (ISSUE acceptance): truncate a segment at
// EVERY byte boundary inside its final record — replay must return each
// complete preceding record intact and report the torn tail, never throw.
TEST(Segment, TornTailRecoversEveryCompleteRecord) {
    StoreDir dir;
    constexpr int kRecords = 8;
    std::string path;
    {
        st::SegmentWriter writer(dir.path(), "t-");
        for (int i = 0; i < kRecords; ++i) writer.append(record(i));
        path = writer.active_path();
        writer.close();
    }
    const auto full_size = static_cast<std::uint64_t>(fs::file_size(path));
    const std::uint64_t last_record_framed = st::kRecordHeaderBytes + record(kRecords - 1).size();
    const std::uint64_t last_record_start = full_size - last_record_framed;

    for (std::uint64_t cut = last_record_start + 1; cut < full_size; ++cut) {
        StoreDir torn_dir;
        fs::create_directories(torn_dir.path());
        const std::string torn = torn_dir.path() + "/torn-00000000.seg";
        fs::copy_file(path, torn);
        fs::resize_file(torn, cut);

        st::ReplayStats stats;
        std::vector<std::string> records;
        ASSERT_NO_THROW(stats = st::replay_segment(
                            torn, [&](std::string_view r) { records.emplace_back(r); }))
            << "cut at byte " << cut;
        ASSERT_EQ(records.size(), static_cast<std::size_t>(kRecords - 1)) << "cut " << cut;
        for (int i = 0; i < kRecords - 1; ++i) {
            EXPECT_EQ(records[static_cast<std::size_t>(i)], record(i));
        }
        EXPECT_EQ(stats.torn_tails, 1u) << "cut " << cut;
        EXPECT_EQ(stats.torn_bytes, cut - last_record_start) << "cut " << cut;
        EXPECT_EQ(stats.crc_failures, 0u);
    }
}

TEST(Segment, CrcFailureSkipsRecordButKeepsScanning) {
    StoreDir dir;
    std::string path;
    {
        st::SegmentWriter writer(dir.path(), "t-");
        for (int i = 0; i < 5; ++i) writer.append(record(i));
        path = writer.active_path();
        writer.close();
    }
    // Flip the 4th payload byte of record 2: segment header, two full
    // framed records, then past record 2's own frame header.
    std::uint64_t corrupt_at = st::kSegmentHeaderBytes;
    for (int i = 0; i < 2; ++i) corrupt_at += st::kRecordHeaderBytes + record(i).size();
    corrupt_at += st::kRecordHeaderBytes + 3;

    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(corrupt_at));
    f.put('\xAA');
    f.close();

    st::ReplayStats stats;
    const auto records = collect_records(dir.path(), &stats);
    ASSERT_EQ(records.size(), 4u);
    EXPECT_EQ(stats.crc_failures, 1u);
    EXPECT_EQ(stats.torn_tails, 0u);
    EXPECT_EQ(records[0], record(0));
    EXPECT_EQ(records[1], record(1));
    EXPECT_EQ(records[2], record(3)) << "the corrupt record is skipped, not truncating replay";
    EXPECT_EQ(records[3], record(4));
}

TEST(Segment, ForeignAndGarbageFilesAreCountedNotFatal) {
    StoreDir dir;
    {
        st::SegmentWriter writer(dir.path(), "t-");
        writer.append(record(1));
        writer.close();
    }
    {
        std::ofstream garbage(fs::path(dir.path()) / "zzz-garbage.seg", std::ios::binary);
        garbage << "this is not a segment";
    }
    {
        std::ofstream other(fs::path(dir.path()) / "notes.txt");
        other << "ignored entirely";
    }
    st::ReplayStats stats;
    const auto records = collect_records(dir.path(), &stats);
    EXPECT_EQ(records.size(), 1u);
    EXPECT_EQ(stats.bad_segments, 1u);
    EXPECT_EQ(stats.segments, 1u);
}

TEST(Segment, MissingDirectoryIsEmptyReplay) {
    st::ReplayStats stats;
    const auto records = collect_records("/nonexistent/siren/segments", &stats);
    EXPECT_TRUE(records.empty());
    EXPECT_EQ(stats.segments, 0u);
    EXPECT_EQ(stats.bad_segments, 0u);
}

TEST(SegmentStore, MultiShardConcurrentAppendReplaysEverything) {
    StoreDir dir;
    constexpr std::size_t kShards = 4;
    constexpr int kPerShard = 500;
    {
        st::SegmentOptions options;
        options.max_segment_bytes = 8192;  // rotate plenty
        st::SegmentStore store(dir.path(), kShards, options);
        std::vector<std::thread> threads;
        for (std::size_t s = 0; s < kShards; ++s) {
            threads.emplace_back([&store, s] {
                for (int i = 0; i < kPerShard; ++i) {
                    store.append(s, "shard" + std::to_string(s) + "-" + std::to_string(i));
                }
            });
        }
        for (auto& t : threads) t.join();
        EXPECT_EQ(store.appended(), kShards * kPerShard);
        EXPECT_EQ(store.errors(), 0u);
        EXPECT_GT(store.segments_sealed(), 0u);

        std::size_t replayed = 0;
        store.replay([&](std::string_view) { ++replayed; });
        EXPECT_EQ(replayed, kShards * kPerShard);
        store.close();
    }
    // A fresh process (fresh store object) still sees everything on disk.
    EXPECT_EQ(collect_records(dir.path()).size(), kShards * kPerShard);
}

TEST(SegmentStore, CompactionRemovesOnlyMarkedSealedSegments) {
    StoreDir dir;
    st::SegmentOptions options;
    options.max_segment_bytes = 1024;
    st::SegmentStore store(dir.path(), 1, options);
    for (int i = 0; i < 100; ++i) store.append(0, record(i));
    store.sync_all();

    const auto sealed = store.sealed_segments();
    ASSERT_GE(sealed.size(), 2u);

    EXPECT_EQ(store.compact(), 0u) << "nothing marked yet, nothing removed";
    ASSERT_TRUE(fs::exists(sealed[0]));

    store.mark_consolidated(sealed[0]);
    EXPECT_EQ(store.compact(), 1u);
    EXPECT_FALSE(fs::exists(sealed[0]));
    EXPECT_TRUE(fs::exists(sealed[1]));
    EXPECT_EQ(store.segments_compacted(), 1u);

    // Replay now sees only the surviving segments' records.
    std::size_t remaining = 0;
    store.replay([&](std::string_view) { ++remaining; });
    EXPECT_LT(remaining, 100u);
    EXPECT_GT(remaining, 0u);
    store.close();
}

TEST(Segment, UnknownFutureRecordKindsAreSkippedAndCounted) {
    // Forward compatibility at the byte level: a newer writer tags frames
    // with a record kind this version does not understand; replay and
    // tailing must deliver every known record, count the foreign ones,
    // and never desynchronize the frame scan.
    StoreDir dir;
    std::string path;
    {
        st::SegmentWriter writer(dir.path(), "t-");
        writer.append(record(0));
        writer.append("future-payload-this-version-cannot-parse", /*kind=*/7);
        writer.append(record(1));
        path = writer.active_path();
        writer.close();
    }

    // The kind byte rides the top 8 bits of the little-endian frame word:
    // confirm the second record's frame carries it on disk, byte-exactly.
    {
        std::ifstream f(path, std::ios::binary);
        ASSERT_TRUE(f.is_open());
        std::string bytes((std::istreambuf_iterator<char>(f)),
                          std::istreambuf_iterator<char>());
        const std::size_t frame2 =
            st::kSegmentHeaderBytes + st::kRecordHeaderBytes + record(0).size();
        ASSERT_LT(frame2 + 4, bytes.size());
        EXPECT_EQ(static_cast<std::uint8_t>(bytes[frame2 + 3]), 7u)
            << "kind byte must sit above the 24-bit length";
        EXPECT_EQ(static_cast<std::uint8_t>(bytes[frame2 + 0]), 40u)
            << "payload length stays in the low 24 bits";
    }

    st::ReplayStats stats;
    const auto records = collect_records(dir.path(), &stats);
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0], record(0));
    EXPECT_EQ(records[1], record(1)) << "scan resynchronizes past the foreign record";
    EXPECT_EQ(stats.unknown_kinds, 1u);
    EXPECT_EQ(stats.crc_failures, 0u);
    EXPECT_EQ(stats.torn_tails, 0u);
}

TEST(Segment, UnknownKindPatchedIntoExistingFrameStillSkips) {
    // The same property driven purely by byte surgery: take a normal
    // segment and flip one frame's kind byte to a future value, the way a
    // replica would see it after a partial fleet upgrade.
    StoreDir dir;
    std::string path;
    {
        st::SegmentWriter writer(dir.path(), "t-");
        for (int i = 0; i < 3; ++i) writer.append(record(i));
        path = writer.active_path();
        writer.close();
    }
    const std::size_t frame1 =
        st::kSegmentHeaderBytes + st::kRecordHeaderBytes + record(0).size();
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(frame1 + 3));
    f.put('\xFE');
    f.close();

    st::ReplayStats stats;
    const auto records = collect_records(dir.path(), &stats);
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0], record(0));
    EXPECT_EQ(records[1], record(2));
    EXPECT_EQ(stats.unknown_kinds, 1u);
}

TEST(SegmentTailForwardCompat, TailSkipsAndCountsUnknownKinds) {
    StoreDir dir;
    st::SegmentWriter writer(dir.path(), "t-");
    writer.append(record(0));
    writer.append("kind-nine-payload", /*kind=*/9);
    writer.append(record(1));
    writer.sync();

    siren::serve::SegmentTail tail(dir.path());
    std::vector<std::string> seen;
    tail.poll([&](std::string_view r) { seen.emplace_back(r); });
    ASSERT_EQ(seen.size(), 2u);
    EXPECT_EQ(seen[0], record(0));
    EXPECT_EQ(seen[1], record(1));
    EXPECT_EQ(tail.stats().unknown_kinds, 1u);

    // The offset watermark advanced past the foreign record: appending
    // more raw records delivers only the new ones on the next poll.
    writer.append(record(2));
    writer.sync();
    seen.clear();
    tail.poll([&](std::string_view r) { seen.emplace_back(r); });
    ASSERT_EQ(seen.size(), 1u);
    EXPECT_EQ(seen[0], record(2));
    EXPECT_EQ(tail.stats().unknown_kinds, 1u);
}

// --- Degraded-path behavior under injected disk faults --------------------
//
// These drive the storage.segment.* failpoints (docs/robustness.md) and so
// need a -DSIREN_FAILPOINTS=ON build; they skip elsewhere. Each test arms
// its points through a fixture that clears the global registry afterwards,
// so a failed assertion cannot leak faults into unrelated tests.

namespace fp = siren::util::failpoint;

class SegmentFailpoints : public ::testing::Test {
protected:
    void SetUp() override {
        if (!fp::compiled_in()) {
            GTEST_SKIP() << "build with -DSIREN_FAILPOINTS=ON for fault injection";
        }
        fp::clear();
    }
    void TearDown() override { fp::clear(); }

    /// buffer_bytes=1 makes every append flush immediately, so an injected
    /// write failure surfaces in that append's own return value instead of
    /// a later sync's.
    static st::SegmentOptions unbuffered() {
        st::SegmentOptions options;
        options.buffer_bytes = 1;
        return options;
    }
};

TEST_F(SegmentFailpoints, WriteFailureAbandonsSegmentAndKeepsPriorRecords) {
    StoreDir dir;
    st::SegmentWriter writer(dir.path(), "t-", unbuffered());
    for (int i = 0; i < 3; ++i) ASSERT_TRUE(writer.append(record(i)));

    fp::activate("storage.segment.write", "error(28)");  // ENOSPC
    EXPECT_FALSE(writer.append(record(3))) << "a dropped record must not report journaled";
    EXPECT_GE(writer.errors(), 1u);
    EXPECT_TRUE(writer.active_path().empty()) << "the damaged segment is abandoned";
    EXPECT_EQ(writer.unsynced_bytes(), 0u)
        << "dropped bytes are lost (counted), not reported as durability lag";

    // Disk recovers: the next append opens a fresh segment next to the
    // abandoned one, and replay sees everything that was acknowledged.
    fp::clear();
    ASSERT_TRUE(writer.append(record(4)));
    writer.sync();

    st::ReplayStats stats;
    const auto records = collect_records(dir.path(), &stats);
    ASSERT_EQ(records.size(), 4u);
    EXPECT_EQ(records[0], record(0));
    EXPECT_EQ(records[2], record(2));
    EXPECT_EQ(records[3], record(4)) << "the dropped record is gone, later ones survive";
    EXPECT_EQ(stats.segments, 2u);
}

TEST_F(SegmentFailpoints, ShortWriteLeavesTornTailReplayRecovers) {
    StoreDir dir;
    st::SegmentWriter writer(dir.path(), "t-", unbuffered());
    ASSERT_TRUE(writer.append(record(0)));
    ASSERT_TRUE(writer.append(record(1)));

    // A prefix of the frame lands on disk before the failure — the same
    // truncation a crash between two write()s leaves behind.
    fp::activate("storage.segment.write", "short-write");
    EXPECT_FALSE(writer.append(record(2)));
    fp::clear();
    ASSERT_TRUE(writer.append(record(3)));
    writer.sync();

    st::ReplayStats stats;
    const auto records = collect_records(dir.path(), &stats);
    ASSERT_EQ(records.size(), 3u);
    EXPECT_EQ(records[1], record(1));
    EXPECT_EQ(records[2], record(3));
    EXPECT_EQ(stats.torn_tails, 1u) << "the truncated frame is a torn tail, not corruption";
    EXPECT_GT(stats.torn_bytes, 0u);
}

TEST_F(SegmentFailpoints, FsyncFailureKeepsDurabilityLagVisible) {
    StoreDir dir;
    st::SegmentWriter writer(dir.path(), "t-");
    ASSERT_TRUE(writer.append(record(0)));

    fp::activate("storage.segment.fsync", "error(5)");  // EIO
    writer.sync();
    EXPECT_GE(writer.errors(), 1u);
    EXPECT_EQ(writer.syncs(), 0u);
    EXPECT_GT(writer.unsynced_bytes(), 0u)
        << "a failed fsync must leave the lag visible, not silently clear it";

    fp::clear();
    writer.sync();
    EXPECT_EQ(writer.syncs(), 1u);
    EXPECT_EQ(writer.unsynced_bytes(), 0u) << "retry succeeds once the disk recovers";
}

TEST_F(SegmentFailpoints, CorruptedPayloadIsCaughtByReplayCrc) {
    StoreDir dir;
    st::SegmentWriter writer(dir.path(), "t-");
    // Bit rot on every second record, injected after the CRC was framed.
    fp::activate("storage.segment.corrupt", "corrupt-byte%2");
    for (int i = 0; i < 4; ++i) ASSERT_TRUE(writer.append(record(i)));
    fp::clear();
    writer.sync();

    st::ReplayStats stats;
    const auto records = collect_records(dir.path(), &stats);
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0], record(0));
    EXPECT_EQ(records[1], record(2));
    EXPECT_EQ(stats.crc_failures, 2u) << "framing survives, the checksum convicts the bytes";
}
