// Behavioral fingerprint channel: shapelet digests of runtime counter
// traces, channel separation from content digests, registry fusion with
// per-channel provenance, TS_H wire/journal plumbing, and the serving
// layer's OBSERVETS / IDENTIFYTS / IDENTIFY2 verbs — including the
// headline scenario the channel exists for: a renamed/recompiled binary
// whose content digest mutated past match range is still recognized
// through its counter trace.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "behavior/shapelet.hpp"
#include "fuzzy/fuzzy.hpp"
#include "net/codec.hpp"
#include "net/message.hpp"
#include "recognize/recognize.hpp"
#include "serve/serve.hpp"
#include "sim/traces.hpp"
#include "storage/segment_store.hpp"
#include "util/base64.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace fs = std::filesystem;
namespace sb = siren::behavior;
namespace sf = siren::fuzzy;
namespace sr = siren::recognize;
namespace sv = siren::serve;

namespace {

/// Unique scratch directory, removed on scope exit.
class ScratchDir {
public:
    explicit ScratchDir(const std::string& tag) {
        static std::atomic<int> counter{0};
        path_ = (fs::temp_directory_path() /
                 ("siren_behavior_" + tag + "_" + std::to_string(::getpid()) + "_" +
                  std::to_string(counter.fetch_add(1))))
                    .string();
        fs::remove_all(path_);
        fs::create_directories(path_);
    }
    ~ScratchDir() {
        std::error_code ec;
        fs::remove_all(path_, ec);
    }
    std::string sub(const std::string& name) const { return path_ + "/" + name; }

private:
    std::string path_;
};

/// One run of the synthetic workload `family`: same lineage (same phase
/// structure), per-run noise from `run_seed`.
std::vector<double> family_trace(std::size_t family, std::uint64_t run_seed,
                                 std::size_t samples = 256) {
    siren::sim::TraceRecipe recipe;
    recipe.lineage = "app/" + std::to_string(family);
    recipe.samples = samples;
    recipe.run_seed = run_seed;
    return siren::sim::synthesize_trace(recipe);
}

/// A content-channel digest with random base64 parts on the spamsum
/// block-size ladder (3 * 2^k) — the shape the content index holds.
sf::FuzzyDigest random_content_digest(siren::util::Rng& rng) {
    sf::FuzzyDigest d;
    d.block_size = 1536 << rng.index(3);
    for (std::size_t i = 0; i < 48 + rng.index(16); ++i) {
        d.digest1 += siren::util::kBase64Alphabet[rng.index(64)];
    }
    for (std::size_t i = 0; i < 24 + rng.index(8); ++i) {
        d.digest2 += siren::util::kBase64Alphabet[rng.index(64)];
    }
    return d;
}

sf::FuzzyDigest mutate(siren::util::Rng& rng, sf::FuzzyDigest d, std::size_t edits) {
    for (std::size_t e = 0; e < edits; ++e) {
        std::string& part = rng.below(3) == 0 ? d.digest2 : d.digest1;
        part[rng.index(part.size())] = siren::util::kBase64Alphabet[rng.index(64)];
    }
    return d;
}

/// The wire datagram a trace collector journals for one TS_H sighting.
std::string ts_hash_datagram(const sf::FuzzyDigest& digest, std::uint64_t job = 9) {
    siren::net::Message m;
    m.job_id = job;
    m.pid = 5151;
    m.exe_hash = "00112233445566778899aabbccddeeff";
    m.host = "nid000012";
    m.time = 1753660800;
    m.type = siren::net::MsgType::kTimeSeriesHash;
    m.content = digest.to_string();
    return siren::net::encode(m);
}

sv::ServeOptions fast_options() {
    sv::ServeOptions options;
    options.feed_poll = std::chrono::milliseconds(2);
    options.writer_idle = std::chrono::milliseconds(2);
    options.checkpoint_interval = std::chrono::milliseconds(0);
    return options;
}

}  // namespace

// ---------------------------------------------------------------------------
// Shapelet digests

TEST(Shapelet, DeterministicAndBlockSizeLadder) {
    const auto trace = family_trace(0, 1);
    const auto a = sb::shapelet_digest(trace);
    const auto b = sb::shapelet_digest(trace);
    EXPECT_EQ(a.to_string(), b.to_string()) << "same samples must digest identically";

    // 256 samples -> window 4 -> block_size 4 * 64; doubling the trace
    // length moves exactly one rung up the ladder.
    EXPECT_EQ(a.block_size, 4 * sb::kBlockScale);
    EXPECT_EQ(sb::shapelet_digest(family_trace(0, 1, 512)).block_size, 8 * sb::kBlockScale);

    // Both parts stay within the compare stack's length assumptions and
    // the 16-symbol alphabet.
    EXPECT_LE(a.digest1.size(), sf::kSpamsumLength);
    EXPECT_LE(a.digest2.size(), sf::kSpamsumLength);
    for (const char c : a.digest1 + a.digest2) {
        EXPECT_GE(c, 'A');
        EXPECT_LT(c, static_cast<char>('A' + sb::kAlphabet));
    }

    EXPECT_THROW(sb::shapelet_digest(std::vector<double>(sb::kMinTraceSamples - 1, 1.0)),
                 siren::util::Error)
        << "below kMinTraceSamples is a loud error, not a junk digest";
}

TEST(Shapelet, FlatTraceHasNoShape) {
    // An idle counter (constant trace) z-normalizes to nothing; the digest
    // must still be well-formed and must match other flat traces exactly,
    // not structured ones.
    const std::vector<double> flat(256, 3.25);
    const std::vector<double> flat2(256, 99.0);
    const auto fd = sb::shapelet_digest(flat);
    EXPECT_EQ(fd.to_string(), sb::shapelet_digest(flat2).to_string())
        << "shape, not magnitude: every flat trace is the same shape";
    EXPECT_EQ(sf::compare(fd, sb::shapelet_digest(family_trace(1, 1))), 0);
}

TEST(Shapelet, ParseTrace) {
    const auto samples = sb::parse_trace("1.5 2,3\n4.25\t-1e2  ");
    ASSERT_EQ(samples.size(), 5u);
    EXPECT_DOUBLE_EQ(samples[0], 1.5);
    EXPECT_DOUBLE_EQ(samples[4], -100.0);
    EXPECT_TRUE(sb::parse_trace("").empty());
    EXPECT_THROW(sb::parse_trace("1.5 bogus 2"), siren::util::ParseError);
}

TEST(Shapelet, RerunNoiseInvariance) {
    // Two runs of the same binary differ only by sampling noise; the
    // digests must stay above the registry's default match threshold —
    // otherwise every rerun would found a new family.
    const int threshold = sr::RegistryOptions{}.match_threshold;
    for (std::size_t fam = 0; fam < 50; ++fam) {
        const auto first = sb::shapelet_digest(family_trace(fam, 1));
        const auto rerun = sb::shapelet_digest(family_trace(fam, 2));
        EXPECT_GE(sf::compare(first, rerun), threshold) << "family " << fam;
    }
}

TEST(Shapelet, CrossFamilyDiscrimination) {
    // Distinct workloads must (almost) never clear the match threshold
    // against each other, or the behavior channel would merge families.
    // z-normalized phase plateaus do give unrelated traces occasional
    // shared 7-grams, so a tiny above-threshold tail is tolerated.
    const int threshold = sr::RegistryOptions{}.match_threshold;
    constexpr std::size_t kFamilies = 50;
    std::vector<sf::FuzzyDigest> digests;
    for (std::size_t fam = 0; fam < kFamilies; ++fam) {
        digests.push_back(sb::shapelet_digest(family_trace(fam, 1)));
    }
    std::size_t above = 0;
    for (std::size_t i = 0; i < kFamilies; ++i) {
        for (std::size_t j = i + 1; j < kFamilies; ++j) {
            if (sf::compare(digests[i], digests[j]) >= threshold) ++above;
        }
    }
    EXPECT_LE(above, 3u) << "cross-family matches above threshold out of "
                         << kFamilies * (kFamilies - 1) / 2 << " pairs";
}

TEST(Shapelet, ChannelSeparationFromContentDigests) {
    siren::util::Rng rng(17);
    const auto behavior = sb::shapelet_digest(family_trace(3, 1));
    EXPECT_TRUE(sb::is_behavior_digest(behavior));

    for (int i = 0; i < 20; ++i) {
        const auto content = random_content_digest(rng);
        EXPECT_FALSE(sb::is_behavior_digest(content)) << content.to_string();
        // Block-size labeling (64 * 2^j vs 3 * 2^k) makes cross-channel
        // scores structurally impossible, not just unlikely.
        EXPECT_EQ(sf::compare(behavior, content), 0);
    }
}

// ---------------------------------------------------------------------------
// TS_H on the wire

TEST(WireTimeSeriesHash, RoundTrip) {
    const auto digest = sb::shapelet_digest(family_trace(5, 1));
    const std::string encoded = ts_hash_datagram(digest, 1234);
    const auto decoded = siren::net::decode(encoded);
    EXPECT_EQ(decoded.type, siren::net::MsgType::kTimeSeriesHash);
    EXPECT_EQ(decoded.job_id, 1234u);
    EXPECT_EQ(decoded.content, digest.to_string());
    EXPECT_EQ(sf::FuzzyDigest::parse(decoded.content).to_string(), digest.to_string());
}

// ---------------------------------------------------------------------------
// Registry fusion

TEST(RegistryFusion, RenamedRecompiledBinaryRecoveredThroughBehavior) {
    // The channel's reason to exist: the binary was recompiled (content
    // digest mutated far past match range) and renamed (no usable hint),
    // but its runtime counter trace is a fresh run of the same solver.
    siren::util::Rng rng(23);
    sr::Registry registry;

    const auto content = random_content_digest(rng);
    registry.observe(content, "lammps");
    // The trace collector attaches the behavioral signature by label.
    registry.observe_behavior(sb::shapelet_digest(family_trace(7, 1)), "lammps");
    ASSERT_EQ(registry.family_count(), 1u);
    EXPECT_EQ(registry.content_digest_count(), 1u);
    EXPECT_EQ(registry.behavior_digest_count(), 1u);
    EXPECT_EQ(registry.fused_family_count(), 1u);

    const auto mutated = mutate(rng, content, 40);
    const auto rerun = sb::shapelet_digest(family_trace(7, 2));
    EXPECT_FALSE(registry.best_match(mutated).has_value())
        << "content channel alone must have lost the binary";

    const auto behavioral = registry.best_match_behavior(rerun);
    ASSERT_TRUE(behavioral.has_value());
    EXPECT_EQ(registry.family(behavioral->family).name, "lammps");

    const auto fused = registry.top_families_fused(&mutated, &rerun, 3);
    ASSERT_FALSE(fused.empty());
    EXPECT_EQ(registry.family(fused.front().family).name, "lammps");
    EXPECT_EQ(fused.front().content_score, 0) << "provenance: content had no match";
    EXPECT_GE(fused.front().behavior_score, sr::RegistryOptions{}.match_threshold);
}

TEST(RegistryFusion, WeightedCombinerAndPassThrough) {
    siren::util::Rng rng(29);
    const sr::RegistryOptions options;
    sr::Registry registry(options);

    const auto content = random_content_digest(rng);
    registry.observe(content, "icon");
    registry.observe_behavior(sb::shapelet_digest(family_trace(11, 1)), "icon");

    const auto content_probe = mutate(rng, content, 4);
    const auto behavior_probe = sb::shapelet_digest(family_trace(11, 2));

    // Single-probe calls are pass-throughs of the channel's own ranking.
    const auto content_only = registry.top_families_fused(&content_probe, nullptr, 1);
    ASSERT_EQ(content_only.size(), 1u);
    EXPECT_EQ(content_only.front().score, content_only.front().content_score);
    EXPECT_EQ(content_only.front().behavior_score, 0);

    const auto behavior_only = registry.top_families_fused(nullptr, &behavior_probe, 1);
    ASSERT_EQ(behavior_only.size(), 1u);
    EXPECT_EQ(behavior_only.front().score, behavior_only.front().behavior_score);

    // Both probes: the documented integer formula, bit-exact.
    const auto fused = registry.top_families_fused(&content_probe, &behavior_probe, 1);
    ASSERT_EQ(fused.size(), 1u);
    const auto& m = fused.front();
    EXPECT_GT(m.content_score, 0);
    EXPECT_GT(m.behavior_score, 0);
    EXPECT_EQ(m.score, (options.content_weight * m.content_score +
                        options.behavior_weight * m.behavior_score) /
                           (options.content_weight + options.behavior_weight));

    // Determinism: the same probes rank identically on every call.
    const auto again = registry.top_families_fused(&content_probe, &behavior_probe, 1);
    ASSERT_EQ(again.size(), 1u);
    EXPECT_EQ(again.front().family, m.family);
    EXPECT_EQ(again.front().score, m.score);
}

TEST(RegistryFusion, SaveLoadAndFingerprintCoverBehaviorChannel) {
    siren::util::Rng rng(31);
    sr::Registry registry;
    registry.observe(random_content_digest(rng), "gromacs");
    const std::uint64_t content_only_fp = registry.fingerprint();

    const auto shapelet = sb::shapelet_digest(family_trace(13, 1));
    registry.observe_behavior(shapelet, "gromacs");
    EXPECT_NE(registry.fingerprint(), content_only_fp)
        << "fingerprint must cover behavioral records, or replicas could "
           "diverge on the behavior channel undetected";

    std::stringstream saved;
    registry.save(saved);
    EXPECT_NE(saved.str().find("bexemplar"), std::string::npos) << saved.str();

    const auto loaded = sr::Registry::load(saved);
    EXPECT_EQ(loaded.fingerprint(), registry.fingerprint());
    const auto match = loaded.best_match_behavior(sb::shapelet_digest(family_trace(13, 2)));
    ASSERT_TRUE(match.has_value());
    EXPECT_EQ(loaded.family(match->family).name, "gromacs");
}

// ---------------------------------------------------------------------------
// Serving layer

TEST(ServeBehavior, FeedsTimeSeriesHashesFromSegments) {
    // A trace collector journals TS_H datagrams next to the ingest
    // daemon's FILE_H stream; the service feeds both into the right
    // channels of one registry.
    ScratchDir dir("feed");
    const auto segments = dir.sub("segments");
    siren::storage::SegmentStore store(segments, 1);

    auto options = fast_options();
    options.segments_dir = segments;
    sv::RecognitionService service(options);

    const auto shapelet = sb::shapelet_digest(family_trace(17, 1));
    store.append(0, ts_hash_datagram(shapelet));
    store.sync_all();
    service.flush();

    EXPECT_EQ(service.counters().feed_ts_hashes, 1u);
    const auto match = service.identify_behavior(sb::shapelet_digest(family_trace(17, 2)));
    ASSERT_TRUE(match.has_value());
    EXPECT_EQ(service.snapshot()->registry.behavior_digest_count(), 1u);
}

TEST(ServeBehavior, WalJournalsBehavioralObservesForReplay) {
    // Leader mode: a TCP-fed behavioral observe is journaled as a TS_H
    // datagram, so a restarted leader (or a follower shipping the WAL)
    // rebuilds the behavior channel from segments alone.
    ScratchDir dir("wal");
    const auto segments = dir.sub("segments");
    std::uint64_t fingerprint = 0;
    {
        auto options = fast_options();
        options.segments_dir = segments;
        options.replication.observe_wal = true;
        options.replication.wal_fsync = false;
        sv::RecognitionService leader(options);
        const auto applied =
            leader.observe_behavior_sync(sb::shapelet_digest(family_trace(19, 1)), "vasp");
        EXPECT_TRUE(applied.new_family);
        EXPECT_EQ(applied.name, "vasp");
        leader.flush();
        fingerprint = leader.snapshot()->fingerprint();
        leader.stop();
    }

    auto options = fast_options();
    options.segments_dir = segments;
    sv::RecognitionService replayed(options);
    replayed.flush();
    EXPECT_EQ(replayed.snapshot()->fingerprint(), fingerprint)
        << "replaying the WAL must converge to the leader's exact state";
    const auto match = replayed.identify_behavior(sb::shapelet_digest(family_trace(19, 2)));
    ASSERT_TRUE(match.has_value());
    EXPECT_EQ(match->name, "vasp");
}

TEST(ServeBehavior, QueryVerbsEndToEndOverTcp) {
    sv::RecognitionService service(fast_options());
    sv::QueryServer server(service);
    ASSERT_NE(server.port(), 0);
    sv::QueryClient client("127.0.0.1", server.port());

    siren::util::Rng rng(37);
    const auto content = random_content_digest(rng);
    const auto shapelet = sb::shapelet_digest(family_trace(23, 1));
    const auto rerun_str = sb::shapelet_digest(family_trace(23, 2)).to_string();

    client.observe(content.to_string(), "namd");
    const auto observed = client.observe_behavior(shapelet.to_string(), "namd");
    EXPECT_EQ(observed.name, "namd");
    EXPECT_FALSE(observed.new_family) << "hint attaches the trace to the content family";

    const auto behavioral = client.identify_behavior(rerun_str);
    ASSERT_TRUE(behavioral.has_value());
    EXPECT_EQ(behavioral->name, "namd");

    // Fused identify with both channels; "-" semantics are the CLI's, the
    // client API takes empty for an absent channel.
    const auto mutated = mutate(rng, content, 4).to_string();
    const auto fused = client.identify_fused(mutated, rerun_str, 3);
    ASSERT_FALSE(fused.empty());
    EXPECT_EQ(fused.front().name, "namd");
    EXPECT_GT(fused.front().content_score, 0);
    EXPECT_GT(fused.front().behavior_score, 0);

    const auto behavior_only = client.identify_fused({}, rerun_str, 3);
    ASSERT_FALSE(behavior_only.empty());
    EXPECT_EQ(behavior_only.front().content_score, 0);

    // STATS surfaces per-channel registry sizes and per-verb counters.
    const auto stats = client.stats_text();
    EXPECT_NE(stats.find("content_digests 1\n"), std::string::npos) << stats;
    EXPECT_NE(stats.find("behavior_digests 1\n"), std::string::npos) << stats;
    EXPECT_NE(stats.find("fused_families 1\n"), std::string::npos) << stats;
    EXPECT_NE(stats.find("verb_identifyts 1\n"), std::string::npos) << stats;
    EXPECT_NE(stats.find("verb_identify2 2\n"), std::string::npos) << stats;
    EXPECT_NE(stats.find("verb_observets 1\n"), std::string::npos) << stats;

    server.stop();
}

TEST(ServeBehavior, ProtocolErrorsAndReadOnlyRejection) {
    auto options = fast_options();
    sv::RecognitionService service(options);
    const auto shapelet_str = sb::shapelet_digest(family_trace(29, 1)).to_string();

    EXPECT_TRUE(sv::execute_query(service, "IDENTIFYTS").starts_with("ERR"));
    EXPECT_TRUE(sv::execute_query(service, "IDENTIFYTS not-a-digest").starts_with("ERR"));
    EXPECT_TRUE(sv::execute_query(service, "IDENTIFY2").starts_with("ERR"))
        << "IDENTIFY2 with neither channel is a usage error";
    EXPECT_TRUE(sv::execute_query(service, "IDENTIFY2 X " + shapelet_str).starts_with("ERR"));
    EXPECT_EQ(sv::execute_query(service, "IDENTIFYTS " + shapelet_str), "UNKNOWN");

    // Followers serve behavioral queries but reject behavioral observes,
    // exactly like OBSERVE — route writes to the leader.
    auto follower_options = fast_options();
    follower_options.replication.read_only = true;
    sv::RecognitionService follower(follower_options);
    const auto rejected =
        sv::execute_query(follower, "OBSERVETS " + shapelet_str + " label");
    EXPECT_TRUE(rejected.starts_with("ERR")) << rejected;
    EXPECT_NE(rejected.find("read-only"), std::string::npos) << rejected;
    EXPECT_EQ(sv::execute_query(follower, "IDENTIFYTS " + shapelet_str), "UNKNOWN")
        << "read-only rejects writes, not behavioral reads";
}
