// File-spool transport (the XALT-style baseline of paper §5): datagram ->
// file round trips, sweep semantics, graceful failure on unwritable spools.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "net/codec.hpp"
#include "net/file_spool.hpp"

namespace sn = siren::net;
namespace fs = std::filesystem;

namespace {

sn::Message sample_message(int pid = 7) {
    sn::Message m;
    m.job_id = 99;
    m.pid = pid;
    m.exe_hash = "beef";
    m.host = "nid000001";
    m.time = 1733900000;
    m.type = sn::MsgType::kIds;
    m.content = "pid=7 exe=/usr/bin/true";
    return m;
}

class SpoolDir {
public:
    SpoolDir() {
        path_ = (fs::temp_directory_path() /
                 ("siren_spool_" + std::to_string(::getpid()) + "_" +
                  std::to_string(counter_++)))
                    .string();
        fs::remove_all(path_);
    }
    ~SpoolDir() {
        std::error_code ec;
        fs::remove_all(path_, ec);
    }
    const std::string& path() const { return path_; }

private:
    static inline int counter_ = 0;
    std::string path_;
};

}  // namespace

TEST(FileSpool, RoundTripThroughFiles) {
    SpoolDir dir;
    sn::FileSpoolSender sender(dir.path());
    for (int i = 0; i < 20; ++i) sender.send(sn::encode(sample_message(i)));
    EXPECT_EQ(sender.sent(), 20u);
    EXPECT_EQ(sender.errors(), 0u);

    sn::MessageQueue queue(64);
    const auto stats = sn::drain_spool(dir.path(), queue);
    EXPECT_EQ(stats.files_seen, 20u);
    EXPECT_EQ(stats.delivered, 20u);
    EXPECT_EQ(stats.malformed, 0u);
    EXPECT_EQ(queue.size(), 20u);

    const auto first = queue.pop();
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(first->pid, 0) << "name ordering preserves the send sequence";
    EXPECT_EQ(first->content, "pid=7 exe=/usr/bin/true");
}

TEST(FileSpool, DrainConsumesFiles) {
    SpoolDir dir;
    sn::FileSpoolSender sender(dir.path());
    sender.send(sn::encode(sample_message()));

    sn::MessageQueue queue(8);
    sn::drain_spool(dir.path(), queue);
    const auto second = sn::drain_spool(dir.path(), queue);
    EXPECT_EQ(second.files_seen, 0u) << "a sweep must delete what it consumed";
    EXPECT_EQ(queue.size(), 1u);
}

TEST(FileSpool, OneFilePerDatagram) {
    // The design's defining cost: N datagrams = N filesystem entries (the
    // paper's "aggregating excessive amounts of small files").
    SpoolDir dir;
    sn::FileSpoolSender sender(dir.path());
    for (int i = 0; i < 37; ++i) sender.send(sn::encode(sample_message(i)));

    std::size_t files = 0;
    for (const auto& e : fs::directory_iterator(dir.path())) {
        if (e.is_regular_file()) ++files;
    }
    EXPECT_EQ(files, 37u);
}

TEST(FileSpool, UnwritableSpoolFailsGracefully) {
    // Spool path points at a *file*, so no datagram can ever be written;
    // the hooked process must see counted errors, not exceptions.
    SpoolDir dir;
    fs::create_directories(dir.path());
    const std::string blocked = dir.path() + "/blocked";
    { std::ofstream f(blocked); }

    sn::FileSpoolSender sender(blocked + "/sub");
    EXPECT_NO_THROW(sender.send(sn::encode(sample_message())));
    EXPECT_EQ(sender.sent(), 0u);
    EXPECT_EQ(sender.errors(), 1u);
}

TEST(FileSpool, MalformedFilesCountedAndRemoved) {
    SpoolDir dir;
    sn::FileSpoolSender sender(dir.path());
    sender.send(sn::encode(sample_message()));
    {
        std::ofstream bad(fs::path(dir.path()) / "0-1.msg.tmp");  // foreign extension: ignored
        bad << "not a SIREN datagram";
    }
    {
        std::ofstream bad(fs::path(dir.path()) / "999-1.msg");
        bad << "not a SIREN datagram";
    }

    sn::MessageQueue queue(8);
    const auto stats = sn::drain_spool(dir.path(), queue);
    EXPECT_EQ(stats.delivered, 1u);
    EXPECT_EQ(stats.malformed, 1u);
    EXPECT_EQ(queue.size(), 1u);
    // Malformed spool files must not survive to poison every later sweep.
    EXPECT_FALSE(fs::exists(fs::path(dir.path()) / "999-1.msg"));
}

TEST(FileSpool, MissingSpoolIsEmptySweep) {
    sn::MessageQueue queue(8);
    const auto stats = sn::drain_spool("/nonexistent/siren/spool", queue);
    EXPECT_EQ(stats.files_seen, 0u);
    EXPECT_EQ(queue.size(), 0u);
}

TEST(FileSpool, TempFilesInvisibleToDrain) {
    SpoolDir dir;
    fs::create_directories(dir.path());
    {
        std::ofstream partial(fs::path(dir.path()) / ".5-123.msg");  // mid-write temp
        partial << "half a datagr";
    }
    sn::MessageQueue queue(8);
    const auto stats = sn::drain_spool(dir.path(), queue);
    EXPECT_EQ(stats.files_seen, 0u) << "dot-temp files are another sender's in-flight write";
}

TEST(FileSpool, ConcurrentSendersProduceDistinctFiles) {
    SpoolDir dir;
    sn::FileSpoolSender sender(dir.path());
    std::vector<std::thread> workers;
    for (int t = 0; t < 4; ++t) {
        workers.emplace_back([&sender, t] {
            for (int i = 0; i < 50; ++i) sender.send(sn::encode(sample_message(t * 100 + i)));
        });
    }
    for (auto& w : workers) w.join();
    EXPECT_EQ(sender.sent(), 200u);
    EXPECT_EQ(sender.errors(), 0u);

    sn::MessageQueue queue(512);
    const auto stats = sn::drain_spool(dir.path(), queue);
    EXPECT_EQ(stats.delivered, 200u) << "atomic seq numbers prevent filename collisions";
}

TEST(FileSpool, QueueFullCountsDropped) {
    SpoolDir dir;
    sn::FileSpoolSender sender(dir.path());
    for (int i = 0; i < 10; ++i) sender.send(sn::encode(sample_message(i)));

    sn::MessageQueue queue(4);  // deliberately too small
    const auto stats = sn::drain_spool(dir.path(), queue);
    EXPECT_EQ(stats.delivered, 4u);
    EXPECT_EQ(stats.dropped, 6u);
}
