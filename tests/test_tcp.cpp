// TCP transport baseline: framed round trips, failure coupling (the
// behaviour UDP's fire-and-forget deliberately avoids).

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "net/codec.hpp"
#include "net/tcp.hpp"
#include "util/error.hpp"

namespace sn = siren::net;

namespace {

sn::Message sample_message(int pid = 7) {
    sn::Message m;
    m.job_id = 99;
    m.pid = pid;
    m.exe_hash = "beef";
    m.host = "nid000001";
    m.time = 1733900000;
    m.type = sn::MsgType::kIds;
    m.content = "pid=7 exe=/usr/bin/true";
    return m;
}

void wait_for(sn::MessageQueue& queue, std::size_t n) {
    for (int spin = 0; spin < 200 && queue.size() < n; ++spin) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
}

}  // namespace

TEST(Tcp, LoopbackRoundTrip) {
    sn::MessageQueue queue(1024);
    sn::TcpReceiver receiver(queue, 0);
    ASSERT_GT(receiver.port(), 0);

    {
        sn::TcpSender sender("127.0.0.1", receiver.port());
        for (int i = 0; i < 100; ++i) sender.send(sn::encode(sample_message(i)));
        EXPECT_EQ(sender.sent(), 100u);
        EXPECT_EQ(sender.errors(), 0u);
        wait_for(queue, 100);
    }
    receiver.stop();

    EXPECT_EQ(queue.size(), 100u);
    const auto first = queue.pop();
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(first->pid, 0);
    EXPECT_EQ(first->content, "pid=7 exe=/usr/bin/true");
}

TEST(Tcp, MultipleSendersOneReceiver) {
    sn::MessageQueue queue(4096);
    sn::TcpReceiver receiver(queue, 0);

    std::vector<std::thread> senders;
    for (int t = 0; t < 4; ++t) {
        senders.emplace_back([&receiver, t] {
            sn::TcpSender sender("127.0.0.1", receiver.port());
            for (int i = 0; i < 50; ++i) sender.send(sn::encode(sample_message(t * 100 + i)));
        });
    }
    for (auto& s : senders) s.join();
    wait_for(queue, 200);
    receiver.stop();
    EXPECT_EQ(queue.size(), 200u);
}

TEST(Tcp, ConnectionRefusedThrowsAtConstruction) {
    // The failure coupling the paper's UDP choice avoids: a TCP collector
    // cannot even start when the receiver is down.
    EXPECT_THROW(sn::TcpSender("127.0.0.1", 1), siren::util::SystemError);
}

TEST(Tcp, SenderSurvivesReceiverDeath) {
    sn::MessageQueue queue(64);
    auto receiver = std::make_unique<sn::TcpReceiver>(queue, 0);
    sn::TcpSender sender("127.0.0.1", receiver->port());
    sender.send(sn::encode(sample_message()));
    wait_for(queue, 1);

    receiver.reset();  // receiver goes away mid-session

    // Sends must not throw or hang; eventually they count as errors (the
    // first few may land in kernel buffers).
    for (int i = 0; i < 64; ++i) sender.send(sn::encode(sample_message(i)));
    SUCCEED();
}

TEST(Tcp, StopReturnsPromptlyWithIdleConnection) {
    // Regression: shutdown must not depend on SO_RCVTIMEO (sandboxed
    // kernels ignore it and recv()/accept() then block forever). A
    // connected-but-silent client is the worst case: the reader thread is
    // parked waiting for a frame header when stop() is called.
    sn::MessageQueue queue(64);
    auto receiver = std::make_unique<sn::TcpReceiver>(queue, 0);
    sn::TcpSender idle("127.0.0.1", receiver->port());
    std::this_thread::sleep_for(std::chrono::milliseconds(100));  // let accept land

    const auto start = std::chrono::steady_clock::now();
    receiver->stop();
    const auto elapsed = std::chrono::steady_clock::now() - start;
    EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(), 2000)
        << "stop() must interrupt idle readers within a few poll slices";
}

TEST(Tcp, StopInterruptsAStalledFrame) {
    // A peer that sends a frame header and then goes silent parks the
    // reader mid-read_all; stop() must still come back.
    sn::MessageQueue queue(64);
    sn::TcpReceiver receiver(queue, 0);
    sn::TcpSender sender("127.0.0.1", receiver.port());
    // Hand-craft a partial frame: length prefix promising 100 bytes, none sent.
    // TcpSender::send always writes whole frames, so talk to the socket
    // through a second sender's framing by sending a truncated datagram via
    // raw length abuse: encode a full message, then a bare header.
    sender.send(sn::encode(sample_message()));
    wait_for(queue, 1);
    // A second connection supplies only 2 of the 4 header bytes by closing
    // early — emulated here by destroying the sender right after connect;
    // the reader sees EOF and must exit, and stop() must join it.
    {
        sn::TcpSender aborted("127.0.0.1", receiver.port());
    }
    const auto start = std::chrono::steady_clock::now();
    receiver.stop();
    const auto elapsed = std::chrono::steady_clock::now() - start;
    EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(), 2000);
    EXPECT_EQ(queue.size(), 1u);
}

TEST(Tcp, MalformedPayloadCounted) {
    sn::MessageQueue queue(64);
    sn::TcpReceiver receiver(queue, 0);
    {
        sn::TcpSender sender("127.0.0.1", receiver.port());
        sender.send("this is not a SIREN message");
        sender.send(sn::encode(sample_message()));
        wait_for(queue, 1);
    }
    receiver.stop();
    EXPECT_EQ(queue.size(), 1u);
    EXPECT_EQ(receiver.stats().malformed.load(), 1u);
}
