// Recognition layer: n-gram similarity index (no false negatives vs brute
// force), union-find clustering, and the incremental software registry.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "fuzzy/fuzzy.hpp"
#include "recognize/recognize.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"
#include "util/thread_pool.hpp"

namespace sr = siren::recognize;
namespace sf = siren::fuzzy;

namespace {

/// Overwrite a contiguous window with fresh random bytes. This is the
/// realistic binary-drift model: a rebuild changes some function bodies
/// and leaves the rest of the byte stream intact, so CTPH's chunk sequence
/// survives outside the window. (Uniformly scattered point mutations would
/// touch almost every chunk and zero the score — that is TLSH territory.)
std::vector<std::uint8_t> mutate_region(std::vector<std::uint8_t> data, std::size_t start,
                                        std::size_t len, std::uint64_t seed) {
    siren::util::Rng rng(seed);
    for (std::size_t i = start; i < std::min(start + len, data.size()); ++i) {
        data[i] = static_cast<std::uint8_t>(rng.below(256));
    }
    return data;
}

/// A synthetic "software corpus": `families` base blobs, each with
/// `variants` localized mutations — the drift pattern of rebuilt HPC codes.
struct Corpus {
    std::vector<sf::FuzzyDigest> digests;
    std::vector<std::size_t> family_of;  ///< ground truth per digest
};

Corpus make_corpus(std::size_t families, std::size_t variants, std::size_t blob_size,
                   std::uint64_t seed, double mutation_rate = 0.01) {
    siren::util::Rng rng(seed);
    Corpus corpus;
    for (std::size_t f = 0; f < families; ++f) {
        const std::vector<std::uint8_t> base = rng.bytes(blob_size);
        for (std::size_t v = 0; v < variants; ++v) {
            std::vector<std::uint8_t> blob = base;
            if (v > 0) {
                const auto window = static_cast<std::size_t>(
                    static_cast<double>(blob.size()) * mutation_rate * static_cast<double>(v));
                blob = mutate_region(std::move(blob), (v * blob_size) / (3 * variants),
                                     std::max<std::size_t>(window, 16), seed ^ (f * 131 + v));
            }
            corpus.digests.push_back(sf::fuzzy_hash(blob));
            corpus.family_of.push_back(f);
        }
    }
    return corpus;
}

}  // namespace

// ---------------------------------------------------------------------------
// SimilarityIndex

TEST(SimilarityIndex, EmptyIndexReturnsNothing) {
    sr::SimilarityIndex index;
    EXPECT_EQ(index.size(), 0u);
    EXPECT_TRUE(index.query(sf::fuzzy_hash("some probe data, long enough to hash")).empty());
}

TEST(SimilarityIndex, FindsExactDuplicate) {
    sr::SimilarityIndex index;
    siren::util::Rng rng(1);
    const auto blob = rng.bytes(4096);
    const auto id = index.add(sf::fuzzy_hash(blob));
    index.add(sf::fuzzy_hash(rng.bytes(4096)));  // decoy

    const auto hits = index.query(sf::fuzzy_hash(blob));
    ASSERT_FALSE(hits.empty());
    EXPECT_EQ(hits.front().id, id);
    EXPECT_EQ(hits.front().score, 100);
}

TEST(SimilarityIndex, IdsAreDenseInsertionOrder) {
    sr::SimilarityIndex index;
    siren::util::Rng rng(2);
    for (std::uint32_t i = 0; i < 10; ++i) {
        EXPECT_EQ(index.add(sf::fuzzy_hash(rng.bytes(512))), i);
    }
    EXPECT_EQ(index.size(), 10u);
}

TEST(SimilarityIndex, MinScoreFiltersAndTopNTruncates) {
    const Corpus corpus = make_corpus(1, 8, 8192, 3);
    sr::SimilarityIndex index;
    for (const auto& d : corpus.digests) index.add(d);

    const auto all = index.query(corpus.digests[0], 1, 0);
    const auto strict = index.query(corpus.digests[0], 90, 0);
    EXPECT_LE(strict.size(), all.size());
    for (const auto& m : strict) EXPECT_GE(m.score, 90);

    const auto top3 = index.query(corpus.digests[0], 1, 3);
    ASSERT_EQ(top3.size(), 3u);
    EXPECT_EQ(top3.front().score, 100);  // self
    EXPECT_GE(top3[0].score, top3[1].score);
    EXPECT_GE(top3[1].score, top3[2].score);
}

TEST(SimilarityIndex, TopNEqualsPrefixOfFullRanking) {
    // finalize() switches to partial_sort when top_n caps the result; the
    // capped result must be exactly the prefix of the full ranking,
    // including the ascending-id tie-break.
    const Corpus corpus = make_corpus(6, 6, 4096, 9, 0.02);
    sr::SimilarityIndex index;
    for (const auto& d : corpus.digests) index.add(d);

    for (std::size_t probe = 0; probe < corpus.digests.size(); probe += 3) {
        const auto full = index.query(corpus.digests[probe], 1, 0);
        for (const std::size_t top_n : {std::size_t{1}, std::size_t{3}, std::size_t{100}}) {
            const auto capped = index.query(corpus.digests[probe], 1, top_n);
            const std::size_t expect = std::min(top_n, full.size());
            ASSERT_EQ(capped.size(), expect);
            for (std::size_t i = 0; i < expect; ++i) {
                EXPECT_EQ(capped[i], full[i]) << "probe " << probe << " top_n " << top_n;
            }
        }
    }
}

TEST(SimilarityIndex, ResultsOrderedBestFirstTiesById) {
    sr::SimilarityIndex index;
    siren::util::Rng rng(4);
    const auto blob = rng.bytes(4096);
    index.add(sf::fuzzy_hash(blob));
    index.add(sf::fuzzy_hash(blob));  // identical twin: tie at 100
    const auto hits = index.query(sf::fuzzy_hash(blob));
    ASSERT_EQ(hits.size(), 2u);
    EXPECT_EQ(hits[0].score, 100);
    EXPECT_EQ(hits[1].score, 100);
    EXPECT_LT(hits[0].id, hits[1].id);
}

// The load-bearing property: the gram prefilter never loses a match. Every
// digest that brute force scores >= min_score must come back from the
// indexed query with the same score.
class IndexRecallSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IndexRecallSweep, IndexedQueryEqualsBruteForce) {
    const std::uint64_t seed = GetParam();
    const Corpus corpus = make_corpus(8, 6, 4096, seed, 0.02);
    sr::SimilarityIndex index;
    for (const auto& d : corpus.digests) index.add(d);

    for (std::size_t probe = 0; probe < corpus.digests.size(); ++probe) {
        const auto indexed = index.query(corpus.digests[probe], 1, 0);
        const auto brute = index.query_bruteforce(corpus.digests[probe], 1, 0);
        ASSERT_EQ(indexed, brute) << "recall mismatch for probe " << probe << " seed " << seed;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndexRecallSweep, ::testing::Values(11, 22, 33, 44, 55));

namespace {

/// RAII pin for the SIMD dispatch level, so an assertion failure cannot
/// leave a forced level behind for later tests.
struct ForcedLevel {
    explicit ForcedLevel(siren::util::simd::Level level) {
        siren::util::simd::force_level(level);
    }
    ~ForcedLevel() { siren::util::simd::clear_forced_level(); }
};

}  // namespace

// The SIMD scan contract: whatever level the hardware dispatches to, the
// results are bit-identical to the forced-scalar scan and to brute force —
// same ids, same scores, same order. Randomized at 10k-digest scale so the
// vector kernels cross many chunk boundaries, bucket sizes, and pairings.
class SimdParitySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimdParitySweep, SimdScalarAndBruteForceAgreeAt10k) {
    const std::uint64_t seed = GetParam();
    const Corpus corpus = make_corpus(200, 50, 2048, seed, 0.015);
    ASSERT_EQ(corpus.digests.size(), 10000u);
    sr::SimilarityIndex index;
    for (const auto& d : corpus.digests) index.add(d);

    siren::util::Rng rng(seed ^ 0x51D0u);
    for (int round = 0; round < 48; ++round) {
        const auto& probe = corpus.digests[rng.index(corpus.digests.size())];
        const int min_score = static_cast<int>(1 + rng.index(90));
        const std::size_t top_n = round % 3 == 0 ? 0 : rng.index(20);

        const auto simd = index.query(probe, min_score, top_n);
        std::vector<sr::ScoredMatch> scalar;
        {
            ForcedLevel pin(siren::util::simd::Level::kScalar);
            scalar = index.query(probe, min_score, top_n);
        }
        ASSERT_EQ(simd, scalar) << "simd vs forced-scalar, seed " << seed << " round "
                                << round << " min_score " << min_score;
        ASSERT_EQ(simd, index.query_bruteforce(probe, min_score, top_n))
            << "simd vs brute force, seed " << seed << " round " << round;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimdParitySweep, ::testing::Values(71u, 72u));

TEST(SimilarityIndex, PrunesVersusBruteForce) {
    // The point of the index: on a corpus of unrelated blobs the Bloom
    // prefilter must reject nearly everything while queries remain exact.
    // Observable contract: digests land in a handful of block-size buckets
    // (block sizes are 3 * 2^k) and indexed results equal brute force.
    sr::SimilarityIndex index;
    siren::util::Rng rng(6);
    for (int i = 0; i < 200; ++i) index.add(sf::fuzzy_hash(rng.bytes(2048)));
    EXPECT_GE(index.bucket_count(), 1u);
    EXPECT_LE(index.bucket_count(), 8u) << "2KiB blobs hash at a few adjacent block sizes";
    const auto probe = sf::fuzzy_hash(rng.bytes(2048));
    EXPECT_EQ(index.query(probe, 1, 0), index.query_bruteforce(probe, 1, 0));
}

TEST(SimilarityIndex, PreparedProbeQueryMatchesDigestQuery) {
    const Corpus corpus = make_corpus(4, 5, 4096, 21, 0.02);
    sr::SimilarityIndex index;
    for (const auto& d : corpus.digests) index.add(d);
    for (std::size_t p = 0; p < corpus.digests.size(); p += 2) {
        const sf::PreparedDigest prepared(corpus.digests[p]);
        EXPECT_EQ(index.query(prepared, 1, 0), index.query(corpus.digests[p], 1, 0));
        EXPECT_EQ(index.query(prepared, 60, 3), index.query(corpus.digests[p], 60, 3));
    }
}

TEST(SimilarityIndex, QueryManyMatchesIndividualQueries) {
    const Corpus corpus = make_corpus(5, 4, 4096, 23, 0.02);
    sr::SimilarityIndex index;
    for (const auto& d : corpus.digests) index.add(d);

    const auto serial = index.query_many(corpus.digests, 40, 5);
    ASSERT_EQ(serial.size(), corpus.digests.size());
    for (std::size_t p = 0; p < corpus.digests.size(); ++p) {
        EXPECT_EQ(serial[p], index.query(corpus.digests[p], 40, 5)) << "probe " << p;
    }

    siren::util::ThreadPool pool(4);
    EXPECT_EQ(index.query_many(corpus.digests, 40, 5, &pool), serial)
        << "pooled batch must be bit-identical to the serial batch";
}

// ---------------------------------------------------------------------------
// UnionFind

TEST(UnionFind, StartsFullyDisjoint) {
    sr::UnionFind uf(5);
    EXPECT_EQ(uf.components(), 5u);
    for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(uf.find(i), i);
}

TEST(UnionFind, UniteMergesAndCounts) {
    sr::UnionFind uf(6);
    EXPECT_TRUE(uf.unite(0, 1));
    EXPECT_TRUE(uf.unite(2, 3));
    EXPECT_FALSE(uf.unite(1, 0)) << "already joined";
    EXPECT_EQ(uf.components(), 4u);
    EXPECT_TRUE(uf.unite(0, 2));
    EXPECT_EQ(uf.find(3), uf.find(1));
    EXPECT_EQ(uf.components(), 3u);
}

TEST(UnionFind, TransitivityAcrossChains) {
    sr::UnionFind uf(100);
    for (std::size_t i = 0; i + 1 < 100; ++i) uf.unite(i, i + 1);
    EXPECT_EQ(uf.components(), 1u);
    EXPECT_EQ(uf.find(0), uf.find(99));
}

// ---------------------------------------------------------------------------
// cluster_digests

TEST(Cluster, EmptyAndSingletonInputs) {
    EXPECT_TRUE(sr::cluster_digests({}).empty());
    const auto one = sr::cluster_digests({sf::fuzzy_hash("only one blob, long enough")});
    ASSERT_EQ(one.size(), 1u);
    EXPECT_EQ(one.front(), std::vector<sr::DigestId>{0});
}

TEST(Cluster, RecoversPlantedFamilies) {
    const Corpus corpus = make_corpus(5, 4, 8192, 7, 0.005);
    const auto clusters = sr::cluster_digests(corpus.digests, {.threshold = 40});

    // Every cluster must be family-pure (no two ground-truth families ever
    // merge: unrelated random blobs score 0), and the 5 big clusters must
    // each contain one family's variants.
    std::size_t clustered = 0;
    for (const auto& cluster : clusters) {
        std::set<std::size_t> families;
        for (const auto id : cluster) families.insert(corpus.family_of[id]);
        EXPECT_EQ(families.size(), 1u) << "cluster mixes ground-truth families";
        clustered += cluster.size();
    }
    EXPECT_EQ(clustered, corpus.digests.size()) << "clusters must partition the corpus";
    EXPECT_GE(clusters.front().size(), 2u) << "variants of one family must group";
    EXPECT_LE(clusters.size(), corpus.digests.size());
}

TEST(Cluster, ThresholdMonotonicity) {
    // Raising the threshold removes edges, so clusters can only split:
    // the cluster count is non-decreasing in the threshold.
    const Corpus corpus = make_corpus(4, 5, 4096, 9, 0.02);
    std::size_t prev = 0;
    for (const int threshold : {1, 25, 50, 75, 100}) {
        const auto clusters = sr::cluster_digests(corpus.digests, {.threshold = threshold});
        EXPECT_GE(clusters.size(), prev) << "threshold " << threshold;
        prev = clusters.size();
    }
}

TEST(Cluster, ParallelMatchesSerial) {
    const Corpus corpus = make_corpus(6, 5, 4096, 13, 0.01);
    siren::util::ThreadPool pool(4);
    const auto serial = sr::cluster_digests(corpus.digests, {.threshold = 50});
    const auto parallel = sr::cluster_digests(corpus.digests, {.threshold = 50, .pool = &pool});
    EXPECT_EQ(serial, parallel);
}

TEST(Cluster, OrderedBySizeThenSmallestMember) {
    const Corpus corpus = make_corpus(3, 6, 8192, 17, 0.004);
    const auto clusters = sr::cluster_digests(corpus.digests, {.threshold = 40});
    for (std::size_t i = 0; i + 1 < clusters.size(); ++i) {
        EXPECT_GE(clusters[i].size(), clusters[i + 1].size());
        if (clusters[i].size() == clusters[i + 1].size()) {
            EXPECT_LT(clusters[i].front(), clusters[i + 1].front());
        }
    }
    for (const auto& cluster : clusters) {
        EXPECT_TRUE(std::is_sorted(cluster.begin(), cluster.end()));
    }
}

// ---------------------------------------------------------------------------
// Registry

TEST(Registry, FirstSightingFoundsFamily) {
    sr::Registry reg;
    siren::util::Rng rng(19);
    const auto obs = reg.observe(sf::fuzzy_hash(rng.bytes(4096)), "GROMACS");
    EXPECT_TRUE(obs.new_family);
    EXPECT_TRUE(obs.new_exemplar);
    EXPECT_EQ(obs.best_score, 0);
    EXPECT_EQ(reg.family_count(), 1u);
    EXPECT_EQ(reg.family(obs.family).name, "GROMACS");
    EXPECT_EQ(reg.family(obs.family).sightings, 1u);
}

TEST(Registry, RepeatSightingIsRecognized) {
    sr::Registry reg;
    siren::util::Rng rng(23);
    const auto blob = rng.bytes(4096);
    const auto first = reg.observe(sf::fuzzy_hash(blob), "LAMMPS");
    const auto again = reg.observe(sf::fuzzy_hash(blob));
    EXPECT_FALSE(again.new_family);
    EXPECT_EQ(again.family, first.family);
    EXPECT_EQ(again.best_score, 100);
    EXPECT_FALSE(again.new_exemplar) << "an identical sighting adds no information";
    EXPECT_EQ(reg.family(first.family).sightings, 2u);
    EXPECT_EQ(reg.family(first.family).exemplars, 1u);
}

TEST(Registry, DriftedVariantJoinsFamilyAndExtendsIt) {
    sr::Registry reg({.match_threshold = 40});
    siren::util::Rng rng(29);
    auto blob = rng.bytes(8192);
    const auto first = reg.observe(sf::fuzzy_hash(blob), "icon");

    // Localized drift (one rewritten region): same family, and (scoring
    // below exemplar_add_below) retained as a second exemplar.
    blob = mutate_region(std::move(blob), 1000, 600, 30);
    const auto drifted = reg.observe(sf::fuzzy_hash(blob));
    EXPECT_EQ(drifted.family, first.family);
    EXPECT_FALSE(drifted.new_family);
    EXPECT_GE(drifted.best_score, 40);
    EXPECT_TRUE(drifted.new_exemplar);
    EXPECT_EQ(reg.family(first.family).exemplars, 2u);
}

TEST(Registry, UnrelatedSightingFoundsSecondFamily) {
    sr::Registry reg;
    siren::util::Rng rng(31);
    const auto a = reg.observe(sf::fuzzy_hash(rng.bytes(4096)), "amber");
    const auto b = reg.observe(sf::fuzzy_hash(rng.bytes(4096)), "janko");
    EXPECT_NE(a.family, b.family);
    EXPECT_EQ(reg.family_count(), 2u);
    EXPECT_EQ(reg.total_sightings(), 2u);
}

TEST(Registry, AnonymousFamilyIsNamedByLaterLabeledSighting) {
    // The paper's Table 7 flow: an a.out founds an anonymous family; when a
    // labeled icon build lands in the same family, the family takes the name.
    sr::Registry reg;
    siren::util::Rng rng(37);
    const auto blob = rng.bytes(8192);
    const auto anon = reg.observe(sf::fuzzy_hash(blob));  // a.out
    EXPECT_EQ(reg.family(anon.family).name, "family-0");
    const auto labeled = reg.observe(sf::fuzzy_hash(blob), "icon");
    EXPECT_EQ(labeled.family, anon.family);
    EXPECT_EQ(reg.family(anon.family).name, "icon");
}

TEST(Registry, BestMatchDoesNotMutate) {
    sr::Registry reg;
    siren::util::Rng rng(41);
    const auto blob = rng.bytes(4096);
    reg.observe(sf::fuzzy_hash(blob), "gzip");
    const auto match = reg.best_match(sf::fuzzy_hash(blob));
    ASSERT_TRUE(match.has_value());
    EXPECT_EQ(match->best_score, 100);
    EXPECT_EQ(reg.total_sightings(), 1u) << "best_match must not count as a sighting";
    EXPECT_FALSE(reg.best_match(sf::fuzzy_hash(rng.bytes(4096))).has_value());
}

TEST(Registry, ExemplarBudgetIsRespected) {
    sr::Registry reg({.match_threshold = 20, .exemplar_add_below = 101,
                      .max_exemplars_per_family = 3});
    siren::util::Rng rng(43);
    auto blob = rng.bytes(8192);
    reg.observe(sf::fuzzy_hash(blob), "radrad");
    for (int round = 0; round < 6; ++round) {
        blob = mutate_region(std::move(blob), 500 + 900 * static_cast<std::size_t>(round), 120,
                             44 + static_cast<std::uint64_t>(round));
        reg.observe(sf::fuzzy_hash(blob));
    }
    ASSERT_EQ(reg.family_count(), 1u);
    EXPECT_LE(reg.family(0).exemplars, 3u);
}

TEST(Registry, RenameAndSanitization) {
    sr::Registry reg;
    siren::util::Rng rng(47);
    const auto obs = reg.observe(sf::fuzzy_hash(rng.bytes(2048)));
    reg.rename(obs.family, "Weather Model v2");
    EXPECT_EQ(reg.family(obs.family).name, "Weather_Model_v2");

    // Renaming to an empty string must not leave an empty name: the save
    // format needs a nonempty token per family line, so the anonymous
    // default comes back instead.
    reg.rename(obs.family, "");
    EXPECT_EQ(reg.family(obs.family).name, "family-0");
    std::ostringstream out;
    reg.save(out);
    std::istringstream in(out.str());
    EXPECT_NO_THROW(sr::Registry::load(in)) << "empty rename corrupted the save format";
}

TEST(Registry, SaveLoadRoundTrip) {
    sr::Registry reg({.match_threshold = 40});
    siren::util::Rng rng(53);
    auto blob = rng.bytes(8192);
    reg.observe(sf::fuzzy_hash(blob), "icon");
    blob = mutate_region(std::move(blob), 2000, 500, 54);
    reg.observe(sf::fuzzy_hash(blob));
    reg.observe(sf::fuzzy_hash(rng.bytes(4096)), "amber");

    std::ostringstream out;
    reg.save(out);
    std::istringstream in(out.str());
    const sr::Registry restored = sr::Registry::load(in, {.match_threshold = 40});

    ASSERT_EQ(restored.family_count(), reg.family_count());
    for (const auto& fam : reg.families()) {
        EXPECT_EQ(restored.family(fam.id).name, fam.name);
        EXPECT_EQ(restored.family(fam.id).sightings, fam.sightings);
        EXPECT_EQ(restored.family(fam.id).exemplars, fam.exemplars);
    }
    // The restored registry recognizes the same software.
    const auto match = restored.best_match(sf::fuzzy_hash(blob));
    ASSERT_TRUE(match.has_value());
    EXPECT_EQ(restored.family(match->family).name, "icon");
}

TEST(Registry, LoadRejectsMalformedInput) {
    const auto load_from = [](const std::string& text) {
        std::istringstream in(text);
        return sr::Registry::load(in);
    };
    EXPECT_THROW(load_from("bogus line\n"), siren::util::ParseError);
    EXPECT_THROW(load_from("family 5 0 gap-in-ids\n"), siren::util::ParseError);
    EXPECT_THROW(load_from("exemplar 0 3:abc:def\n"), siren::util::ParseError)
        << "exemplar referencing a family that was never declared";
    EXPECT_THROW(load_from("family 0 1 name trailing-junk\n"), siren::util::ParseError)
        << "a family line with extra tokens is corrupt, not 'name plus noise'";
    EXPECT_THROW(load_from("family 0 1 ok\nexemplar 0 3:abc:def junk\n"),
                 siren::util::ParseError);
    EXPECT_NO_THROW(load_from(""));
}

TEST(Registry, HostileNamesCannotCorruptSaveFormat) {
    // A name hint carrying newlines/tabs is a format injection attempt: the
    // embedded "family"/"exemplar" lines must never reach the parser as
    // records. Every whitespace and control byte maps to '_'.
    sr::Registry reg;
    siren::util::Rng rng(131);
    const auto blob_a = rng.bytes(4096);
    const auto blob_b = rng.bytes(4096);
    reg.observe(sf::fuzzy_hash(blob_a), "evil\nfamily 99 7 fake");
    const auto obs_b = reg.observe(sf::fuzzy_hash(blob_b), "tab\there\rand\x01more");
    reg.rename(obs_b.family, "renamed\nexemplar 0 3:abc:def");

    std::ostringstream out;
    reg.save(out);
    std::istringstream in(out.str());
    const sr::Registry restored = sr::Registry::load(in);

    ASSERT_EQ(restored.family_count(), 2u) << "injected lines must not become records";
    EXPECT_EQ(restored.total_sightings(), 2u);
    EXPECT_EQ(restored.family(0).name, "evil_family_99_7_fake");
    EXPECT_EQ(restored.family(1).name, "renamed_exemplar_0_3:abc:def");
    for (const auto& fam : restored.families()) {
        for (const char c : fam.name) {
            EXPECT_FALSE(static_cast<unsigned char>(c) <= ' ' ||
                         static_cast<unsigned char>(c) == 0x7F)
                << "whitespace/control byte survived sanitization in '" << fam.name << "'";
        }
    }
}

TEST(Registry, LoadClampsExemplarsToSmallerBudget) {
    // Grow one family past 4 exemplars under a permissive budget…
    sr::Registry big({.match_threshold = 20, .exemplar_add_below = 101,
                      .max_exemplars_per_family = 16});
    siren::util::Rng rng(137);
    const auto base = rng.bytes(8192);
    big.observe(sf::fuzzy_hash(base), "chain");
    auto blob = base;
    for (int round = 0; round < 5; ++round) {
        blob = mutate_region(std::move(blob), 600 + 900 * static_cast<std::size_t>(round), 100,
                             140 + static_cast<std::uint64_t>(round));
        big.observe(sf::fuzzy_hash(blob));
    }
    ASSERT_EQ(big.family_count(), 1u);
    ASSERT_GT(big.family(0).exemplars, 2u);

    // …then load the save under a budget of 2: the overshoot is clamped and
    // the *oldest* exemplars (the original anchors, first in the file) win.
    std::ostringstream out;
    big.save(out);
    std::istringstream in(out.str());
    const sr::Registry clamped = sr::Registry::load(
        in, {.match_threshold = 20, .exemplar_add_below = 101, .max_exemplars_per_family = 2});
    ASSERT_EQ(clamped.family_count(), 1u);
    EXPECT_EQ(clamped.family(0).exemplars, 2u);
    EXPECT_EQ(clamped.family(0).sightings, big.family(0).sightings)
        << "clamping drops exemplars, never sightings";
    const auto match = clamped.best_match(sf::fuzzy_hash(base));
    ASSERT_TRUE(match.has_value()) << "the first-retained exemplar survives the clamp";
    EXPECT_EQ(match->best_score, 100);

    // Save-under-2 then load-under-2 is a fixed point.
    std::ostringstream out2;
    clamped.save(out2);
    std::istringstream in2(out2.str());
    const sr::Registry again = sr::Registry::load(
        in2, {.match_threshold = 20, .exemplar_add_below = 101, .max_exemplars_per_family = 2});
    EXPECT_EQ(again.family(0).exemplars, 2u);
}

// Property: a registry fed a whole corpus groups it consistently with
// batch clustering at the same threshold — the incremental path must not
// invent families that the batch view would merge... unless the exemplar
// budget truncates a drift chain, which the corpus below avoids.
class RegistryConsistencySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RegistryConsistencySweep, IncrementalRefinesBatchClustering) {
    const Corpus corpus = make_corpus(6, 4, 4096, GetParam(), 0.01);
    const int threshold = 50;

    sr::Registry reg({.match_threshold = threshold});
    std::vector<sr::FamilyId> assigned;
    assigned.reserve(corpus.digests.size());
    for (const auto& d : corpus.digests) assigned.push_back(reg.observe(d).family);

    const auto clusters = sr::cluster_digests(corpus.digests, {.threshold = threshold});

    // Each registry family must sit inside one batch cluster (incremental
    // assignment is a refinement of the connected components: observe()
    // only joins digests the batch graph also connects).
    std::vector<std::size_t> cluster_of(corpus.digests.size());
    for (std::size_t c = 0; c < clusters.size(); ++c) {
        for (const auto id : clusters[c]) cluster_of[id] = c;
    }
    for (std::size_t i = 0; i < assigned.size(); ++i) {
        for (std::size_t j = i + 1; j < assigned.size(); ++j) {
            if (assigned[i] == assigned[j]) {
                EXPECT_EQ(cluster_of[i], cluster_of[j])
                    << "registry joined digests " << i << "," << j
                    << " that batch clustering separates";
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegistryConsistencySweep, ::testing::Values(61, 67, 71));

// ---------------------------------------------------------------------------
// Registry::merge — the multi-receiver deployment flow.

TEST(RegistryMerge, DisjointRegistriesConcatenate) {
    siren::util::Rng rng(101);
    sr::Registry a, b;
    a.observe(sf::fuzzy_hash(rng.bytes(4096)), "GROMACS");
    a.observe(sf::fuzzy_hash(rng.bytes(4096)), "LAMMPS");
    b.observe(sf::fuzzy_hash(rng.bytes(4096)), "icon");

    a.merge(b);
    EXPECT_EQ(a.family_count(), 3u);
    EXPECT_EQ(a.total_sightings(), 3u);
    std::set<std::string> names;
    for (const auto& fam : a.families()) names.insert(fam.name);
    EXPECT_TRUE(names.contains("GROMACS"));
    EXPECT_TRUE(names.contains("icon"));
}

TEST(RegistryMerge, SharedSoftwareFoldsIntoOneFamily) {
    siren::util::Rng rng(103);
    const auto blob = rng.bytes(8192);
    const auto drifted = mutate_region(blob, 700, 400, 104);

    sr::Registry node1({.match_threshold = 40});
    sr::Registry node2({.match_threshold = 40});
    node1.observe(sf::fuzzy_hash(blob), "icon");
    node1.observe(sf::fuzzy_hash(blob));
    node2.observe(sf::fuzzy_hash(drifted));  // same software seen elsewhere

    node1.merge(node2);
    ASSERT_EQ(node1.family_count(), 1u) << "both nodes saw the same lineage";
    EXPECT_EQ(node1.family(0).name, "icon");
    EXPECT_EQ(node1.total_sightings(), 3u) << "sightings are conserved";
}

TEST(RegistryMerge, IncomingLabelNamesAnonymousFamily) {
    siren::util::Rng rng(107);
    const auto blob = rng.bytes(8192);

    sr::Registry central;   // saw only an a.out
    sr::Registry node;      // saw the labeled build
    central.observe(sf::fuzzy_hash(blob));
    node.observe(sf::fuzzy_hash(blob), "amber");

    central.merge(node);
    ASSERT_EQ(central.family_count(), 1u);
    EXPECT_EQ(central.family(0).name, "amber") << "the label travels with the merge";
}

TEST(RegistryMerge, EmptyMergesAreIdentity) {
    siren::util::Rng rng(109);
    sr::Registry a;
    a.observe(sf::fuzzy_hash(rng.bytes(4096)), "janko");
    const auto before_families = a.family_count();
    const auto before_sightings = a.total_sightings();

    sr::Registry empty;
    a.merge(empty);
    EXPECT_EQ(a.family_count(), before_families);
    EXPECT_EQ(a.total_sightings(), before_sightings);

    empty.merge(a);
    EXPECT_EQ(empty.family_count(), before_families);
    EXPECT_EQ(empty.total_sightings(), before_sightings);
    EXPECT_EQ(empty.family(0).name, "janko");
}

TEST(RegistryMerge, MergedRegistryStillRecognizes) {
    siren::util::Rng rng(113);
    const auto blob = rng.bytes(8192);
    sr::Registry central, node;
    node.observe(sf::fuzzy_hash(blob), "RadRad");
    central.merge(node);

    const auto match = central.best_match(sf::fuzzy_hash(blob));
    ASSERT_TRUE(match.has_value());
    EXPECT_EQ(central.family(match->family).name, "RadRad");
    EXPECT_EQ(match->best_score, 100);
}

TEST(RegistryMerge, RedundantExemplarsNotDuplicated) {
    siren::util::Rng rng(127);
    const auto blob = rng.bytes(8192);
    sr::Registry a, b;
    a.observe(sf::fuzzy_hash(blob), "gzip");
    b.observe(sf::fuzzy_hash(blob), "gzip");  // byte-identical exemplar

    a.merge(b);
    ASSERT_EQ(a.family_count(), 1u);
    EXPECT_EQ(a.family(0).exemplars, 1u)
        << "an identical exemplar from the other node adds no reach";
    EXPECT_EQ(a.total_sightings(), 2u);
}

TEST(RegistryMerge, ExemplarBudgetExhaustionMidMerge) {
    // The target enters the merge with its family's budget already spent;
    // the source brings genuinely drifted (non-redundant) exemplars. None
    // may be imported past the budget — but the sightings still are.
    const sr::RegistryOptions tight{.match_threshold = 20, .exemplar_add_below = 101,
                                    .max_exemplars_per_family = 2};
    siren::util::Rng rng(139);
    const auto base = rng.bytes(8192);

    sr::Registry target(tight);
    target.observe(sf::fuzzy_hash(base), "chain");
    target.observe(sf::fuzzy_hash(mutate_region(base, 600, 120, 141)));
    ASSERT_EQ(target.family(0).exemplars, 2u) << "budget spent before the merge";

    sr::Registry source({.match_threshold = 20, .exemplar_add_below = 101,
                         .max_exemplars_per_family = 16});
    source.observe(sf::fuzzy_hash(base));
    source.observe(sf::fuzzy_hash(mutate_region(base, 2500, 120, 142)));
    source.observe(sf::fuzzy_hash(mutate_region(base, 4400, 120, 143)));

    target.merge(source);
    ASSERT_EQ(target.family_count(), 1u);
    EXPECT_EQ(target.family(0).exemplars, 2u) << "merge must respect the target's budget";
    EXPECT_EQ(target.family(0).sightings, 5u);
    EXPECT_EQ(target.total_sightings(), 5u);
}

TEST(RegistryMerge, TotalSightingsConservedAcrossMultiFamilyMerge) {
    siren::util::Rng rng(149);
    const auto shared = rng.bytes(8192);
    sr::Registry a, b;
    a.observe(sf::fuzzy_hash(shared), "icon");
    a.observe(sf::fuzzy_hash(shared));
    a.observe(sf::fuzzy_hash(rng.bytes(4096)), "gromacs");
    b.observe(sf::fuzzy_hash(shared));                      // folds into icon
    b.observe(sf::fuzzy_hash(rng.bytes(4096)), "lammps");   // re-founded
    b.observe(sf::fuzzy_hash(rng.bytes(4096)));             // anonymous, re-founded

    const auto expected = a.total_sightings() + b.total_sightings();
    a.merge(b);
    EXPECT_EQ(a.total_sightings(), expected);
    std::uint64_t per_family_sum = 0;
    for (const auto& fam : a.families()) per_family_sum += fam.sightings;
    EXPECT_EQ(per_family_sum, expected) << "per-family counts and the total must agree";
}

TEST(RegistryMerge, SaveLoadMergeRoundTrip) {
    // The multi-receiver deployment flow with persistence in the loop: each
    // node saves its registry, the central site loads and merges them. The
    // merged result must match merging the live registries directly.
    siren::util::Rng rng(151);
    const auto shared = rng.bytes(8192);
    sr::Registry node1({.match_threshold = 40});
    sr::Registry node2({.match_threshold = 40});
    node1.observe(sf::fuzzy_hash(shared), "icon");
    node1.observe(sf::fuzzy_hash(rng.bytes(4096)), "gromacs");
    node2.observe(sf::fuzzy_hash(mutate_region(shared, 900, 300, 152)));
    node2.observe(sf::fuzzy_hash(rng.bytes(4096)), "lammps");

    const auto round_trip = [](const sr::Registry& reg) {
        std::ostringstream out;
        reg.save(out);
        std::istringstream in(out.str());
        return sr::Registry::load(in, {.match_threshold = 40});
    };
    sr::Registry central = round_trip(node1);
    central.merge(round_trip(node2));

    sr::Registry direct({.match_threshold = 40});
    direct.merge(node1);
    direct.merge(node2);

    ASSERT_EQ(central.family_count(), direct.family_count());
    EXPECT_EQ(central.total_sightings(), direct.total_sightings());
    std::set<std::string> central_names, direct_names;
    for (const auto& fam : central.families()) central_names.insert(fam.name);
    for (const auto& fam : direct.families()) direct_names.insert(fam.name);
    EXPECT_EQ(central_names, direct_names);
    const auto match = central.best_match(sf::fuzzy_hash(shared));
    ASSERT_TRUE(match.has_value());
    EXPECT_EQ(central.family(match->family).name, "icon");
}
