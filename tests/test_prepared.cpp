// Prepared-digest comparison engine: golden ssdeep-compatibility vectors,
// randomized score parity against the legacy comparator, the Bloom-gram
// prefilter's no-false-negative property, and the zero-allocation pin on
// the prepared hot path.

#define SIREN_ALLOC_PROBE_IMPLEMENT
#include "util/alloc_probe.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fuzzy/compare.hpp"
#include "fuzzy/ctph.hpp"
#include "fuzzy/edit_distance.hpp"
#include "fuzzy/prepared.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace sf = siren::fuzzy;
namespace su = siren::util;

namespace {

sf::PreparedDigest prep(std::string_view digest) {
    return sf::PreparedDigest(sf::FuzzyDigest::parse(digest));
}

/// Random digest part; a small alphabet plus occasional run-doubling makes
/// 7-gram overlaps and eliminate_sequences edges common instead of rare.
std::string random_part(su::Rng& rng, std::size_t max_len, int alphabet) {
    const std::size_t len = rng.index(max_len + 1);
    std::string s;
    while (s.size() < len) {
        if (!s.empty() && rng.below(5) == 0) {
            s += s.back();
            continue;
        }
        s += static_cast<char>('A' + rng.index(static_cast<std::size_t>(alphabet)));
    }
    return s;
}

/// A handful of point edits — the drifted-rebuild shape where scores are
/// nonzero and every branch of the scale/cap arithmetic gets exercised.
std::string mutate_part(su::Rng& rng, std::string s) {
    const std::size_t edits = rng.index(6);
    for (std::size_t e = 0; e < edits && !s.empty(); ++e) {
        const std::size_t p = rng.index(s.size());
        switch (rng.below(3)) {
            case 0: s[p] = static_cast<char>('A' + rng.index(6)); break;
            case 1: s.erase(p, 1); break;
            default:
                if (s.size() < sf::kSpamsumLength) {
                    s.insert(p, 1, static_cast<char>('A' + rng.index(6)));
                }
                break;
        }
    }
    return s;
}

}  // namespace

TEST(PreparedDigest, PartsAreSequenceCollapsed) {
    const auto p = prep("3:AAAAAABCDEF:XXXXXY");
    EXPECT_EQ(p.part1(), sf::eliminate_sequences("AAAAAABCDEF"));
    EXPECT_EQ(p.part2(), sf::eliminate_sequences("XXXXXY"));
    EXPECT_EQ(p.block_size(), 3u);
}

TEST(PreparedDigest, EmptyPartsHaveZeroSignature) {
    const auto p = prep("3::");
    EXPECT_TRUE(p.part1().empty());
    EXPECT_EQ(p.signature1(), 0u);
    EXPECT_EQ(p.signature2(), 0u);
}

TEST(PreparedDigest, RejectsOversizeParts) {
    sf::FuzzyDigest d;
    d.block_size = 3;
    d.digest1 = std::string(sf::kSpamsumLength + 1, 'A');
    EXPECT_THROW(sf::PreparedDigest{d}, su::Error);
}

TEST(GramSignature, SharedGramImpliesSharedBit) {
    // The load-bearing prefilter property: a common 7-gram forces a common
    // signature bit. Exercised over pairs built around a shared core.
    su::Rng rng(99);
    for (int i = 0; i < 500; ++i) {
        const std::string core = random_part(rng, 20, 26) + "SHAREDG" + random_part(rng, 10, 26);
        const std::string a = random_part(rng, 15, 26) + "SHAREDG";
        if (core.size() < sf::kCommonSubstringLength || a.size() < sf::kCommonSubstringLength) {
            continue;
        }
        EXPECT_NE(sf::gram_signature(core) & sf::gram_signature(a), 0u)
            << "shared gram lost by signatures of '" << core << "' and '" << a << "'";
    }
}

TEST(GramSignature, IdenticalShortStringsCollide) {
    EXPECT_NE(sf::gram_signature("abc") & sf::gram_signature("abc"), 0u);
    EXPECT_EQ(sf::gram_signature(""), 0u);
}

// Golden ssdeep-compatibility vectors: hand-picked digest pairs whose
// scores pin the comparator's integer arithmetic — the 100 fast path,
// run collapsing, insertion drift, cross-block-size pairing, the
// small-block-size cap, and block-size incomparability. Both the legacy
// and the prepared comparator must reproduce them exactly.
struct GoldenVector {
    const char* a;
    const char* b;
    int score;
};

class GoldenCompare : public ::testing::TestWithParam<GoldenVector> {};

TEST_P(GoldenCompare, LegacyAndPreparedMatchGolden) {
    const auto& v = GetParam();
    EXPECT_EQ(sf::compare(v.a, v.b, /*strict=*/true), v.score);
    EXPECT_EQ(sf::compare(v.b, v.a, /*strict=*/true), v.score) << "score must be symmetric";
    EXPECT_EQ(sf::compare(prep(v.a), prep(v.b)), v.score);
    EXPECT_EQ(sf::compare(prep(v.b), prep(v.a)), v.score);
}

INSTANTIATE_TEST_SUITE_P(
    Vectors, GoldenCompare,
    ::testing::Values(
        // Identical digests: the == 100 fast path.
        GoldenVector{"3:ABCDEFGH:ABCDEFGH", "3:ABCDEFGH:ABCDEFGH", 100},
        // Runs longer than 3 collapse before comparison, so these are
        // identical too.
        GoldenVector{"96:AAAAAAAABCDEFGHIJKLMNOPQRSTUVWXYZabcdefgh:ABCDEFGHIJKLMN",
                     "96:AAAABCDEFGHIJKLMNOPQRSTUVWXYZabcdefgh:ABCDEFGHIJKLMN", 100},
        GoldenVector{"96:QQQQQQQQABCDEFGHIJKL:ZZZZMNOPQR",
                     "96:QQQQQABCDEFGHIJKL:ZZZZZZMNOPQR", 100},
        // digest2 identical wins the max over a drifted digest1.
        GoldenVector{"96:ABCDEFGHIJKLMNOPQRSTUVWXYZabcdef:ABCDEFGHIJKLMNOP",
                     "96:ABCDEFGHIJKLMNOPXXXXQRSTUVWXYZabcdef:ABCDEFGHIJKLMNOP", 100},
        // Adjacent block sizes pair fine digest1 with coarse digest2.
        GoldenVector{"48:ABCDEFGHIJKLMNOPQRSTUVWXYZ:NOPQRSTUVWXYZabc",
                     "96:NOPQRSTUVWXYZabcdefg:ABCDEFGHIJKLMNOPQRST", 90},
        GoldenVector{"96:ABCDEFGHIJKLMNOPQRST:UVWXYZabcdef",
                     "48:QRSTUVWXYZab:ABCDEFGHIJKLMNOPQRST", 100},
        // Small block size: identical parts, but block 6/12 caps the score
        // (12/3 * min-len 10 = 40 via the digest2 pair).
        GoldenVector{"6:ABCDEFGHIJKL:MNOPQRSTUV", "6:ABCDEFGHIJKLX:MNOPQRSTUV", 40},
        // Block sizes 96 vs 384 are not comparable.
        GoldenVector{"96:ABCDEFGHIJKLMNOPQRST:UVWXYZabcdef",
                     "384:ABCDEFGHIJKLMNOPQRST:UVWXYZabcdef", 0},
        // No 7-char common substring: gated to 0 despite shared chars.
        GoldenVector{"3:ABCDEFGHIJ:KLMNOPQRST", "3:JIHGFEDCBA:TSRQPONMLK", 0}));

// The tentpole property: over ~10k generated digest pairs — same, double
// and unrelated block sizes, short parts, empty parts, run collapsing —
// the prepared comparator returns exactly the legacy score, and the
// min_score-banded form never misclassifies against the cutoff.
TEST(PreparedParity, TenThousandPairsMatchLegacyCompare) {
    su::Rng rng(20260728);
    const std::uint64_t block_sizes[] = {3, 6, 12, 24, 48, 96, 192, 3072};
    std::size_t nonzero = 0;

    for (int iter = 0; iter < 10000; ++iter) {
        sf::FuzzyDigest a, b;
        a.block_size = block_sizes[rng.index(8)];
        switch (rng.below(4)) {
            case 0: b.block_size = a.block_size; break;
            case 1: b.block_size = a.block_size * 2; break;
            case 2: b.block_size = std::max<std::uint64_t>(a.block_size / 2, 3); break;
            default: b.block_size = block_sizes[rng.index(8)]; break;
        }
        const int alphabet = rng.below(2) ? 4 : 40;
        a.digest1 = random_part(rng, sf::kSpamsumLength, alphabet);
        a.digest2 = random_part(rng, sf::kSpamsumLength, alphabet);
        if (rng.below(3) == 0) {
            b.digest1 = a.digest1;
            b.digest2 = a.digest2;
        } else if (rng.below(2) == 0) {
            b.digest1 = mutate_part(rng, a.digest1);
            b.digest2 = mutate_part(rng, a.digest2);
        } else {
            b.digest1 = random_part(rng, sf::kSpamsumLength, alphabet);
            b.digest2 = random_part(rng, sf::kSpamsumLength, alphabet);
        }

        const int legacy = sf::compare(a, b);
        const sf::PreparedDigest pa(a), pb(b);
        ASSERT_EQ(sf::compare(pa, pb), legacy)
            << "pair " << iter << ": " << a.to_string() << " vs " << b.to_string();
        if (legacy > 0) ++nonzero;

        // Banded contract: >= cutoff means exact score, below means the
        // result also stays below the cutoff.
        const int cutoff = 1 + static_cast<int>(rng.index(100));
        const int banded = sf::compare(pa, pb, cutoff);
        if (legacy >= cutoff) {
            ASSERT_EQ(banded, legacy) << "cutoff " << cutoff << " lost an above-band score";
        } else {
            ASSERT_LT(banded, cutoff) << "cutoff " << cutoff << " fabricated a score";
        }
    }
    // The generator must actually produce scoring pairs or the sweep is
    // vacuous; seed 20260728 yields ~2k.
    EXPECT_GT(nonzero, 500u);
}

TEST(PreparedParity, RealDigestsFromDriftedBlobs) {
    // End-to-end shape: digests produced by fuzzy_hash over drifted blobs
    // (the paper's rebuild-drift model) score identically on both paths.
    su::Rng rng(7);
    auto base = rng.bytes(60000);
    const auto probe = sf::fuzzy_hash(base);
    for (int v = 0; v < 30; ++v) {
        auto blob = base;
        const std::size_t start = rng.index(blob.size() - 2000);
        for (std::size_t i = 0; i < 100u * static_cast<std::size_t>(v); ++i) {
            blob[start + (i % 2000)] = static_cast<std::uint8_t>(rng.below(256));
        }
        const auto candidate = sf::fuzzy_hash(blob);
        EXPECT_EQ(sf::compare(sf::PreparedDigest(probe), sf::PreparedDigest(candidate)),
                  sf::compare(probe, candidate));
    }
}

TEST(PreparedAlloc, CompareIsAllocationFree) {
    // The zero-allocation pin from the issue's acceptance criteria: once
    // both sides are prepared, compare() must never touch the heap — for
    // equal and adjacent block sizes, scoring and non-scoring pairs alike.
    su::Rng rng(11);
    const auto blob = rng.bytes(30000);
    auto drifted = blob;
    for (std::size_t i = 0; i < 1500; ++i) drifted[4000 + i] ^= 0x5A;

    const sf::PreparedDigest a(sf::fuzzy_hash(blob));
    const sf::PreparedDigest b(sf::fuzzy_hash(drifted));
    const sf::PreparedDigest unrelated(sf::fuzzy_hash(rng.bytes(30000)));
    const auto coarse = prep("192:ABCDEFGHIJKLMNOPQRST:UVWXYZabcdef");
    const auto fine = prep("96:ZZZZYXWVUTSRQPONMLKJIH:ABCDEFGHIJKLMNOPQRST");

    ASSERT_GT(sf::compare(a, b), 0) << "fixture must exercise the scoring path";

    su::alloc_probe_reset();
    int sink = 0;
    for (int i = 0; i < 100; ++i) {
        sink += sf::compare(a, b);
        sink += sf::compare(a, unrelated);
        sink += sf::compare(coarse, fine);
        sink += sf::compare(a, b, 90);
    }
    EXPECT_EQ(su::alloc_probe_count(), 0u) << "prepared compare must not allocate (sink=" << sink
                                           << ")";
}

TEST(BoundedIndel, AgreesWithExactDistanceUpToBound) {
    su::Rng rng(13);
    for (int i = 0; i < 2000; ++i) {
        const std::string a = random_part(rng, 70, 5);
        const std::string b = random_part(rng, 70, 5);
        const std::size_t exact = sf::indel_distance(a, b);
        const std::size_t bound = rng.index(80);
        const std::size_t got = sf::indel_distance_bounded(a, b, bound);
        if (exact <= bound) {
            EXPECT_EQ(got, exact);
        } else {
            EXPECT_GT(got, bound);
        }
    }
}
