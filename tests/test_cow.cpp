// COW storage layer: the chunked copy-on-write containers behind O(delta)
// snapshot publication — CowVec ownership semantics, structural sharing
// across SimilarityIndex and Registry copies (pointer-equality pins), and
// the incremental chunk-memoized fingerprint against a from-scratch
// rebuild oracle (docs/recognition_service.md).

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "fuzzy/fuzzy.hpp"
#include "recognize/recognize.hpp"
#include "util/cow_vec.hpp"
#include "util/rng.hpp"

namespace sr = siren::recognize;
namespace sf = siren::fuzzy;
namespace su = siren::util;

namespace {

/// A synthetic digest with a chosen block size: random base64-ish parts,
/// well under kSpamsumLength. Random 24-grams essentially never share a
/// 7-gram, so every observe founds its own family — which is exactly what
/// the structural-sharing tests want: each batch touches only its own
/// block-size bucket.
sf::FuzzyDigest make_digest(std::uint64_t block_size, su::Rng& rng) {
    static constexpr char kAlphabet[] =
        "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
    sf::FuzzyDigest digest;
    digest.block_size = block_size;
    for (int i = 0; i < 24; ++i) digest.digest1.push_back(kAlphabet[rng.below(64)]);
    for (int i = 0; i < 12; ++i) digest.digest2.push_back(kAlphabet[rng.below(64)]);
    return digest;
}

TEST(CowVec, CopyIsolatesMutationsInBothDirections) {
    su::CowVec<int, 4> original;
    for (int i = 0; i < 10; ++i) original.push_back(i);

    su::CowVec<int, 4> copy(original);
    ASSERT_EQ(copy.size(), 10u);
    for (std::size_t c = 0; c < copy.chunk_count(); ++c) {
        EXPECT_EQ(copy.chunk_identity(c), original.chunk_identity(c));
    }

    // Mutating the copy must not show through to the original...
    copy.mutate(0) = 100;
    EXPECT_EQ(copy[0], 100);
    EXPECT_EQ(original[0], 0);
    // ...and — the both-sides-demoted protocol — mutating the *source*
    // after a copy must not show through either.
    original.mutate(5) = 500;
    EXPECT_EQ(original[5], 500);
    EXPECT_EQ(copy[5], 5);

    // Only the touched chunks diverged; the rest stayed shared.
    EXPECT_NE(copy.chunk_identity(0), original.chunk_identity(0));
    EXPECT_NE(copy.chunk_identity(1), original.chunk_identity(1));
    EXPECT_EQ(copy.chunk_identity(2), original.chunk_identity(2));
    EXPECT_EQ(copy.shared_chunks_with(original), 1u);
}

TEST(CowVec, AppendAfterCopyClonesOnlyTheTailChunk) {
    su::CowVec<int, 4> original;
    for (int i = 0; i < 6; ++i) original.push_back(i);  // chunk 0 full, chunk 1 half

    su::CowVec<int, 4> copy(original);
    original.push_back(6);
    ASSERT_EQ(original.size(), 7u);
    EXPECT_EQ(copy.size(), 6u);
    EXPECT_EQ(copy.chunk_identity(0), original.chunk_identity(0));  // full chunk shared
    EXPECT_NE(copy.chunk_identity(1), original.chunk_identity(1));  // tail cloned

    // Appends that open a fresh chunk leave every pre-existing chunk alone.
    su::CowVec<int, 4> copy2(original);
    original.push_back(7);  // fills chunk 1
    original.push_back(8);  // opens chunk 2
    EXPECT_EQ(copy2.shared_chunks_with(original), 1u);
    EXPECT_EQ(original.chunk_count(), 3u);
}

TEST(CowVec, ChunkMemoCachesAndInvalidatesOnMutation) {
    su::CowVec<int, 4> vec;
    for (int i = 0; i < 4; ++i) vec.push_back(i);

    int computes = 0;
    const auto hash = [&computes](std::size_t base, const std::vector<int>& items) {
        ++computes;
        std::uint64_t h = base + 1;
        for (int v : items) h = h * 31 + static_cast<std::uint64_t>(v);
        return h;
    };
    const auto first = vec.chunk_memo(0, hash);
    EXPECT_EQ(vec.chunk_memo(0, hash), first);
    EXPECT_EQ(computes, 1);  // second call served from the memo

    vec.mutate(2) = 42;
    const auto second = vec.chunk_memo(0, hash);
    EXPECT_EQ(computes, 2);  // mutation invalidated the memo
    EXPECT_NE(second, first);

    // A copy sees the already-memoized value without recomputing (the memo
    // travels with the shared chunk).
    su::CowVec<int, 4> copy(vec);
    EXPECT_EQ(copy.chunk_memo(0, hash), second);
    EXPECT_EQ(computes, 2);
}

TEST(CowVec, AtThrowsOutOfRange) {
    su::CowVec<int, 4> vec;
    vec.push_back(7);
    EXPECT_EQ(vec.at(0), 7);
    EXPECT_THROW(vec.at(1), std::out_of_range);
}

TEST(SimilarityIndexCow, CopySharesChunksAndAnswersIdentically) {
    // Same-size blobs land in one block-size bucket; past kChunkRows (256)
    // digests that bucket spans multiple chunks, so an append after the
    // copy clones only the tail chunk and the full ones stay shared.
    su::Rng rng(2025);
    std::vector<sf::FuzzyDigest> first_batch;
    for (int i = 0; i < 300; ++i) first_batch.push_back(sf::fuzzy_hash(rng.bytes(4096)));

    sr::SimilarityIndex index;
    for (const auto& digest : first_batch) index.add(digest);

    const sr::SimilarityIndex snapshot(index);  // the "published" copy
    std::vector<sf::FuzzyDigest> second_batch;
    for (int i = 0; i < 100; ++i) {
        second_batch.push_back(sf::fuzzy_hash(rng.bytes(4096)));
        index.add(second_batch.back());
    }

    // The writer's appends never touched the snapshot.
    ASSERT_EQ(snapshot.size(), 300u);
    ASSERT_EQ(index.size(), 400u);
    const auto sharing = index.sharing_with(snapshot);
    EXPECT_GT(sharing.shared_chunks, 0u);
    EXPECT_GT(sharing.total_chunks, sharing.shared_chunks);

    // Oracle: a from-scratch index over the same 300 digests answers every
    // probe exactly like the structurally-shared snapshot does.
    sr::SimilarityIndex fresh;
    for (const auto& digest : first_batch) fresh.add(digest);
    for (const auto& probe : first_batch) {
        EXPECT_EQ(snapshot.query(probe, 1), fresh.query(probe, 1));
    }
    for (const auto& probe : second_batch) {
        EXPECT_EQ(snapshot.query(probe, 1), fresh.query(probe, 1));
    }
}

TEST(RegistryCow, DisjointBlockSizeBatchesShareUntouchedBuckets) {
    constexpr std::uint64_t kBlockA = 1536;
    constexpr std::uint64_t kBlockB = 6144;  // 4x apart: never co-scanned

    su::Rng rng(7);
    sr::Registry registry;
    for (int i = 0; i < 300; ++i) {
        registry.observe(make_digest(kBlockA, rng), "a-" + std::to_string(i));
    }

    const sr::Registry snap1(registry);  // publish #1

    for (int i = 0; i < 300; ++i) {
        registry.observe(make_digest(kBlockB, rng), "b-" + std::to_string(i));
    }

    const sr::Registry snap2(registry);  // publish #2

    // Pointer-equality pins: batch B opened its own bucket, so the batch-A
    // bucket — header and every chunk — is the *same object* in both
    // snapshots, not a copy.
    const auto& idx1 = snap1.content_index();
    const auto& idx2 = snap2.content_index();
    ASSERT_NE(idx1.bucket_identity(kBlockA), nullptr);
    EXPECT_EQ(idx2.bucket_identity(kBlockA), idx1.bucket_identity(kBlockA));
    EXPECT_EQ(idx2.bucket_chunk_identities(kBlockA), idx1.bucket_chunk_identities(kBlockA));
    EXPECT_EQ(idx1.bucket_identity(kBlockB), nullptr);
    ASSERT_NE(idx2.bucket_identity(kBlockB), nullptr);

    // The digest column: snap1's fully-populated chunks are shared; only
    // the chunk that was snap1's tail (and batch B's fresh chunks) differ.
    const std::size_t snap1_chunks = idx1.digest_chunk_count();
    ASSERT_GE(snap1_chunks, 2u);
    for (std::size_t c = 0; c + 1 < snap1_chunks; ++c) {
        EXPECT_EQ(idx2.digest_chunk_identity(c), idx1.digest_chunk_identity(c));
    }

    // Aggregate sharing as the publish path reports it.
    const auto sharing = snap2.sharing_with(snap1);
    EXPECT_GE(sharing.shared_buckets, 1u);
    EXPECT_GT(sharing.shared_chunks, 0u);
    EXPECT_GT(sharing.total_chunks, sharing.shared_chunks);

    // Both snapshots are internally consistent...
    std::string why;
    EXPECT_TRUE(snap1.self_check(&why)) << why;
    EXPECT_TRUE(snap2.self_check(&why)) << why;

    // ...and the incremental (chunk-memoized) fingerprint of the shared
    // registry equals the fingerprint of a from-scratch rebuild: save,
    // reload, compare. This pins the equivalence the replication layer's
    // convergence audit depends on.
    std::stringstream saved;
    snap2.save(saved);
    const auto rebuilt = sr::Registry::load(saved);
    EXPECT_EQ(rebuilt.fingerprint(), snap2.fingerprint());
    EXPECT_NE(snap1.fingerprint(), snap2.fingerprint());
}

TEST(RegistryCow, WriterMutationsNeverShowThroughToASnapshot) {
    su::Rng rng(11);
    sr::Registry registry;
    std::vector<sf::FuzzyDigest> digests;
    for (int i = 0; i < 100; ++i) {
        digests.push_back(make_digest(1536, rng));
        registry.observe(digests.back(), "fam-" + std::to_string(i));
    }

    const sr::Registry snapshot(registry);
    const auto frozen_fp = snapshot.fingerprint();
    const auto frozen_families = snapshot.family_count();
    const auto frozen_sightings = snapshot.total_sightings();

    // Every mutation class: re-sighting (bumps a family chunk in place),
    // new family + exemplar (index + owner + family appends), a behavior
    // sighting, and a rename.
    for (int i = 0; i < 100; ++i) registry.observe(digests[static_cast<std::size_t>(i)]);
    registry.observe(make_digest(3072, rng), "fresh");
    registry.observe_behavior(make_digest(192, rng), "fam-0");
    registry.rename(0, "renamed");

    EXPECT_EQ(snapshot.family_count(), frozen_families);
    EXPECT_EQ(snapshot.total_sightings(), frozen_sightings);
    EXPECT_EQ(snapshot.family(0).name, "fam-0");
    EXPECT_EQ(snapshot.fingerprint(), frozen_fp);
    std::string why;
    EXPECT_TRUE(snapshot.self_check(&why)) << why;
    EXPECT_TRUE(registry.self_check(&why)) << why;

    // The writer's view did change — and a save/load round-trip of it
    // still fingerprints identically (incremental == from-scratch).
    EXPECT_NE(registry.fingerprint(), frozen_fp);
    std::stringstream saved;
    registry.save(saved);
    EXPECT_EQ(sr::Registry::load(saved).fingerprint(), registry.fingerprint());
}

TEST(RegistryCow, ResightingsCloneOnlyTouchedFamilyChunks) {
    su::Rng rng(13);
    sr::Registry registry;
    std::vector<sf::FuzzyDigest> digests;
    for (int i = 0; i < 512; ++i) {  // 8 family chunks of 64
        digests.push_back(make_digest(1536, rng));
        registry.observe(digests.back(), "fam-" + std::to_string(i));
    }
    ASSERT_EQ(registry.family_count(), 512u);

    const sr::Registry snapshot(registry);
    // Re-sight one existing family: no index/owner appends at all, one
    // family chunk cloned for the sightings bump.
    registry.observe(digests[0]);

    const auto sharing = registry.sharing_with(snapshot);
    EXPECT_EQ(sharing.shared_buckets, sharing.total_buckets);
    EXPECT_EQ(sharing.shared_chunks + 1, sharing.total_chunks);
}

}  // namespace
