// Campaign catalog consistency: the spec must encode the paper's published
// marginals exactly (these are the constants everything downstream
// reproduces).

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "workload/campaign.hpp"

namespace sw = siren::workload;

namespace {

const sw::CampaignSpec& spec() {
    static const sw::CampaignSpec s = sw::lumi_campaign();
    return s;
}

const sw::SystemExecSpec& exec_named(const std::string& path) {
    for (const auto& e : spec().system_execs) {
        if (e.path == path) return e;
    }
    throw std::runtime_error("no such exec spec: " + path);
}

}  // namespace

TEST(Catalog, Table3ExecTotals) {
    // (path, users, processes, jobs, object variants) from Table 3.
    struct Row {
        const char* path;
        std::size_t users;
        std::uint64_t processes;
        std::uint64_t jobs;
        std::size_t variants;
    };
    const Row rows[] = {
        {"/usr/bin/srun", 10, 4564, 1642, 3},  {"/usr/bin/bash", 8, 161418, 13105, 3},
        {"/usr/bin/lua5.3", 8, 18448, 882, 2}, {"/usr/bin/rm", 6, 544025, 12182, 1},
        {"/usr/bin/cat", 6, 29003, 9774, 1},   {"/usr/bin/uname", 5, 28053, 1182, 1},
        {"/usr/bin/ls", 5, 9057, 1130, 1},     {"/usr/bin/mkdir", 4, 547089, 8863, 1},
        {"/usr/bin/grep", 4, 9268, 1115, 1},   {"/usr/bin/cp", 4, 11655, 1019, 1},
    };
    for (const auto& row : rows) {
        const auto& e = exec_named(row.path);
        EXPECT_EQ(e.users.size(), row.users) << row.path;
        EXPECT_EQ(e.processes, row.processes) << row.path;
        EXPECT_EQ(e.jobs, row.jobs) << row.path;
        EXPECT_EQ(e.object_variants.size(), row.variants) << row.path;
    }
}

TEST(Catalog, Table3TotalOf112SystemExecutables) {
    std::size_t other = 0;
    for (const auto& u : spec().users) other += u.other_execs;
    EXPECT_EQ(spec().system_execs.size() + other, 112u);
    EXPECT_GE(spec().other_exec_names.size(), other) << "long-tail pool must suffice";
}

TEST(Catalog, Table4BashVariantBudgets) {
    const auto& bash = exec_named("/usr/bin/bash");
    // Default variant absorbs the remainder (160,904 at scale 1).
    EXPECT_EQ(bash.object_variants[0].processes, 0u);
    EXPECT_EQ(bash.object_variants[1].processes, 460u);
    EXPECT_EQ(bash.object_variants[2].processes, 54u);
    // The libm deviation belongs to the smallest variant (Table 4 row 3).
    bool libm = false;
    for (const auto& o : bash.object_variants[2].objects) {
        libm = libm || o.find("libm.") != std::string::npos;
    }
    EXPECT_TRUE(libm);
}

TEST(Catalog, Table5PerLabelProcessTotals) {
    // label -> (processes, variants) from Table 5; UNKNOWN is the a.out
    // spec whose ground-truth label is icon.
    std::map<std::string, std::pair<std::uint64_t, std::size_t>> expected = {
        {"LAMMPS", {226, 5}},  {"GROMACS", {2104, 1}}, {"miniconda", {5018, 5}},
        {"janko", {138, 2}},   {"icon", {625, 175}},   {"amber", {889, 2}},
        {"gzip", {19, 1}},     {"a.out", {17, 7}},     {"alexandria", {4, 1}},
        {"RadRad", {2, 2}},
    };
    for (const auto& soft : spec().software) {
        const bool is_unknown = soft.path_pattern.find("a.out") != std::string::npos;
        const std::string key = is_unknown ? "a.out" : soft.label;
        auto it = expected.find(key);
        ASSERT_NE(it, expected.end()) << key;

        std::uint64_t procs = 0;
        for (const auto& alloc : soft.allocations) {
            for (const auto& run : alloc.runs) procs += run.processes;
        }
        std::size_t variants = 0;
        for (const auto& g : soft.groups) variants += g.variants;

        EXPECT_EQ(procs, it->second.first) << key;
        EXPECT_EQ(variants, it->second.second) << key;
        expected.erase(it);
    }
    EXPECT_TRUE(expected.empty()) << "all Table 5 labels must be present";
}

TEST(Catalog, UserDecompositionMatchesTable2) {
    // Per-user user-directory process totals must equal Table 2's column.
    std::map<std::string, std::uint64_t> per_user;
    for (const auto& soft : spec().software) {
        for (const auto& alloc : soft.allocations) {
            for (const auto& run : alloc.runs) per_user[alloc.user] += run.processes;
        }
    }
    const std::map<std::string, std::uint64_t> expected = {
        {"user_2", 5259}, {"user_11", 138}, {"user_8", 2103}, {"user_4", 642},
        {"user_10", 889}, {"user_9", 4},    {"user_3", 4},    {"user_6", 2},
        {"user_7", 1},
    };
    EXPECT_EQ(per_user, expected);
}

TEST(Catalog, PythonDecompositionMatchesTables) {
    std::uint64_t total = 0;
    std::map<std::string, std::uint64_t> per_interp;
    for (const auto& py : spec().python) {
        for (const auto& g : py.groups) {
            total += g.processes;
            per_interp[py.interpreter_path] += g.processes;
        }
    }
    EXPECT_EQ(total, 23316u);                                    // Table 2
    EXPECT_EQ(per_interp["/usr/bin/python3.6"], 14884u);         // Table 8
    EXPECT_EQ(per_interp["/usr/bin/python3.11"], 8402u);
    EXPECT_EQ(per_interp["/usr/bin/python3.10"], 30u);
}

TEST(Catalog, UnknownSharesIconLineageWithTwin) {
    const sw::UserSoftwareSpec* icon = nullptr;
    const sw::UserSoftwareSpec* unknown = nullptr;
    for (const auto& soft : spec().software) {
        if (soft.path_pattern.find("a.out") != std::string::npos) unknown = &soft;
        else if (soft.label == "icon") icon = &soft;
    }
    ASSERT_NE(icon, nullptr);
    ASSERT_NE(unknown, nullptr);
    EXPECT_EQ(unknown->lineage, icon->lineage);
    // The twin: version 0 appears in both variant version lists.
    ASSERT_FALSE(unknown->variant_versions.empty());
    EXPECT_EQ(unknown->variant_versions[0], 0u);
    ASSERT_FALSE(icon->variant_versions.empty());
    EXPECT_EQ(icon->variant_versions[0], 0u);
    // No accidental byte-twins: other UNKNOWN versions are absent from
    // icon's version list.
    const std::set<std::size_t> icon_versions(icon->variant_versions.begin(),
                                              icon->variant_versions.end());
    for (std::size_t i = 1; i < unknown->variant_versions.size(); ++i) {
        EXPECT_EQ(icon_versions.count(unknown->variant_versions[i]), 0u);
    }
}

TEST(Catalog, Figure4CompilerAssignments) {
    // Label -> expected provenance set (Figure 4 rows), via the comment
    // strings attached to the variant groups.
    std::map<std::string, std::set<std::string>> seen;
    for (const auto& soft : spec().software) {
        if (soft.path_pattern.find("a.out") != std::string::npos) continue;
        for (const auto& g : soft.groups) {
            for (const auto& comment : g.compilers) seen[soft.label].insert(comment);
        }
    }
    auto has = [&](const std::string& label, const std::string& prov) {
        return seen[label].count(sw::compiler_comment_for(prov)) != 0;
    };
    EXPECT_TRUE(has("LAMMPS", "GCC [SUSE]"));
    EXPECT_TRUE(has("LAMMPS", "LLD [AMD]"));
    EXPECT_TRUE(has("GROMACS", "LLD [AMD]"));
    EXPECT_FALSE(has("GROMACS", "GCC [SUSE]"));
    EXPECT_TRUE(has("miniconda", "GCC [conda]"));
    EXPECT_TRUE(has("miniconda", "rustc"));
    EXPECT_TRUE(has("janko", "GCC [HPE]"));
    EXPECT_TRUE(has("icon", "clang [Cray]"));
    EXPECT_TRUE(has("icon", "clang [AMD]"));
    EXPECT_TRUE(has("amber", "clang [AMD]"));
    EXPECT_TRUE(has("gzip", "LLD [AMD]"));
    EXPECT_TRUE(has("alexandria", "GCC [SUSE]"));
    EXPECT_TRUE(has("RadRad", "clang [Cray]"));
}

TEST(Catalog, MiniCampaignIsSelfConsistent) {
    const auto mini = sw::mini_campaign();
    EXPECT_FALSE(mini.users.empty());
    EXPECT_FALSE(mini.system_execs.empty());
    EXPECT_FALSE(mini.software.empty());
    for (const auto& soft : mini.software) {
        std::size_t variants = 0;
        for (const auto& g : soft.groups) variants += g.variants;
        for (const auto& alloc : soft.allocations) {
            for (const auto& run : alloc.runs) {
                EXPECT_LT(run.variant, variants) << soft.label;
            }
        }
        if (!soft.variant_versions.empty()) {
            EXPECT_EQ(soft.variant_versions.size(), variants) << soft.label;
        }
    }
}
