// Replication layer: segment shipping from a leader's durable directory
// into follower replicas — watermark resume, torn-chunk rejection and
// re-request, leader restart with a fresh segment sequence, multi-follower
// convergence against a direct-apply oracle, leader-kill survival, and the
// replica-aware client's round-robin/failover behavior. This is the
// acceptance path of the scale-out recognition deployment
// (docs/replication.md).

#include <gtest/gtest.h>
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "hashing/crc32c.hpp"

#include "behavior/shapelet.hpp"
#include "fuzzy/fuzzy.hpp"
#include "net/codec.hpp"
#include "net/message.hpp"
#include "serve/serve.hpp"
#include "sim/traces.hpp"
#include "storage/segment_store.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/rng.hpp"

namespace fs = std::filesystem;
namespace sf = siren::fuzzy;
namespace sv = siren::serve;
namespace ss = siren::storage;

namespace {

/// Unique scratch directory, removed on scope exit.
class ScratchDir {
public:
    explicit ScratchDir(const std::string& tag) {
        static std::atomic<int> counter{0};
        path_ = (fs::temp_directory_path() /
                 ("siren_repl_" + tag + "_" + std::to_string(::getpid()) + "_" +
                  std::to_string(counter.fetch_add(1))))
                    .string();
        fs::remove_all(path_);
        fs::create_directories(path_);
    }
    ~ScratchDir() {
        std::error_code ec;
        fs::remove_all(path_, ec);
    }
    const std::string& path() const { return path_; }
    std::string sub(const std::string& name) const { return path_ + "/" + name; }

private:
    std::string path_;
};

/// The wire datagram an ingest daemon journals for one FILE_H sighting.
std::string file_hash_datagram(const sf::FuzzyDigest& digest, std::uint64_t job = 7) {
    siren::net::Message m;
    m.job_id = job;
    m.pid = 4242;
    m.exe_hash = "00112233445566778899aabbccddeeff";
    m.host = "nid000012";
    m.time = 1753660800;
    m.type = siren::net::MsgType::kFileHash;
    m.content = digest.to_string();
    return siren::net::encode(m);
}

sv::ServeOptions fast_options() {
    sv::ServeOptions options;
    options.feed_poll = std::chrono::milliseconds(2);
    options.writer_idle = std::chrono::milliseconds(2);
    options.checkpoint_interval = std::chrono::milliseconds(0);
    return options;
}

/// Poll `done` until it holds or ~5s elapse; returns whether it held.
bool eventually(const std::function<bool()>& done,
                std::chrono::milliseconds limit = std::chrono::milliseconds(5000)) {
    const auto deadline = std::chrono::steady_clock::now() + limit;
    while (std::chrono::steady_clock::now() < deadline) {
        if (done()) return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return done();
}

/// Total bytes of every segment file under `dir`.
std::uint64_t dir_bytes(const std::string& dir) {
    std::uint64_t total = 0;
    for (const auto& path : ss::list_segments(dir)) {
        std::error_code ec;
        const auto size = fs::file_size(path, ec);
        if (!ec) total += size;
    }
    return total;
}

/// Replay a directory into a flat record list (canonical order).
std::vector<std::string> records_of(const std::string& dir) {
    std::vector<std::string> out;
    ss::replay_directory(dir, [&out](std::string_view r) { out.emplace_back(r); });
    return out;
}

sv::ReplicationFollowerOptions follow_options(std::uint16_t port, const std::string& dir) {
    sv::ReplicationFollowerOptions options;
    options.leader_port = port;
    options.directory = dir;
    options.reconnect_backoff = std::chrono::milliseconds(20);
    return options;
}

sv::ReplicationSourceOptions source_options(const std::string& dir) {
    sv::ReplicationSourceOptions options;
    options.segments_dir = dir;
    options.poll = std::chrono::milliseconds(2);
    return options;
}

}  // namespace

// ---------------------------------------------------------------------------
// Byte shipping

TEST(Replication, ShipsExistingAndLiveAppends) {
    ScratchDir dir("ship");
    const auto leader_dir = dir.sub("leader");
    const auto replica_dir = dir.sub("replica");
    ss::SegmentStore store(leader_dir, 2);
    store.append(0, "alpha");
    store.append(1, "beta");
    store.sync_all();

    sv::ReplicationSource source(source_options(leader_dir));
    sv::ReplicationFollower follower(follow_options(source.port(), replica_dir));

    ASSERT_TRUE(eventually([&] { return dir_bytes(replica_dir) == dir_bytes(leader_dir); }))
        << "catch-up never completed";
    EXPECT_EQ(records_of(replica_dir), records_of(leader_dir));

    // Live appends keep flowing — including a third stream born later.
    store.append(0, "gamma");
    store.append(1, "delta");
    store.sync_all();
    ASSERT_TRUE(eventually([&] { return dir_bytes(replica_dir) == dir_bytes(leader_dir); }));
    const auto leader_records = records_of(leader_dir);
    EXPECT_EQ(records_of(replica_dir), leader_records);
    EXPECT_EQ(leader_records.size(), 4u);
    EXPECT_GE(follower.stats().connects, 1u);
    EXPECT_EQ(follower.stats().chunk_drops, 0u);
}

TEST(Replication, WatermarkResumeAfterFollowerRestart) {
    ScratchDir dir("resume");
    const auto leader_dir = dir.sub("leader");
    const auto replica_dir = dir.sub("replica");
    ss::SegmentStore store(leader_dir, 1);
    for (int i = 0; i < 32; ++i) store.append(0, "first-" + std::to_string(i));
    store.sync_all();

    sv::ReplicationSource source(source_options(leader_dir));
    {
        sv::ReplicationFollower follower(follow_options(source.port(), replica_dir));
        ASSERT_TRUE(
            eventually([&] { return dir_bytes(replica_dir) == dir_bytes(leader_dir); }));
    }  // follower gone; its local files are the durable watermark

    const std::uint64_t already = dir_bytes(replica_dir);
    for (int i = 0; i < 8; ++i) store.append(0, "second-" + std::to_string(i));
    store.sync_all();

    sv::ReplicationFollower restarted(follow_options(source.port(), replica_dir));
    ASSERT_TRUE(eventually([&] { return dir_bytes(replica_dir) == dir_bytes(leader_dir); }));
    EXPECT_EQ(records_of(replica_dir), records_of(leader_dir));
    // Only the suffix crossed the wire after the restart: the resubscribe
    // announced the local sizes and the source shipped from there.
    EXPECT_EQ(restarted.stats().bytes, dir_bytes(leader_dir) - already);
    EXPECT_EQ(restarted.stats().duplicate_bytes, 0u);
}

TEST(Replication, LeaderRestartWithFreshSegmentSequence) {
    ScratchDir dir("leader_restart");
    const auto leader_dir = dir.sub("leader");
    const auto replica_dir = dir.sub("replica");
    {
        ss::SegmentStore store(leader_dir, 1);
        store.append(0, "run1-a");
        store.append(0, "run1-b");
        store.sync_all();
    }

    sv::ReplicationSource source(source_options(leader_dir));
    sv::ReplicationFollower follower(follow_options(source.port(), replica_dir));
    ASSERT_TRUE(eventually([&] { return dir_bytes(replica_dir) == dir_bytes(leader_dir); }));

    // "Restarted" leader process: a new store resumes the sequence after
    // the survivors, so its appends land in new files next to the old.
    ss::SegmentStore restarted(leader_dir, 1);
    restarted.append(0, "run2-a");
    restarted.sync_all();
    ASSERT_TRUE(eventually([&] { return dir_bytes(replica_dir) == dir_bytes(leader_dir); }));
    EXPECT_EQ(records_of(replica_dir), records_of(leader_dir));
    EXPECT_EQ(ss::list_segments(replica_dir).size(), 2u) << "fresh sequence = second file";
}

// ---------------------------------------------------------------------------
// Torn chunks: a corrupted frame mid-stream drops the connection and the
// follower re-requests from its watermark.

TEST(ReplicationSink, RejectsCorruptMalformedAndGappedChunks) {
    ScratchDir dir("sink");
    sv::ReplicationSink sink(dir.sub("replica"));
    std::string error;

    const auto frame = [](std::string_view name, std::uint64_t offset, std::string_view bytes,
                          std::uint32_t crc) {
        std::string payload = "DATA ";
        payload += name;
        payload += ' ' + std::to_string(offset) + ' ' + std::to_string(crc) + '\n';
        payload += bytes;
        return payload;
    };
    const std::string bytes = "0123456789abcdef";
    const std::uint32_t good = siren::hash::crc32c(bytes);

    EXPECT_TRUE(sink.apply_chunk(frame("a-0.seg", 0, bytes, good), error)) << error;
    EXPECT_FALSE(sink.apply_chunk(frame("a-0.seg", 16, bytes, good ^ 1), error))
        << "crc mismatch must drop the stream";
    EXPECT_EQ(sink.stats().crc_failures.load(), 1u);
    EXPECT_FALSE(sink.apply_chunk(frame("a-0.seg", 99, bytes, good), error))
        << "offset gap must drop the stream";
    EXPECT_FALSE(sink.apply_chunk(frame("../evil.seg", 0, bytes, good), error))
        << "path traversal must be rejected";
    EXPECT_FALSE(sink.apply_chunk(frame("nested/evil.seg", 0, bytes, good), error));
    EXPECT_FALSE(sink.apply_chunk("garbage frame", error));

    // Duplicate and overlapping chunks (reconnect races) are idempotent.
    EXPECT_TRUE(sink.apply_chunk(frame("a-0.seg", 0, bytes, good), error)) << error;
    EXPECT_EQ(sink.stats().duplicate_bytes.load(), bytes.size());
    const std::string tail = bytes.substr(8) + "XY";
    EXPECT_TRUE(sink.apply_chunk(frame("a-0.seg", 8, tail, siren::hash::crc32c(tail)), error))
        << error;
    std::ifstream in(dir.sub("replica") + "/a-0.seg", std::ios::binary);
    std::stringstream got;
    got << in.rdbuf();
    EXPECT_EQ(got.str(), bytes + "XY");
}

TEST(Replication, TornChunkMidStreamReRequestsFromWatermark) {
    // A rogue "leader" sends one good chunk, then a corrupted one, then —
    // on the reconnect — the honest remainder. The follower must land
    // exactly the leader's bytes, re-requesting from its watermark.
    ScratchDir dir("torn");
    const auto replica_dir = dir.sub("replica");
    const std::string name = "evil-00000000.seg";
    std::string body = "SIRENSG1";  // fake segment bytes; the sink ships, not parses
    body += std::string(8, '\0');
    for (int i = 0; i < 64; ++i) body += "payload-" + std::to_string(i);

    const int listen_fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    ASSERT_GE(listen_fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ASSERT_EQ(::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
    ASSERT_EQ(::listen(listen_fd, 4), 0);
    socklen_t len = sizeof addr;
    ASSERT_EQ(::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
    const std::uint16_t port = ntohs(addr.sin_port);

    const auto chunk_frame = [&](std::uint64_t offset, std::string_view bytes,
                                 bool corrupt) {
        std::string header = "DATA " + name + ' ' + std::to_string(offset) + ' ' +
                             std::to_string(siren::hash::crc32c(bytes) ^ (corrupt ? 1u : 0u)) +
                             '\n';
        std::string out;
        sv::append_frame(out, header + std::string(bytes));
        return out;
    };
    const auto read_subscribe = [](int fd) {
        // Read until the SUBSCRIBE frame is complete (length prefix + body).
        std::string in;
        char buf[4096];
        for (;;) {
            std::size_t consumed = 0;
            if (sv::parse_frame(in, consumed).has_value()) return true;
            const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
            if (n <= 0) return false;
            in.append(buf, static_cast<std::size_t>(n));
        }
    };

    std::atomic<bool> served_second{false};
    std::thread rogue([&] {
        // Session 1: half the body, then a corrupted chunk.
        int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd < 0) return;
        if (read_subscribe(fd)) {
            const auto good = chunk_frame(0, std::string_view(body).substr(0, 100), false);
            const auto bad = chunk_frame(100, std::string_view(body).substr(100, 50), true);
            (void)!::send(fd, good.data(), good.size(), MSG_NOSIGNAL);
            (void)!::send(fd, bad.data(), bad.size(), MSG_NOSIGNAL);
        }
        // The follower drops the connection on the bad chunk; wait for it.
        char sink_buf[256];
        while (::recv(fd, sink_buf, sizeof sink_buf, 0) > 0) {
        }
        ::close(fd);

        // Session 2 (the reconnect): honest remainder from the announced
        // watermark — which must be 100, not 150.
        fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd < 0) return;
        if (read_subscribe(fd)) {
            const auto rest = chunk_frame(100, std::string_view(body).substr(100), false);
            (void)!::send(fd, rest.data(), rest.size(), MSG_NOSIGNAL);
            served_second.store(true);
        }
        // Hold the session open until the test finishes shipping.
        char sink_buf2[256];
        while (::recv(fd, sink_buf2, sizeof sink_buf2, 0) > 0) {
        }
        ::close(fd);
    });

    {
        sv::ReplicationFollower follower(follow_options(port, replica_dir));
        ASSERT_TRUE(eventually([&] { return dir_bytes(replica_dir) == body.size(); }))
            << "shipped " << dir_bytes(replica_dir) << " of " << body.size();
        EXPECT_GE(follower.stats().chunk_drops, 1u);
        EXPECT_EQ(follower.stats().connects, 2u) << "one reconnect after the torn chunk";
        follower.stop();
    }
    ::close(listen_fd);
    rogue.join();
    EXPECT_TRUE(served_second.load());

    std::ifstream in(replica_dir + "/" + name, std::ios::binary);
    std::stringstream got;
    got << in.rdbuf();
    EXPECT_EQ(got.str(), body) << "corrupted bytes must never land";
}

// ---------------------------------------------------------------------------
// End-to-end: leader service + followers converge; leader death tolerated.

TEST(Replication, FollowersConvergeToLeaderAndOracle) {
    ScratchDir dir("converge");
    const auto leader_dir = dir.sub("leader");

    auto leader_options = fast_options();
    leader_options.segments_dir = leader_dir;
    leader_options.replication.observe_wal = true;
    leader_options.replication.wal_fsync = false;
    sv::RecognitionService leader(leader_options);
    sv::ReplicationSource source(source_options(leader_dir));

    // A corpus with hinted and anonymous sightings, plus drifted variants
    // that exercise family joining.
    siren::util::Rng rng(97);
    std::vector<sf::FuzzyDigest> corpus;
    for (int fam = 0; fam < 6; ++fam) {
        auto base = rng.bytes(8192);
        corpus.push_back(sf::fuzzy_hash(base));
        for (std::size_t i = 3000; i < 3400; ++i) {
            base[i] = static_cast<std::uint8_t>(rng.below(256));
        }
        corpus.push_back(sf::fuzzy_hash(base));
    }
    for (std::size_t i = 0; i < corpus.size(); ++i) {
        const std::string hint = i % 3 == 0 ? "app-" + std::to_string(i / 2) : std::string();
        leader.observe_sync(corpus[i], hint);
    }

    // Direct-apply oracle: the same stream applied to a bare registry in
    // the same order must equal what every replica converges to.
    siren::recognize::Registry oracle(leader_options.registry);
    ss::replay_directory(leader_dir, [&oracle](std::string_view record) {
        siren::net::MessageView view;
        siren::net::decode_view(record, view);
        const std::string content = view.content_str();
        const auto space = content.find(' ');
        oracle.observe(
            sf::FuzzyDigest::parse(std::string_view(content).substr(0, space)),
            space == std::string::npos ? std::string_view{}
                                       : std::string_view(content).substr(space + 1));
    });
    ASSERT_EQ(oracle.fingerprint(), leader.snapshot()->registry.fingerprint())
        << "leader must equal its own WAL replayed (single apply path)";

    auto follower_service_options = [&](const std::string& replica_dir) {
        auto o = fast_options();
        o.segments_dir = replica_dir;
        o.replication.read_only = true;
        return o;
    };
    sv::ReplicationFollower ship_a(follow_options(source.port(), dir.sub("replica_a")));
    sv::ReplicationFollower ship_b(follow_options(source.port(), dir.sub("replica_b")));
    sv::RecognitionService follower_a(follower_service_options(dir.sub("replica_a")));
    sv::RecognitionService follower_b(follower_service_options(dir.sub("replica_b")));

    const auto target = oracle.fingerprint();
    const auto converged = [&](sv::RecognitionService& s) {
        return s.snapshot()->registry.fingerprint() == target;
    };
    ASSERT_TRUE(eventually([&] { return converged(follower_a) && converged(follower_b); }))
        << "followers a/b fingerprints "
        << follower_a.snapshot()->registry.fingerprint() << '/'
        << follower_b.snapshot()->registry.fingerprint() << " vs oracle " << target;

    // families() agree member-by-member, not just by fingerprint.
    const auto expect = oracle.families();
    for (auto* service : {&follower_a, &follower_b}) {
        const auto got = service->snapshot()->registry.families();
        ASSERT_EQ(got.size(), expect.size());
        for (std::size_t i = 0; i < expect.size(); ++i) {
            EXPECT_EQ(got[i].name, expect[i].name) << i;
            EXPECT_EQ(got[i].sightings, expect[i].sightings) << i;
            EXPECT_EQ(got[i].exemplars, expect[i].exemplars) << i;
        }
    }

    // Leader dies; the follower keeps answering from its own snapshots and
    // converges again after the leader returns.
    source.stop();
    leader.stop();
    const auto probe = leader.identify(corpus.front());
    ASSERT_TRUE(probe.has_value());
    const auto match = follower_a.identify(corpus.front());
    ASSERT_TRUE(match.has_value()) << "follower must survive leader death";
    EXPECT_EQ(match->name, probe->name);
}

TEST(Replication, FollowerServiceResumesFromCheckpointAndReplicaFiles) {
    // Follower-side crash recovery: service checkpoint watermark + the
    // replica files themselves resume cleanly, then keep following.
    ScratchDir dir("follower_ckpt");
    const auto leader_dir = dir.sub("leader");
    const auto replica_dir = dir.sub("replica");
    const auto ckpt = dir.sub("replica.ckpt");
    ss::SegmentStore store(leader_dir, 1);
    siren::util::Rng rng(101);
    const auto first = sf::fuzzy_hash(rng.bytes(8192));
    const auto second = sf::fuzzy_hash(rng.bytes(8192));
    store.append(0, file_hash_datagram(first));
    store.sync_all();

    sv::ReplicationSource source(source_options(leader_dir));
    sv::ReplicationFollower follower(follow_options(source.port(), replica_dir));
    {
        auto options = fast_options();
        options.segments_dir = replica_dir;
        options.replication.read_only = true;
        options.checkpoint_path = ckpt;
        sv::RecognitionService service(options);
        ASSERT_TRUE(
            eventually([&] { return service.identify(first).has_value(); }));
        service.stop();  // final checkpoint carries the tail watermark
    }

    store.append(0, file_hash_datagram(second));
    store.sync_all();

    auto options = fast_options();
    options.segments_dir = replica_dir;
    options.replication.read_only = true;
    options.checkpoint_path = ckpt;
    sv::RecognitionService restarted(options);
    EXPECT_TRUE(restarted.identify(first).has_value()) << "checkpointed state lost";
    ASSERT_TRUE(eventually([&] { return restarted.identify(second).has_value(); }))
        << "restarted follower stopped following";
    EXPECT_EQ(restarted.snapshot()->registry.total_sightings(), 2u)
        << "watermark resume must not re-observe";
}

// ---------------------------------------------------------------------------
// Protocol face: read-only followers and the replica-aware client.

TEST(ReplicaClient, ParsesListsAndRejectsGarbage) {
    const auto list = sv::parse_replica_list("10.0.0.1:9743,10.0.0.2:9743, 10.0.0.3:17 ,");
    ASSERT_EQ(list.size(), 3u);
    EXPECT_EQ(list[0].host, "10.0.0.1");
    EXPECT_EQ(list[2].port, 17);
    EXPECT_THROW(sv::parse_replica_list(""), siren::util::ParseError);
    EXPECT_THROW(sv::parse_replica_list("nohost"), siren::util::ParseError);
    EXPECT_THROW(sv::parse_replica_list(":123"), siren::util::ParseError);
    EXPECT_THROW(sv::parse_replica_list("h:0"), siren::util::ParseError);
    EXPECT_THROW(sv::parse_replica_list("h:99999"), siren::util::ParseError);
    EXPECT_THROW(sv::parse_replica_list("h:12x"), siren::util::ParseError);
}

TEST(ReplicaClient, ReadOnlyFollowerBouncesObserveToLeader) {
    sv::RecognitionService leader(fast_options());
    auto follower_options = fast_options();
    follower_options.replication.read_only = true;
    sv::RecognitionService follower(follower_options);
    sv::QueryServer leader_server(leader);
    sv::QueryServer follower_server(follower);

    siren::util::Rng rng(103);
    const auto digest = sf::fuzzy_hash(rng.bytes(8192)).to_string();

    // Follower first in the list: the observe must bounce to the leader.
    sv::ReplicaClient client({{"127.0.0.1", follower_server.port()},
                              {"127.0.0.1", leader_server.port()}});
    const auto observed = client.observe(digest, "icon");
    EXPECT_TRUE(observed.new_family);
    EXPECT_EQ(observed.name, "icon");
    EXPECT_GE(client.stats().read_only_redirects, 1u);
    EXPECT_EQ(leader.snapshot()->registry.family_count(), 1u);
    EXPECT_EQ(follower.snapshot()->registry.family_count(), 0u);

    // Direct protocol check too: the rejection carries the marker.
    sv::QueryClient raw("127.0.0.1", follower_server.port());
    const auto reply = raw.request("OBSERVE " + digest);
    EXPECT_TRUE(reply.starts_with("ERR")) << reply;
    EXPECT_NE(reply.find(sv::kReadOnlyError), std::string::npos) << reply;
    EXPECT_NE(raw.request("STATS").find("role follower"), std::string::npos);
}

TEST(ReplicaClient, SpreadsReadsAndFailsOverOnDeadReplica) {
    auto options = fast_options();
    sv::RecognitionService service_a(options);
    sv::RecognitionService service_b(options);
    siren::util::Rng rng(107);
    const auto digest = sf::fuzzy_hash(rng.bytes(8192));
    service_a.observe_sync(digest, "icon");
    service_b.observe_sync(digest, "icon");

    auto server_a = std::make_unique<sv::QueryServer>(service_a);
    auto server_b = std::make_unique<sv::QueryServer>(service_b);
    sv::ReplicaClient client({{"127.0.0.1", server_a->port()},
                              {"127.0.0.1", server_b->port()}},
                             std::chrono::milliseconds(500));

    const std::string probe = digest.to_string();
    for (int i = 0; i < 4; ++i) {
        const auto match = client.identify(probe);
        ASSERT_TRUE(match.has_value());
        EXPECT_EQ(match->name, "icon");
    }
    // Round-robin touched both servers.
    EXPECT_GE(service_a.counters().identifies, 2u);
    EXPECT_GE(service_b.counters().identifies, 2u);

    // Kill one replica: every read still answers, with failovers counted.
    server_a.reset();
    for (int i = 0; i < 4; ++i) {
        const auto match = client.identify(probe);
        ASSERT_TRUE(match.has_value());
        EXPECT_EQ(match->name, "icon");
    }
    EXPECT_GE(client.stats().failovers, 1u);

    // Both replicas gone: the transport error finally surfaces.
    server_b.reset();
    EXPECT_THROW((void)client.identify(probe), siren::util::SystemError);
}

// ---------------------------------------------------------------------------
// Leader observe WAL details.

TEST(RecognitionService, ObserveWalJournalsAndRecoversClientObserves) {
    ScratchDir dir("wal");
    const auto segments = dir.sub("segments");
    siren::util::Rng rng(109);
    const auto digest = sf::fuzzy_hash(rng.bytes(8192));
    std::string observed_name;
    {
        auto options = fast_options();
        options.segments_dir = segments;
        options.replication.observe_wal = true;
        options.replication.wal_fsync = false;
        sv::RecognitionService leader(options);
        const auto applied = leader.observe_sync(digest, "icon");
        EXPECT_TRUE(applied.new_family);
        observed_name = applied.name;
        EXPECT_EQ(leader.counters().observes_journaled, 1u);
        EXPECT_EQ(leader.counters().wal_fallbacks, 0u);
        EXPECT_EQ(leader.counters().feed_file_hashes, 1u)
            << "the observe must come back through the feed";
        leader.stop();
    }
    // No checkpoint at all: a restarted leader recovers the TCP observe
    // from its own WAL — the durability hole the WAL closes.
    auto options = fast_options();
    options.segments_dir = segments;
    options.replication.observe_wal = true;
    options.replication.wal_fsync = false;
    sv::RecognitionService restarted(options);
    const auto match = restarted.identify(digest);
    ASSERT_TRUE(match.has_value());
    EXPECT_EQ(match->name, observed_name);
    EXPECT_EQ(match->name, "icon");
}

TEST(RecognitionService, SpoofedHintOnIngestStreamNeverNamesAFamily) {
    // "digest hint" content is an obs- stream privilege: the same bytes
    // arriving through a (spoofable, UDP-fed) ingest shard stream are
    // treated as one digest string — the attacker's label is never split
    // off and can never name a family.
    ScratchDir dir("spoof");
    siren::util::Rng rng(113);
    const auto digest = sf::fuzzy_hash(rng.bytes(8192));
    siren::net::Message m;
    m.job_id = 1;  // a job id that could collide with an observe seq
    m.type = siren::net::MsgType::kFileHash;
    m.content = digest.to_string() + " EvilName";
    ss::SegmentStore store(dir.path(), 1);
    store.append(0, siren::net::encode(m));
    store.sync_all();

    auto options = fast_options();
    options.segments_dir = dir.path();
    options.replication.observe_wal = true;
    options.replication.wal_fsync = false;
    sv::RecognitionService service(options);
    service.flush();
    for (const auto& fam : service.snapshot()->registry.families()) {
        EXPECT_NE(fam.name.find("family-"), std::string::npos)
            << "spoofed hint '" << fam.name << "' named a family";
    }

    // The same digest through the legitimate observe WAL does label.
    const auto applied = service.observe_sync(digest, "GoodName");
    EXPECT_EQ(applied.name, "GoodName");
    const auto match = service.identify(digest);
    ASSERT_TRUE(match.has_value());
    EXPECT_EQ(match->name, "GoodName");
}

TEST(RecognitionService, ObserveWalRequiresSegmentsDir) {
    auto options = fast_options();
    options.replication.observe_wal = true;
    EXPECT_THROW(sv::RecognitionService{options}, siren::util::Error);
}

// ---------------------------------------------------------------------------
// Behavioral channel replication

namespace {

std::vector<double> repl_family_trace(std::size_t family, std::uint64_t run_seed) {
    siren::sim::TraceRecipe recipe;
    recipe.lineage = "repl/" + std::to_string(family);
    recipe.samples = 256;
    recipe.run_seed = run_seed;
    return siren::sim::synthesize_trace(recipe);
}

}  // namespace

TEST(Replication, BehavioralRecordsShipAndFingerprintDetectsDivergence) {
    // The behavior channel must ride the same segment-shipping path as
    // content sightings, and Registry::fingerprint() must cover it — a
    // replica whose behavior channel silently drifted has to show up in
    // the one-integer convergence audit, not only in a family-by-family
    // diff of the content channel.
    ScratchDir dir("behavior");
    const auto leader_dir = dir.sub("leader");
    const auto replica_dir = dir.sub("replica");

    auto leader_options = fast_options();
    leader_options.segments_dir = leader_dir;
    leader_options.replication.observe_wal = true;
    leader_options.replication.wal_fsync = false;
    sv::RecognitionService leader(leader_options);

    siren::util::Rng rng(113);
    const auto content = sf::fuzzy_hash(rng.bytes(8192));
    leader.observe_sync(content, "chroma");
    leader.observe_behavior_sync(
        siren::behavior::shapelet_digest(repl_family_trace(1, 1)), "chroma");
    leader.flush();
    const auto leader_fp = leader.snapshot()->registry.fingerprint();

    sv::ReplicationSource source(source_options(leader_dir));
    sv::ReplicationFollower ship(follow_options(source.port(), replica_dir));
    auto follower_options = fast_options();
    follower_options.segments_dir = replica_dir;
    follower_options.replication.read_only = true;
    sv::RecognitionService follower(follower_options);

    ASSERT_TRUE(eventually(
        [&] { return follower.snapshot()->registry.fingerprint() == leader_fp; }))
        << "follower fingerprint " << follower.snapshot()->registry.fingerprint()
        << " never converged to leader " << leader_fp;
    EXPECT_EQ(follower.snapshot()->registry.behavior_digest_count(), 1u);

    // A fresh run of the workload is recognizable on the follower.
    const auto match = follower.identify_behavior(
        siren::behavior::shapelet_digest(repl_family_trace(1, 2)));
    ASSERT_TRUE(match.has_value());
    EXPECT_EQ(match->name, "chroma");

    // Divergence: a behavioral record applied on the follower but not the
    // leader (in-process observe bypasses the read-only network guard —
    // the simulated fault). Content channels still agree; only the
    // fingerprint exposes the drift.
    follower.observe_behavior_sync(
        siren::behavior::shapelet_digest(repl_family_trace(2, 1)), "rogue");
    const auto diverged = follower.snapshot()->registry;
    EXPECT_EQ(diverged.content_digest_count(),
              leader.snapshot()->registry.content_digest_count());
    EXPECT_NE(diverged.fingerprint(), leader.snapshot()->registry.fingerprint())
        << "behavior-channel divergence must break the fingerprint";
}

// ---------------------------------------------------------------------------
// Degraded-path behavior: reconnect backoff and injected corruption

TEST(Replication, ReconnectBackoffGrowsWithJitterOnDeadLeader) {
    ScratchDir dir("backoff");

    // Grab a port nothing listens on: bind, read it back, close.
    int probe = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(probe, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ASSERT_EQ(::bind(probe, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
    socklen_t len = sizeof addr;
    ASSERT_EQ(::getsockname(probe, reinterpret_cast<sockaddr*>(&addr), &len), 0);
    const auto dead_port = ntohs(addr.sin_port);
    ::close(probe);

    auto options = follow_options(dead_port, dir.sub("replica"));
    options.reconnect_backoff = std::chrono::milliseconds(10);
    options.reconnect_backoff_cap = std::chrono::milliseconds(80);
    sv::ReplicationFollower follower(options);

    // Every connect fails, so pauses are taken and the jittered pause
    // eventually exceeds the floor (the ceiling doubles per failure). All
    // pauses stay within [floor, cap].
    std::uint64_t max_pause = 0;
    ASSERT_TRUE(eventually([&] {
        const auto stats = follower.stats();
        if (stats.last_backoff_ms > 0) {
            EXPECT_GE(stats.last_backoff_ms, 10u);
            EXPECT_LE(stats.last_backoff_ms, 80u);
            max_pause = std::max(max_pause, stats.last_backoff_ms);
        }
        return stats.backoffs >= 6 && max_pause > 10;
    })) << "backoffs=" << follower.stats().backoffs << " max_pause=" << max_pause;
    EXPECT_EQ(follower.stats().connects, 0u);
    EXPECT_NE(follower.stats().last_error, "");
}

TEST(ReplicationFailpoints, CorruptedChunksDropConnectionsButConverge) {
    namespace fp = siren::util::failpoint;
    if (!fp::compiled_in()) {
        GTEST_SKIP() << "needs -DSIREN_FAILPOINTS=ON";
    }
    fp::clear();
    ScratchDir dir("corrupt");
    const auto leader_dir = dir.sub("leader");
    const auto replica_dir = dir.sub("replica");
    ss::SegmentStore store(leader_dir, 2);
    for (int i = 0; i < 16; ++i) {
        store.append(i % 2, "record-" + std::to_string(i));
    }
    store.sync_all();

    // Every other shipped chunk arrives with a flipped byte: the sink's
    // CRC must catch each one, the follower drops and resubscribes from
    // its watermark, and the replica still converges byte-for-byte. Tiny
    // chunks make the backlog ship in many pieces so the cadence gets
    // plenty of hits.
    fp::activate("replication.source.corrupt", "corrupt-byte%2");
    auto src_options = source_options(leader_dir);
    src_options.chunk_bytes = 64;
    sv::ReplicationSource source(src_options);
    auto options = follow_options(source.port(), replica_dir);
    options.reconnect_backoff = std::chrono::milliseconds(5);
    sv::ReplicationFollower follower(options);

    ASSERT_TRUE(eventually([&] { return follower.stats().chunk_drops >= 2; }))
        << "injected corruption must surface as counted chunk drops";
    EXPECT_GE(fp::fire_count("replication.source.corrupt"), 2u);

    // Disarmed, every retry ships clean: the watermark protocol recovers
    // the replica byte-for-byte and pays a counted pause per drop taken.
    fp::clear();
    ASSERT_TRUE(eventually([&] { return dir_bytes(replica_dir) == dir_bytes(leader_dir); }))
        << "resubscribes from the watermark must drain the backlog";
    EXPECT_EQ(records_of(replica_dir), records_of(leader_dir));
    EXPECT_GE(follower.stats().backoffs, 1u) << "each drop pays a reconnect pause";

    store.append(0, "epilogue");
    store.sync_all();
    ASSERT_TRUE(eventually([&] { return dir_bytes(replica_dir) == dir_bytes(leader_dir); }));
    EXPECT_EQ(records_of(replica_dir), records_of(leader_dir));
}
