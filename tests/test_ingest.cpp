// Sharded epoll ingest daemon: SPSC ring semantics, the inject (ring ->
// arena -> decode_view -> handler) pipeline, real SO_REUSEPORT UDP
// loopback, durable journaling, and crash recovery into the database.

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/siren.hpp"
#include "db/message_store.hpp"
#include "ingest/ingest_server.hpp"
#include "ingest/spsc_ring.hpp"
#include "net/codec.hpp"
#include "net/udp.hpp"
#include "storage/segment_store.hpp"
#include "util/error.hpp"

namespace si = siren::ingest;
namespace sn = siren::net;
namespace fs = std::filesystem;

namespace {

sn::Message sample_message(int pid = 4242) {
    sn::Message m;
    m.job_id = 1000042;
    m.pid = pid;
    m.exe_hash = "00ff00ff00ff00ff00ff00ff00ff00ff";
    m.host = "nid000123";
    m.time = 1733900000;
    m.type = sn::MsgType::kObjects;
    m.content = "/lib64/libc.so.6\n/opt/siren/lib/siren.so";
    return m;
}

class TempDir {
public:
    TempDir() {
        path_ = (fs::temp_directory_path() /
                 ("siren_ingest_" + std::to_string(::getpid()) + "_" +
                  std::to_string(counter_++)))
                    .string();
        fs::remove_all(path_);
    }
    ~TempDir() {
        std::error_code ec;
        fs::remove_all(path_, ec);
    }
    const std::string& path() const { return path_; }

private:
    static inline int counter_ = 0;
    std::string path_;
};

}  // namespace

TEST(SpscRing, FifoOrderAndContent) {
    si::SpscRing ring(8);
    EXPECT_EQ(ring.capacity(), 8u);
    for (int i = 0; i < 5; ++i) EXPECT_TRUE(ring.push("msg-" + std::to_string(i)));

    std::vector<std::string> out;
    EXPECT_EQ(ring.drain([&](std::string_view d) { out.emplace_back(d); }, 3), 3u);
    EXPECT_EQ(ring.drain([&](std::string_view d) { out.emplace_back(d); }, 100), 2u);
    ASSERT_EQ(out.size(), 5u);
    for (int i = 0; i < 5; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], "msg-" + std::to_string(i));
    EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, FullRingRejectsUntilDrained) {
    si::SpscRing ring(4);
    for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.push("x"));
    EXPECT_FALSE(ring.push("overflow"));
    EXPECT_EQ(ring.drain([](std::string_view) {}, 1), 1u);
    EXPECT_TRUE(ring.push("now fits"));
}

TEST(SpscRing, OversizeDatagramRejected) {
    si::SpscRing ring(4);
    EXPECT_FALSE(ring.push(std::string(si::SpscRing::kSlotBytes + 1, 'x')));
    EXPECT_TRUE(ring.push(std::string(si::SpscRing::kSlotBytes, 'x')));  // exactly fits
}

TEST(SpscRing, ThreadedStressPreservesEveryRecordInOrder) {
    si::SpscRing ring(256);
    constexpr std::uint64_t kCount = 200000;

    std::thread producer([&ring] {
        for (std::uint64_t i = 0; i < kCount; ++i) {
            const std::string payload = "seq=" + std::to_string(i);
            while (!ring.push(payload)) std::this_thread::yield();
        }
    });

    std::uint64_t next = 0;
    while (next < kCount) {
        ring.drain(
            [&next](std::string_view d) {
                ASSERT_EQ(d, "seq=" + std::to_string(next));
                ++next;
            },
            64);
    }
    producer.join();
    EXPECT_EQ(next, kCount);
    EXPECT_TRUE(ring.empty());
}

TEST(IngestServer, InjectPipelineDecodesAndBatches) {
    si::IngestOptions options;
    options.shards = 4;
    std::atomic<std::uint64_t> handled{0};
    std::atomic<std::uint64_t> batches{0};
    si::IngestServer server(options,
                            [&](std::size_t, std::span<const sn::MessageView> batch) {
                                handled.fetch_add(batch.size());
                                batches.fetch_add(1);
                            });
    EXPECT_EQ(server.shards(), 4u);

    constexpr int kMessages = 4000;
    const std::string wire = sn::encode(sample_message());
    for (int i = 0; i < kMessages; ++i) {
        while (!server.inject(static_cast<std::size_t>(i) % 4, wire)) {
            std::this_thread::yield();
        }
    }
    server.inject(0, "not a SIREN datagram");
    server.drain();

    const auto stats = server.stats();
    EXPECT_EQ(stats.decoded, kMessages);
    EXPECT_EQ(stats.malformed, 1u);
    EXPECT_EQ(handled.load(), kMessages);
    EXPECT_GT(batches.load(), 0u);
    EXPECT_LE(batches.load(), stats.batches);
    server.stop();
}

TEST(IngestServer, HandlerSeesDecodedFields) {
    si::IngestOptions options;
    options.shards = 1;
    std::atomic<bool> seen{false};
    si::IngestServer server(options,
                            [&](std::size_t shard, std::span<const sn::MessageView> batch) {
                                ASSERT_EQ(shard, 0u);
                                for (const auto& view : batch) {
                                    EXPECT_EQ(view.to_message(), sample_message(7));
                                    seen.store(true);
                                }
                            });
    server.inject(0, sn::encode(sample_message(7)));
    server.drain();
    EXPECT_TRUE(seen.load());
    server.stop();
}

TEST(IngestServer, RealUdpLoopbackAcrossReuseportShards) {
    si::IngestOptions options;
    options.shards = 2;
    std::atomic<std::uint64_t> handled{0};
    si::IngestServer server(options, [&](std::size_t, std::span<const sn::MessageView> batch) {
        handled.fetch_add(batch.size());
    });
    ASSERT_GT(server.port(), 0);

    constexpr int kMessages = 500;
    sn::UdpSender sender("127.0.0.1", server.port());
    for (int i = 0; i < kMessages; ++i) sender.send(sn::encode(sample_message(i)));
    EXPECT_EQ(sender.errors(), 0u);
    server.quiesce();

    // UDP on loopback may legally drop under pressure; expect the vast
    // majority to land (mirrors the Udp.LoopbackSendReceive tolerance).
    EXPECT_GE(handled.load(), static_cast<std::uint64_t>(kMessages) * 9 / 10);
    EXPECT_EQ(server.stats().malformed, 0u);
    server.stop();
}

TEST(IngestServer, BindAddressIsConfigurable) {
    // The deployed collector binds a non-loopback address so remote nodes
    // can reach it; the wildcard still accepts loopback traffic, which is
    // what a single-host test can exercise.
    si::IngestOptions options;
    options.shards = 1;
    options.bind_address = "0.0.0.0";
    std::atomic<std::uint64_t> handled{0};
    si::IngestServer server(options, [&](std::size_t, std::span<const sn::MessageView> batch) {
        handled.fetch_add(batch.size());
    });
    sn::UdpSender sender("127.0.0.1", server.port());
    for (int i = 0; i < 50; ++i) sender.send(sn::encode(sample_message(i)));
    server.quiesce();
    EXPECT_GT(handled.load(), 0u);
    server.stop();

    si::IngestOptions bad;
    bad.bind_address = "not-an-address";
    EXPECT_THROW(si::IngestServer(bad, nullptr), siren::util::SystemError);
}

TEST(IngestServer, StopIsPromptAndIdempotent) {
    si::IngestOptions options;
    options.shards = 3;
    si::IngestServer server(options, nullptr);
    const auto start = std::chrono::steady_clock::now();
    server.stop();
    const auto elapsed = std::chrono::steady_clock::now() - start;
    EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(), 2000)
        << "eventfd wakeups must beat the epoll timeout";
    EXPECT_NO_THROW(server.stop());
}

TEST(IngestServer, DurableModeJournalsEveryDatagramForReplay) {
    TempDir dir;
    constexpr std::size_t kShards = 2;
    constexpr int kMessages = 1000;
    {
        siren::storage::SegmentStore store(dir.path(), kShards);
        si::IngestOptions options;
        options.shards = kShards;
        options.store = &store;
        si::IngestServer server(options, nullptr);
        const std::string wire = sn::encode(sample_message());
        for (int i = 0; i < kMessages; ++i) {
            while (!server.inject(static_cast<std::size_t>(i) % kShards, wire)) {
                std::this_thread::yield();
            }
        }
        server.inject(0, "garbage goes to the journal too");
        server.drain();
        server.stop();
        EXPECT_EQ(server.stats().appended, kMessages + 1u);
        EXPECT_EQ(server.stats().storage_errors, 0u);
    }
    // A fresh process replays the raw traffic byte for byte.
    std::uint64_t replayed = 0;
    std::uint64_t garbage = 0;
    const auto stats =
        siren::storage::replay_directory(dir.path(), [&](std::string_view record) {
            if (record.starts_with("SIREN1|")) {
                ++replayed;
            } else {
                ++garbage;
            }
        });
    EXPECT_EQ(replayed, kMessages);
    EXPECT_EQ(garbage, 1u);
    EXPECT_EQ(stats.torn_tails, 0u);
}

TEST(IngestServer, BackgroundCompactionRemovesSealedSegments) {
    TempDir dir;
    siren::storage::SegmentOptions seg_options;
    seg_options.max_segment_bytes = 4096;  // rotate often
    siren::storage::SegmentStore store(dir.path(), 1, seg_options);

    si::IngestOptions options;
    options.shards = 1;
    options.store = &store;
    options.compaction_interval = std::chrono::milliseconds(20);
    options.compact_sealed = true;
    si::IngestServer server(options, nullptr);

    const std::string wire = sn::encode(sample_message());
    for (int i = 0; i < 2000; ++i) {
        while (!server.inject(0, wire)) std::this_thread::yield();
    }
    server.drain();
    ASSERT_GT(store.segments_sealed(), 0u);
    for (int spin = 0; spin < 200 && store.segments_compacted() == 0; ++spin) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    server.stop();
    EXPECT_GT(store.segments_compacted(), 0u);
    EXPECT_GT(server.stats().compactions, 0u);
}

TEST(ReceiverService, DurableModeJournalsAndRecovers) {
    TempDir dir;
    constexpr int kMessages = 300;
    {
        siren::storage::SegmentStore wal(dir.path(), 2);
        siren::db::Database db;
        sn::MessageQueue queue(1 << 12);
        siren::db::ReceiverService service(queue, db, /*workers=*/2, &wal);
        for (int i = 0; i < kMessages; ++i) queue.push(sample_message(i));
        queue.close();
        service.finish();
        EXPECT_EQ(service.inserted(), kMessages);
        EXPECT_EQ(service.journaled(), kMessages);
        EXPECT_EQ(db.table(siren::db::kMessagesTable).row_count(), kMessages);
    }
    // "Crash": the database object is gone; only segments remain. Rebuild.
    siren::db::Database recovered;
    const auto result = siren::db::replay_segments(dir.path(), recovered);
    EXPECT_EQ(result.inserted, kMessages);
    EXPECT_EQ(result.malformed, 0u);
    EXPECT_EQ(recovered.table(siren::db::kMessagesTable).row_count(), kMessages);

    // Spot-check a full message round trip through WAL encode/decode.
    const auto& table = recovered.table(siren::db::kMessagesTable);
    bool found = false;
    for (std::size_t row = 0; row < table.row_count(); ++row) {
        const auto m = siren::db::message_from_row(table, row);
        if (m.pid == 123) {
            EXPECT_EQ(m, sample_message(123));
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(Framework, IngestModeCampaignProducesAggregatesAndWal) {
    TempDir dir;
    siren::FrameworkOptions options;
    options.scale = 1.0;
    options.seed = 11;
    options.use_database = true;
    options.use_ingest = true;
    options.ingest_shards = 2;
    options.durable_dir = dir.path();

    const siren::CampaignResult result =
        run_campaign(siren::workload::mini_campaign(), options);
    ASSERT_NE(result.database, nullptr);
    EXPECT_EQ(result.collection_errors, 0u);
    EXPECT_GT(result.totals.processes, 100u);
    EXPECT_EQ(result.processes_collected, result.totals.processes);
    EXPECT_GT(result.datagrams_sent, result.totals.processes);
    EXPECT_GT(result.records.size(), 0u);
    EXPECT_GT(result.aggregates.total_processes, 0u);

    // Every datagram the daemon accepted was journaled before decode.
    EXPECT_GT(result.wal_records, 0u);
    std::uint64_t replayed = 0;
    siren::storage::replay_directory(dir.path(), [&](std::string_view) { ++replayed; });
    EXPECT_EQ(replayed, result.wal_records);
}
