// Workload substrate: binary synthesizer drift model, campaign catalog
// consistency, generator planning and determinism.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "analytics/libfilter.hpp"
#include "collect/exe_store.hpp"
#include "elfio/elfio.hpp"
#include "fuzzy/fuzzy.hpp"
#include "workload/campaign.hpp"
#include "workload/generator.hpp"
#include "workload/synthesizer.hpp"

namespace sw = siren::workload;
namespace sf = siren::fuzzy;

namespace {

sw::BinaryRecipe icon_recipe(std::size_t version) {
    sw::BinaryRecipe r;
    r.lineage = "icon";
    r.version = version;
    r.compilers = {sw::compiler_comment_for("GCC [SUSE]")};
    r.needed = {"libc.so.6"};
    r.code_blocks = 8;
    return r;
}

}  // namespace

TEST(Synthesizer, Deterministic) {
    const auto a = sw::synthesize(icon_recipe(3));
    const auto b = sw::synthesize(icon_recipe(3));
    EXPECT_EQ(a, b);
}

TEST(Synthesizer, ProducesValidElf) {
    const auto bytes = sw::synthesize(icon_recipe(0));
    ASSERT_TRUE(siren::elfio::Reader::looks_like_elf(bytes));
    const siren::elfio::Reader reader(bytes);
    EXPECT_EQ(reader.comment_strings(),
              std::vector<std::string>{sw::compiler_comment_for("GCC [SUSE]")});
    EXPECT_FALSE(reader.global_symbol_names().empty());
    EXPECT_EQ(reader.needed_libraries(), std::vector<std::string>{"libc.so.6"});
}

TEST(Synthesizer, VersionZeroIdenticalAcrossCalls) {
    // The UNKNOWN a.out twin: same lineage+version => byte-identical even
    // through different recipe object instances.
    auto r1 = icon_recipe(0);
    auto r2 = icon_recipe(0);
    r2.version_tag = r1.version_tag;
    EXPECT_EQ(sw::synthesize(r1), sw::synthesize(r2));
}

TEST(Synthesizer, SimilarityDecaysWithVersionDistance) {
    const auto base = sw::synthesize(icon_recipe(0));
    const auto base_digest = sf::fuzzy_hash(base);

    int previous = 101;
    std::vector<int> scores;
    for (const std::size_t version : {1u, 4u, 16u, 64u}) {
        const auto variant = sw::synthesize(icon_recipe(version));
        const int score = sf::compare(base_digest, sf::fuzzy_hash(variant));
        scores.push_back(score);
        EXPECT_LE(score, previous) << "similarity must not increase with drift";
        previous = score;
    }
    EXPECT_GT(scores.front(), 60) << "one drift step should stay similar";
    EXPECT_LT(scores.back(), scores.front());
}

TEST(Synthesizer, SymbolsDriftSlowerThanBytes) {
    namespace se = siren::elfio;
    const auto a = sw::synthesize(icon_recipe(0));
    const auto b = sw::synthesize(icon_recipe(12));

    const int file_sim = sf::compare(sf::fuzzy_hash(a), sf::fuzzy_hash(b));

    const se::Reader ra(a), rb(b);
    const auto sym_a = se::strings_blob(ra.global_symbol_names());
    const auto sym_b = se::strings_blob(rb.global_symbol_names());
    const int sym_sim = sf::compare(sf::fuzzy_hash(sym_a), sf::fuzzy_hash(sym_b));

    EXPECT_GT(sym_sim, file_sim)
        << "global symbols must be more stable than raw bytes (Table 7 pattern)";
}

TEST(Catalog, TagPathsRoundTripThroughLibraryFilter) {
    // Every catalog tag path must derive exactly its own tag — otherwise
    // Figures 2/5 would drift from the paper's tag vocabulary.
    using siren::analytics::derive_library_tag;
    for (const auto tag :
         {"siren", "pthread", "cray", "quadmath-cray", "fabric-cray", "pmi-cray", "rocm",
          "numa", "drm", "amdgpu-drm", "fortran", "libsci-cray", "rocm-blas",
          "rocsolver-rocm", "rocsparse-rocm", "fft-cray", "rocm-fft", "rocfft-rocm-fft",
          "craymath-cray", "MIOpen-rocm", "gromacs", "boost", "netcdf-cray", "amdgpu-cray",
          "openacc-cray", "rocm-torch", "numa-rocm-torch", "numa-spack", "spack",
          "blas-spack", "rocsolver-spack", "rocsparse-spack", "drm-spack",
          "amdgpu-drm-spack", "climatedt", "climatedt-yaml", "hdf5-cray", "cuda-amber",
          "amber", "netcdf-parallel-cray", "hdf5-parallel-cray",
          "hdf5-fortran-parallel-cray", "torch-tykky", "numa-torch-tykky"}) {
        EXPECT_EQ(derive_library_tag(sw::library_path_for_tag(tag)), tag)
            << "catalog path for tag '" << tag << "' derives a different tag";
    }
}

TEST(Catalog, LumiCampaignMarginalsMatchPaper) {
    const auto spec = sw::lumi_campaign();
    ASSERT_EQ(spec.users.size(), 12u);

    std::uint64_t jobs = 0, sys = 0;
    for (const auto& user : spec.users) {
        jobs += user.jobs;
        sys += user.system_processes;
    }
    EXPECT_EQ(jobs, 13448u);     // Table 2 total jobs
    EXPECT_EQ(sys, 2317859u);    // Table 2 system-process total

    std::uint64_t user_procs = 0;
    for (const auto& soft : spec.software) {
        for (const auto& alloc : soft.allocations) {
            for (const auto& run : alloc.runs) user_procs += run.processes;
        }
    }
    EXPECT_EQ(user_procs, 9042u);  // Table 2 user-process total

    std::uint64_t python_procs = 0;
    for (const auto& py : spec.python) {
        for (const auto& group : py.groups) python_procs += group.processes;
    }
    EXPECT_EQ(python_procs, 23316u);  // Table 2 python total
}

TEST(Catalog, IconHas175VariantsInThreeCompilerGroups) {
    const auto spec = sw::lumi_campaign();
    for (const auto& soft : spec.software) {
        if (soft.label != "icon" || soft.path_pattern.find("a.out") != std::string::npos) {
            continue;
        }
        std::size_t variants = 0;
        for (const auto& g : soft.groups) variants += g.variants;
        EXPECT_EQ(variants, 175u);  // Table 5: unique FILE_H for icon
        EXPECT_EQ(soft.groups.size(), 3u);
        return;
    }
    FAIL() << "icon spec not found";
}

TEST(Generator, MiniCampaignPlansAndEmits) {
    sw::GeneratorOptions options;
    options.scale = 1.0;
    const sw::Generator generator(sw::mini_campaign(), options);
    EXPECT_GT(generator.job_count(), 0u);
    EXPECT_GT(generator.totals().processes, 0u);

    siren::collect::FileStore store;
    generator.populate_store(store);
    EXPECT_GT(store.size(), 5u);

    std::uint64_t emitted = 0;
    std::set<std::string> paths;
    generator.run([&](const siren::sim::SimProcess& p) {
        ++emitted;
        paths.insert(p.exe_path);
        EXPECT_TRUE(store.contains(p.exe_path)) << p.exe_path;
        EXPECT_GT(p.pid, 0);
        EXPECT_GE(p.start_time, 1733875200);
    });
    EXPECT_EQ(emitted, generator.totals().processes);
    EXPECT_GT(paths.size(), 5u);
}

TEST(Generator, DeterministicAcrossRuns) {
    sw::GeneratorOptions options;
    options.scale = 1.0;
    options.seed = 7;

    auto fingerprint = [&] {
        const sw::Generator generator(sw::mini_campaign(), options);
        std::string fp;
        generator.run([&](const siren::sim::SimProcess& p) {
            fp += p.exe_path;
            fp += ':';
            fp += std::to_string(p.pid);
            fp += ';';
        });
        return fp;
    };
    EXPECT_EQ(fingerprint(), fingerprint());
}

TEST(Generator, ScaleShrinksProcessCounts) {
    const auto spec = sw::lumi_campaign();
    sw::GeneratorOptions small;
    small.scale = 0.01;
    const sw::Generator generator(spec, small);

    // 1% of ~2.35M, plus per-entity minimums of 1.
    EXPECT_GT(generator.totals().processes, 10000u);
    EXPECT_LT(generator.totals().processes, 80000u);
    EXPECT_GT(generator.job_count(), 100u);
    EXPECT_LT(generator.job_count(), 1000u);
}

TEST(Generator, ShardedRunsCoverAllJobs) {
    sw::GeneratorOptions options;
    const sw::Generator generator(sw::mini_campaign(), options);

    std::uint64_t total = 0;
    const std::size_t half = generator.job_count() / 2;
    sw::CampaignTotals a = generator.run_jobs(0, half, [&](const auto&) { ++total; });
    sw::CampaignTotals b =
        generator.run_jobs(half, generator.job_count(), [&](const auto&) { ++total; });
    EXPECT_EQ(a.processes + b.processes, generator.totals().processes);
    EXPECT_EQ(total, generator.totals().processes);
}

TEST(Generator, UnknownTwinIsByteIdenticalToIconBuildZero) {
    // Table 7 row 1: the a.out probe must match one icon build at 100 on
    // every dimension, which requires byte-identical images.
    const sw::Generator generator(sw::mini_campaign(), {});
    siren::collect::FileStore store;
    generator.populate_store(store);

    const auto& icon = store.image("/users/user_4/icon-model/build_0/bin/icon");
    const auto& unknown = store.image("/scratch/project_1/run_0/a.out");
    EXPECT_EQ(icon.bytes, unknown.bytes);
}
