// End-to-end integration: generator -> collector -> transport ->
// consolidation -> aggregates, in both pipeline modes, with and without
// packet loss.

#include <gtest/gtest.h>

#include "core/siren.hpp"

using siren::CampaignResult;
using siren::FrameworkOptions;
namespace sw = siren::workload;

namespace {

FrameworkOptions base_options() {
    FrameworkOptions o;
    o.scale = 1.0;
    o.seed = 11;
    o.threads = 2;
    return o;
}

}  // namespace

TEST(Framework, MiniCampaignInlineMode) {
    const CampaignResult result = run_campaign(sw::mini_campaign(), base_options());

    EXPECT_GT(result.totals.processes, 100u);
    EXPECT_EQ(result.processes_collected, result.totals.processes);
    EXPECT_EQ(result.collection_errors, 0u);
    EXPECT_EQ(result.datagrams_lost, 0u);
    EXPECT_GT(result.datagrams_sent, result.totals.processes);  // several per process

    // All three users appear with jobs.
    EXPECT_EQ(result.aggregates.users.size(), 3u);
    EXPECT_EQ(result.aggregates.all_jobs.size(), result.totals.jobs);
    EXPECT_EQ(result.aggregates.total_processes, result.totals.processes);
}

TEST(Framework, DatabaseModeMatchesInlineMode) {
    auto options = base_options();
    const CampaignResult inline_result = run_campaign(sw::mini_campaign(), options);

    options.use_database = true;
    const CampaignResult db_result = run_campaign(sw::mini_campaign(), options);

    ASSERT_NE(db_result.database, nullptr);
    EXPECT_GT(db_result.records.size(), 0u);

    // Same campaign, same seed: identical aggregate marginals.
    EXPECT_EQ(db_result.aggregates.total_processes, inline_result.aggregates.total_processes);
    EXPECT_EQ(db_result.aggregates.execs.size(), inline_result.aggregates.execs.size());
    for (const auto& [path, exe] : inline_result.aggregates.execs) {
        auto it = db_result.aggregates.execs.find(path);
        ASSERT_NE(it, db_result.aggregates.execs.end()) << path;
        EXPECT_EQ(it->second.processes, exe.processes) << path;
        EXPECT_EQ(it->second.users, exe.users) << path;
        EXPECT_EQ(it->second.object_variants.size(), exe.object_variants.size()) << path;
        EXPECT_EQ(it->second.file_hashes, exe.file_hashes) << path;
    }
}

TEST(Framework, CollectionIsLosslessWithoutLossInjection) {
    const CampaignResult result = run_campaign(sw::mini_campaign(), base_options());
    EXPECT_EQ(result.aggregates.records_with_missing_fields, 0u);
    EXPECT_EQ(result.aggregates.jobs_with_missing_fields.size(), 0u);
}

TEST(Framework, LossInjectionMarksMissingFields) {
    auto options = base_options();
    options.loss_rate = 0.05;
    const CampaignResult result = run_campaign(sw::mini_campaign(), options);

    EXPECT_GT(result.datagrams_lost, 0u);
    // Some records lose fields entirely or partially; the accounting must
    // notice at this loss rate on a campaign this size.
    EXPECT_GT(result.aggregates.records_with_missing_fields +
                  result.aggregates.jobs_with_missing_fields.size(),
              0u);
}

TEST(Framework, LossIsDeterministicPerSeed) {
    auto options = base_options();
    options.loss_rate = 0.03;
    const CampaignResult a = run_campaign(sw::mini_campaign(), options);
    const CampaignResult b = run_campaign(sw::mini_campaign(), options);
    EXPECT_EQ(a.datagrams_lost, b.datagrams_lost);
    EXPECT_EQ(a.aggregates.records_with_missing_fields,
              b.aggregates.records_with_missing_fields);

    options.seed = 999;
    const CampaignResult c = run_campaign(sw::mini_campaign(), options);
    EXPECT_NE(a.datagrams_lost, c.datagrams_lost);  // overwhelmingly likely
}

TEST(Framework, ThreadCountDoesNotChangeAggregates) {
    auto options = base_options();
    options.threads = 1;
    const CampaignResult serial = run_campaign(sw::mini_campaign(), options);
    options.threads = 8;
    const CampaignResult parallel = run_campaign(sw::mini_campaign(), options);

    EXPECT_EQ(serial.aggregates.total_processes, parallel.aggregates.total_processes);
    EXPECT_EQ(serial.aggregates.execs.size(), parallel.aggregates.execs.size());
    for (const auto& [path, exe] : serial.aggregates.execs) {
        auto it = parallel.aggregates.execs.find(path);
        ASSERT_NE(it, parallel.aggregates.execs.end());
        EXPECT_EQ(it->second.processes, exe.processes);
        EXPECT_EQ(it->second.jobs, exe.jobs);
    }
}

TEST(Framework, EnvOptionsParse) {
    ::setenv("SIREN_SCALE", "0.25", 1);
    ::setenv("SIREN_LOSS", "0.001", 1);
    ::setenv("SIREN_SEED", "77", 1);
    const FrameworkOptions o = FrameworkOptions::from_env();
    EXPECT_DOUBLE_EQ(o.scale, 0.25);
    EXPECT_DOUBLE_EQ(o.loss_rate, 0.001);
    EXPECT_EQ(o.seed, 77u);
    ::unsetenv("SIREN_SCALE");
    ::unsetenv("SIREN_LOSS");
    ::unsetenv("SIREN_SEED");
}
