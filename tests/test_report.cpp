// Report writer: markdown table rendering and the full campaign report.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "analytics/report.hpp"
#include "core/siren.hpp"

namespace sa = siren::analytics;

TEST(Report, MarkdownTableShape) {
    siren::util::TextTable t({"Name", "Count"});
    t.add_row({"alpha", "1"});
    t.add_row({"with|pipe", "2"});
    const std::string md = sa::to_markdown(t);

    EXPECT_NE(md.find("| Name | Count |"), std::string::npos);
    EXPECT_NE(md.find("| --- | --- |"), std::string::npos);
    EXPECT_NE(md.find("| alpha | 1 |"), std::string::npos);
    EXPECT_NE(md.find("with\\|pipe"), std::string::npos) << "pipes must be escaped";
}

TEST(Report, CampaignReportContainsAllSections) {
    siren::FrameworkOptions options;
    options.scale = 1.0;
    options.seed = 3;
    const auto result = run_campaign(siren::workload::mini_campaign(), options);

    const std::string md = sa::campaign_report_markdown(result.aggregates);
    for (const char* heading :
         {"# SIREN Campaign Report", "## Overview", "Table 2", "Table 3", "Table 4",
          "Table 5", "Table 6", "Table 8", "Figure 2", "Figure 3", "Figure 4", "Figure 5",
          "## Security scan", "## Recognition registry"}) {
        EXPECT_NE(md.find(heading), std::string::npos) << heading;
    }
    // The campaign content shows up.
    EXPECT_NE(md.find("icon"), std::string::npos);
    EXPECT_NE(md.find("/usr/bin/bash"), std::string::npos);
}

TEST(Report, RecognitionSectionCarriesRates) {
    siren::FrameworkOptions options;
    options.scale = 1.0;
    options.seed = 3;
    const auto result = run_campaign(siren::workload::mini_campaign(), options);

    const std::string md = sa::campaign_report_markdown(result.aggregates);
    EXPECT_NE(md.find("recognized as already-known software"), std::string::npos);
    EXPECT_NE(md.find("families founded"), std::string::npos);
    // The campaign's a.out icon copies guarantee at least one named family
    // holding UNKNOWN-labeled binaries.
    const auto pos = md.find("named families holding name-UNKNOWN binaries: ");
    ASSERT_NE(pos, std::string::npos);
    EXPECT_NE(md.find("named families holding name-UNKNOWN binaries: 0\n"), pos)
        << "the a.out plants must be attributed";
}

TEST(Report, WriteFileCreatesDirectories) {
    namespace fs = std::filesystem;
    const auto dir = fs::temp_directory_path() / "siren_report_test";
    fs::remove_all(dir);

    const std::string path = (dir / "sub" / "report.md").string();
    sa::write_file(path, "# hello\n");

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "# hello");
    fs::remove_all(dir);
}
