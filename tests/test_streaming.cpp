// Streaming CTPH hasher: equality with the batch implementation across
// sizes and chunkings (the defining property), snapshots, reset.

#include <gtest/gtest.h>

#include "fuzzy/compare.hpp"
#include "fuzzy/ctph.hpp"
#include "fuzzy/streaming.hpp"
#include "util/rng.hpp"

namespace sf = siren::fuzzy;

namespace {

std::vector<std::uint8_t> bytes_of(std::uint64_t seed, std::size_t n) {
    siren::util::Rng rng(seed);
    return rng.bytes(n);
}

}  // namespace

TEST(Streaming, EmptyInput) {
    sf::StreamingHasher h;
    EXPECT_EQ(h.finalize(), sf::fuzzy_hash(std::string_view{}));
    EXPECT_EQ(h.size(), 0u);
}

TEST(Streaming, SingleUpdateMatchesBatch) {
    const auto data = bytes_of(1, 50000);
    sf::StreamingHasher h;
    h.update(data.data(), data.size());
    EXPECT_EQ(h.finalize(), sf::fuzzy_hash(data));
}

TEST(Streaming, FinalizeIsASnapshot) {
    const auto data = bytes_of(2, 30000);
    sf::StreamingHasher h;
    h.update(data.data(), 10000);
    const auto early = h.finalize();
    EXPECT_EQ(early, sf::fuzzy_hash(data.data(), 10000));

    h.update(data.data() + 10000, 20000);
    EXPECT_EQ(h.finalize(), sf::fuzzy_hash(data));
}

TEST(Streaming, ResetStartsOver) {
    sf::StreamingHasher h;
    h.update("some earlier stream");
    h.reset();
    const auto data = bytes_of(3, 5000);
    h.update(data.data(), data.size());
    EXPECT_EQ(h.finalize(), sf::fuzzy_hash(data));
}

// --- the equality property, swept over sizes x chunk patterns ---------------

struct StreamCase {
    std::size_t size;
    std::size_t chunk;  // 0 = byte-at-a-time
};

class StreamingEquality : public ::testing::TestWithParam<StreamCase> {};

TEST_P(StreamingEquality, MatchesBatchForAnyChunking) {
    const auto param = GetParam();
    const auto data = bytes_of(0xFEED ^ param.size, param.size);

    sf::StreamingHasher h;
    if (param.chunk == 0) {
        for (const auto b : data) h.update(&b, 1);
    } else {
        std::size_t off = 0;
        while (off < data.size()) {
            const std::size_t n = std::min(param.chunk, data.size() - off);
            h.update(data.data() + off, n);
            off += n;
        }
    }
    const auto streamed = h.finalize();
    const auto batch = sf::fuzzy_hash(data);
    EXPECT_EQ(streamed, batch) << "size=" << param.size << " chunk=" << param.chunk;
    EXPECT_EQ(sf::compare(streamed, batch), param.size < 8 ? sf::compare(batch, batch) : 100);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndChunks, StreamingEquality,
    ::testing::Values(StreamCase{1, 0}, StreamCase{7, 0}, StreamCase{100, 0},
                      StreamCase{100, 3}, StreamCase{4096, 1}, StreamCase{4096, 7},
                      StreamCase{4096, 4096}, StreamCase{65536, 17},
                      StreamCase{65536, 1000}, StreamCase{1000000, 65536},
                      StreamCase{1000000, 333333}),
    [](const ::testing::TestParamInfo<StreamCase>& info) {
        return "s" + std::to_string(info.param.size) + "_c" + std::to_string(info.param.chunk);
    });

class StreamingRandomSplit : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StreamingRandomSplit, RandomSplitPointsMatchBatch) {
    siren::util::Rng rng(GetParam());
    const auto data = bytes_of(GetParam() * 31, 20000 + rng.index(40000));

    sf::StreamingHasher h;
    std::size_t off = 0;
    while (off < data.size()) {
        const std::size_t n = std::min<std::size_t>(1 + rng.index(9000), data.size() - off);
        h.update(data.data() + off, n);
        off += n;
    }
    EXPECT_EQ(h.finalize(), sf::fuzzy_hash(data));
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamingRandomSplit,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));
