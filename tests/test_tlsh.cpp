// TLSH-style locality-sensitive hashing: digest construction, validity
// rules, distance semantics, and the locality property that makes it a
// meaningful comparator for the CTPH ablation.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "fuzzy/tlsh.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace sf = siren::fuzzy;

namespace {

std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint64_t seed) {
    siren::util::Rng rng(seed);
    return rng.bytes(n);
}

/// Flip `flips` bytes at deterministic positions.
std::vector<std::uint8_t> perturb(std::vector<std::uint8_t> data, std::size_t flips,
                                  std::uint64_t seed) {
    siren::util::Rng rng(seed);
    for (std::size_t i = 0; i < flips; ++i) {
        data[rng.index(data.size())] ^= static_cast<std::uint8_t>(1 + rng.below(255));
    }
    return data;
}

}  // namespace

TEST(Tlsh, RejectsShortInput) {
    const auto data = random_bytes(sf::kTlshMinSize - 1, 1);
    EXPECT_FALSE(sf::tlsh_hash(data).has_value());
    EXPECT_TRUE(sf::tlsh_hash(random_bytes(sf::kTlshMinSize, 1)).has_value());
}

TEST(Tlsh, RejectsDegenerateInput) {
    // A constant run populates almost no buckets; the quartile encoding is
    // undefined and the digest must be refused, not fabricated.
    const std::vector<std::uint8_t> constant(4096, 0xAB);
    EXPECT_FALSE(sf::tlsh_hash(constant).has_value());
}

TEST(Tlsh, DeterministicAndSelfDistanceZero) {
    const auto data = random_bytes(4096, 7);
    const auto a = sf::tlsh_hash(data);
    const auto b = sf::tlsh_hash(data);
    ASSERT_TRUE(a && b);
    EXPECT_EQ(*a, *b);
    EXPECT_EQ(sf::tlsh_distance(*a, *b), 0);
    EXPECT_EQ(sf::tlsh_similarity(*a, *b), 100);
}

TEST(Tlsh, RoundTripsThroughString) {
    const auto d = sf::tlsh_hash(random_bytes(1024, 11));
    ASSERT_TRUE(d);
    const std::string s = d->to_string();
    EXPECT_TRUE(s.starts_with("T1"));
    EXPECT_EQ(s.size(), 2u + 2u * (3u + sf::kTlshBuckets / 4));
    EXPECT_EQ(sf::TlshDigest::parse(s), *d);
}

TEST(Tlsh, ParseRejectsMalformedInput) {
    EXPECT_THROW(sf::TlshDigest::parse(""), siren::util::ParseError);
    EXPECT_THROW(sf::TlshDigest::parse("T1AB"), siren::util::ParseError);
    const auto d = sf::tlsh_hash(random_bytes(1024, 11));
    std::string s = d->to_string();
    s[0] = 'X';
    EXPECT_THROW(sf::TlshDigest::parse(s), siren::util::ParseError);
    s = d->to_string();
    s[5] = 'g';  // non-hex digit
    EXPECT_THROW(sf::TlshDigest::parse(s), siren::util::ParseError);
}

TEST(Tlsh, DistanceIsSymmetric) {
    const auto a = sf::tlsh_hash(random_bytes(2048, 3));
    const auto b = sf::tlsh_hash(random_bytes(2048, 4));
    ASSERT_TRUE(a && b);
    EXPECT_EQ(sf::tlsh_distance(*a, *b), sf::tlsh_distance(*b, *a));
}

TEST(Tlsh, SmallEditsStayClose) {
    const auto base = random_bytes(8192, 21);
    const auto d0 = sf::tlsh_hash(base);
    const auto d1 = sf::tlsh_hash(perturb(base, 8, 22));
    ASSERT_TRUE(d0 && d1);
    const auto unrelated = sf::tlsh_hash(random_bytes(8192, 23));
    ASSERT_TRUE(unrelated);

    const int near = sf::tlsh_distance(*d0, *d1);
    const int far = sf::tlsh_distance(*d0, *unrelated);
    EXPECT_LT(near, far) << "locality: a lightly edited file must be closer than a random one";
    EXPECT_GT(sf::tlsh_similarity(*d0, *d1), sf::tlsh_similarity(*d0, *unrelated));
}

TEST(Tlsh, DistanceGrowsWithEditCount) {
    // Monotone-in-expectation: average over several bases so single-seed
    // noise cannot flip the ordering of light vs heavy edits.
    double light_total = 0;
    double heavy_total = 0;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        const auto base = random_bytes(8192, seed * 100);
        const auto d0 = sf::tlsh_hash(base);
        const auto light = sf::tlsh_hash(perturb(base, 16, seed));
        const auto heavy = sf::tlsh_hash(perturb(base, 2048, seed));
        ASSERT_TRUE(d0 && light && heavy);
        light_total += sf::tlsh_distance(*d0, *light);
        heavy_total += sf::tlsh_distance(*d0, *heavy);
    }
    EXPECT_LT(light_total, heavy_total);
}

TEST(Tlsh, LengthBandSeparatesVeryDifferentSizes) {
    const auto small = sf::tlsh_hash(random_bytes(256, 5));
    const auto large = sf::tlsh_hash(random_bytes(1 << 20, 5));
    ASSERT_TRUE(small && large);
    // 256 B vs 1 MiB are many log-1.5 bands apart; the length penalty alone
    // must push the distance beyond the "related" range.
    EXPECT_GT(sf::tlsh_distance(*small, *large), 100);
}

TEST(Tlsh, SimilarityScaleIsBounded) {
    const auto a = sf::tlsh_hash(random_bytes(512, 31));
    const auto b = sf::tlsh_hash(random_bytes(1 << 18, 77));
    ASSERT_TRUE(a && b);
    const int s = sf::tlsh_similarity(*a, *b);
    EXPECT_GE(s, 0);
    EXPECT_LE(s, 100);
    EXPECT_EQ(sf::tlsh_similarity(*a, *a), 100);
}

// ---------------------------------------------------------------------------
// Property sweep: digest validity and self-identity across sizes.

class TlshSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TlshSizeSweep, ValidDigestAcrossSizes) {
    const std::size_t size = GetParam();
    const auto data = random_bytes(size, size);
    const auto d = sf::tlsh_hash(data);
    ASSERT_TRUE(d) << "random data of size " << size << " must be hashable";
    EXPECT_EQ(sf::tlsh_distance(*d, *d), 0);
    // Round trip.
    EXPECT_EQ(sf::TlshDigest::parse(d->to_string()), *d);
    // The quartile encoding must actually discriminate: on random data each
    // band holds ~32 of 128 buckets. Tiny inputs have heavy count ties, so
    // the all-four-bands guarantee only binds once the histogram is dense.
    std::array<int, 4> band_counts{};
    for (std::size_t i = 0; i < sf::kTlshBuckets; ++i) {
        band_counts[(d->body[i / 4] >> ((i % 4) * 2)) & 3]++;
    }
    const int bands_used =
        static_cast<int>(std::count_if(band_counts.begin(), band_counts.end(),
                                       [](int c) { return c > 0; }));
    if (size >= 1000) {
        EXPECT_EQ(bands_used, 4) << "sparse quartile use at size " << size;
    } else {
        EXPECT_GE(bands_used, 2) << "degenerate encoding at size " << size;
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, TlshSizeSweep,
                         ::testing::Values(50, 64, 100, 256, 1000, 4096, 65536, 1 << 20));
