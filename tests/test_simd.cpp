// SIMD dispatch layer: level plumbing, and every vector kernel checked
// bit-for-bit against an independent scalar oracle at all dispatch levels
// the host supports (on AVX2 hardware that is scalar, SSE2, and AVX2).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"
#include "util/simd.hpp"

namespace simd = siren::util::simd;

namespace {

/// RAII pin so a failing assertion cannot leak a forced level into later
/// tests.
struct ForcedLevel {
    explicit ForcedLevel(simd::Level level) { simd::force_level(level); }
    ~ForcedLevel() { simd::clear_forced_level(); }
};

std::vector<simd::Level> supported_levels() {
    std::vector<simd::Level> levels = {simd::Level::kScalar};
    if (simd::detected_level() >= simd::Level::kSse2) levels.push_back(simd::Level::kSse2);
    if (simd::detected_level() >= simd::Level::kAvx2) levels.push_back(simd::Level::kAvx2);
    return levels;
}

/// Independent oracle for the signature gate (not the production scalar
/// kernel, which is itself under test as Level::kScalar).
std::vector<std::uint64_t> oracle_bitmap(const std::vector<std::uint64_t>& sigs,
                                         std::uint64_t probe) {
    std::vector<std::uint64_t> bitmap((sigs.size() + 63) / 64, 0);
    for (std::size_t i = 0; i < sigs.size(); ++i) {
        if ((sigs[i] & probe) != 0) bitmap[i / 64] |= 1ull << (i % 64);
    }
    return bitmap;
}

bool oracle_intersect(const std::vector<std::uint64_t>& a,
                      const std::vector<std::uint64_t>& b) {
    for (const auto x : a) {
        if (std::binary_search(b.begin(), b.end(), x)) return true;
    }
    return false;
}

std::vector<std::uint64_t> random_sorted(siren::util::Rng& rng, std::size_t n,
                                         std::uint64_t range) {
    std::vector<std::uint64_t> v;
    v.reserve(n);
    // Narrow range on purpose: collisions produce duplicates, which the
    // AVX2 all-pairs block compare must handle.
    for (std::size_t i = 0; i < n; ++i) v.push_back(rng.next() % range);
    std::sort(v.begin(), v.end());
    return v;
}

}  // namespace

TEST(SimdLevel, NamesAndOrdering) {
    EXPECT_EQ(simd::level_name(simd::Level::kScalar), "scalar");
    EXPECT_EQ(simd::level_name(simd::Level::kSse2), "sse2");
    EXPECT_EQ(simd::level_name(simd::Level::kAvx2), "avx2");
    EXPECT_GE(simd::detected_level(), simd::Level::kScalar);
    EXPECT_LE(simd::active_level(), simd::detected_level());
}

TEST(SimdLevel, ForceClampsAndClears) {
    const auto before = simd::active_level();
    {
        ForcedLevel pin(simd::Level::kScalar);
        EXPECT_EQ(simd::active_level(), simd::Level::kScalar);
    }
    EXPECT_EQ(simd::active_level(), before) << "clear_forced_level must restore";
    // Forcing above the detected level is a no-op clamp, never an upgrade.
    ForcedLevel pin(simd::Level::kAvx2);
    EXPECT_LE(simd::active_level(), simd::detected_level());
}

TEST(SimdSigGate, MatchesOracleAtEveryLevel) {
    siren::util::Rng rng(4242);
    for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{3},
                                std::size_t{63}, std::size_t{64}, std::size_t{65},
                                std::size_t{200}}) {
        std::vector<std::uint64_t> sigs;
        for (std::size_t i = 0; i < n; ++i) {
            // Mix sparse and dense signatures so both hit-heavy and
            // miss-heavy words occur.
            sigs.push_back(rng.index(4) == 0 ? rng.next() : (1ull << rng.index(64)));
        }
        const std::uint64_t probe = rng.next();
        const auto expected = oracle_bitmap(sigs, probe);
        for (const auto level : supported_levels()) {
            std::vector<std::uint64_t> bitmap((n + 63) / 64, ~0ull);  // dirty on purpose
            simd::sig_gate_bitmap(sigs.data(), n, probe, bitmap.data(), level);
            EXPECT_EQ(bitmap, expected)
                << "n=" << n << " level=" << simd::level_name(level);
        }
    }
}

TEST(SimdSigGate, OrVariantMatchesOracleAtEveryLevel) {
    siren::util::Rng rng(2424);
    for (const std::size_t n :
         {std::size_t{0}, std::size_t{1}, std::size_t{64}, std::size_t{129}}) {
        std::vector<std::uint64_t> sigs_a;
        std::vector<std::uint64_t> sigs_b;
        for (std::size_t i = 0; i < n; ++i) {
            sigs_a.push_back(1ull << rng.index(64));
            sigs_b.push_back(1ull << rng.index(64));
        }
        const std::uint64_t probe_a = rng.next() & rng.next();
        const std::uint64_t probe_b = rng.next() & rng.next();
        const auto bits_a = oracle_bitmap(sigs_a, probe_a);
        const auto bits_b = oracle_bitmap(sigs_b, probe_b);
        std::vector<std::uint64_t> expected((n + 63) / 64, 0);
        for (std::size_t w = 0; w < expected.size(); ++w) expected[w] = bits_a[w] | bits_b[w];
        for (const auto level : supported_levels()) {
            std::vector<std::uint64_t> bitmap((n + 63) / 64, ~0ull);
            simd::sig_gate_bitmap_or(sigs_a.data(), probe_a, sigs_b.data(), probe_b, n,
                                     bitmap.data(), level);
            EXPECT_EQ(bitmap, expected)
                << "n=" << n << " level=" << simd::level_name(level);
        }
    }
}

TEST(SimdIntersect, MatchesOracleAtEveryLevel) {
    siren::util::Rng rng(777);
    // Size pairs cover: empty sides, sub-vector-width, the galloping
    // threshold (8x asymmetry), and block-sized inputs.
    const std::size_t sizes[] = {0, 1, 2, 3, 4, 5, 7, 8, 16, 33, 100, 200};
    for (const std::size_t na : sizes) {
        for (const std::size_t nb : sizes) {
            for (int round = 0; round < 8; ++round) {
                // Vary density so some pairs intersect and some do not.
                const std::uint64_t range = round % 2 == 0 ? 64 : 100000;
                const auto a = random_sorted(rng, na, range);
                const auto b = random_sorted(rng, nb, range);
                const bool expected = oracle_intersect(a, b);
                for (const auto level : supported_levels()) {
                    EXPECT_EQ(simd::sorted_intersect(a.data(), na, b.data(), nb, level),
                              expected)
                        << "na=" << na << " nb=" << nb << " range=" << range
                        << " level=" << simd::level_name(level);
                }
            }
        }
    }
}

TEST(SimdIntersect, DuplicateRuns) {
    // Long equal runs at block boundaries: the all-pairs compare and the
    // strict advance rule must not skip past a shared value.
    const std::vector<std::uint64_t> a = {5, 5, 5, 5, 9, 9, 9, 9};
    const std::vector<std::uint64_t> b = {1, 1, 1, 1, 9, 9, 9, 9};
    const std::vector<std::uint64_t> c = {1, 2, 3, 4, 6, 7, 8, 10};
    for (const auto level : supported_levels()) {
        EXPECT_TRUE(simd::sorted_intersect(a.data(), a.size(), b.data(), b.size(), level));
        EXPECT_FALSE(simd::sorted_intersect(a.data(), a.size(), c.data(), c.size(), level));
    }
}
