// Embedded store: schema validation, queries, persistence round trip,
// message table, receiver service draining a queue.

#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <thread>
#include <utility>

#include "db/database.hpp"
#include "db/message_store.hpp"
#include "net/channel.hpp"
#include "util/error.hpp"

namespace sd = siren::db;
namespace sn = siren::net;
namespace su = siren::util;

namespace {

void fill_people(sd::Table& t) {
    t.append({std::string("alice"), std::int64_t{30}, 1.5});
    t.append({std::string("bob"), std::int64_t{40}, 2.5});
    t.append({std::string("alice"), std::int64_t{31}, 3.5});
}

#define MAKE_PEOPLE(t)                                             \
    sd::Table t("people", {{"name", sd::ColumnType::kText},        \
                           {"age", sd::ColumnType::kInt},          \
                           {"score", sd::ColumnType::kReal}});     \
    fill_people(t)

}  // namespace

TEST(Table, AppendAndTypedAccess) {
    MAKE_PEOPLE(t);
    EXPECT_EQ(t.row_count(), 3u);
    EXPECT_EQ(t.get_text(0, "name"), "alice");
    EXPECT_EQ(t.get_int(1, "age"), 40);
    EXPECT_DOUBLE_EQ(t.get_real(2, "score"), 3.5);
}

TEST(Table, RejectsSchemaViolations) {
    sd::Table t("x", {{"a", sd::ColumnType::kInt}});
    EXPECT_THROW(t.append({std::string("not-int")}), su::Error);
    EXPECT_THROW(t.append({std::int64_t{1}, std::int64_t{2}}), su::Error);
    t.append({std::int64_t{1}});
    EXPECT_THROW(t.get_text(0, "a"), su::Error);
    EXPECT_THROW(t.get_int(0, "nope"), su::Error);
}

TEST(Table, FilterAndDistinctAndGroupBy) {
    MAKE_PEOPLE(t);
    const auto alices =
        t.filter([&](const sd::Table::Row& row) { return std::get<std::string>(row[0]) == "alice"; });
    EXPECT_EQ(alices.size(), 2u);

    EXPECT_EQ(t.distinct_text("name"), (std::vector<std::string>{"alice", "bob"}));

    const auto groups = t.group_by_text("name");
    EXPECT_EQ(groups.at("alice").size(), 2u);
    EXPECT_EQ(groups.at("bob").size(), 1u);
}

TEST(Table, SortStable) {
    MAKE_PEOPLE(t);
    t.sort([](const sd::Table::Row& a, const sd::Table::Row& b) {
        return std::get<std::int64_t>(a[1]) > std::get<std::int64_t>(b[1]);
    });
    EXPECT_EQ(t.get_int(0, "age"), 40);
}

TEST(Table, EmptyTableQueriesAreWellDefined) {
    sd::Table t("empty", {{"name", sd::ColumnType::kText}});
    EXPECT_EQ(t.row_count(), 0u);
    EXPECT_TRUE(t.filter([](const sd::Table::Row&) { return true; }).empty());
    EXPECT_TRUE(t.distinct_text("name").empty());
    EXPECT_TRUE(t.group_by_text("name").empty());
    EXPECT_NO_THROW(t.sort([](const sd::Table::Row&, const sd::Table::Row&) { return false; }));
}

TEST(Table, ColumnIndexThrowsOnUnknownColumn) {
    MAKE_PEOPLE(t);
    EXPECT_THROW(t.column_index("salary"), su::Error);
    EXPECT_THROW(t.get_int(0, "salary"), su::Error);
}

TEST(Table, TypedAccessorsRejectWrongTypes) {
    MAKE_PEOPLE(t);
    EXPECT_THROW(t.get_int(0, "name"), su::Error) << "text column read as int";
    EXPECT_THROW(t.get_text(0, "age"), su::Error) << "int column read as text";
    EXPECT_THROW(t.get_real(0, "name"), su::Error) << "text column read as real";
}

TEST(Table, ConcurrentAppendsAllLand) {
    sd::Table t("hits", {{"worker", sd::ColumnType::kInt}, {"i", sd::ColumnType::kInt}});
    constexpr int kWorkers = 8;
    constexpr int kPer = 500;
    std::vector<std::thread> workers;
    for (int w = 0; w < kWorkers; ++w) {
        workers.emplace_back([&t, w] {
            for (int i = 0; i < kPer; ++i) {
                t.append({std::int64_t{w}, std::int64_t{i}});
            }
        });
    }
    for (auto& w : workers) w.join();
    ASSERT_EQ(t.row_count(), static_cast<std::size_t>(kWorkers * kPer));
    // Every (worker, i) pair exactly once.
    std::set<std::pair<std::int64_t, std::int64_t>> seen;
    for (std::size_t r = 0; r < t.row_count(); ++r) {
        seen.insert({t.get_int(r, "worker"), t.get_int(r, "i")});
    }
    EXPECT_EQ(seen.size(), static_cast<std::size_t>(kWorkers * kPer));
}

TEST(Database, CreateAndLookup) {
    sd::Database db;
    db.create_table("t", {{"a", sd::ColumnType::kInt}});
    EXPECT_TRUE(db.has_table("t"));
    EXPECT_FALSE(db.has_table("u"));
    EXPECT_THROW(db.create_table("t", {{"a", sd::ColumnType::kInt}}), su::Error);
    EXPECT_THROW(db.table("missing"), su::Error);
}

TEST(Database, SaveLoadRoundTrip) {
    namespace fs = std::filesystem;
    const auto dir = fs::temp_directory_path() / "siren_db_test";
    fs::remove_all(dir);

    sd::Database db;
    auto& t = db.create_table("people", {{"name", sd::ColumnType::kText},
                                         {"age", sd::ColumnType::kInt},
                                         {"score", sd::ColumnType::kReal}});
    t.append({std::string("tab\tand|pipe"), std::int64_t{-5}, 0.25});
    db.save(dir.string());

    const sd::Database loaded = sd::Database::load(dir.string());
    const auto& lt = loaded.table("people");
    ASSERT_EQ(lt.row_count(), 1u);
    EXPECT_EQ(lt.get_text(0, "name"), "tab\tand|pipe");
    EXPECT_EQ(lt.get_int(0, "age"), -5);
    EXPECT_DOUBLE_EQ(lt.get_real(0, "score"), 0.25);
    fs::remove_all(dir);
}

TEST(MessageStore, InsertAndReadBack) {
    sd::Database db;
    auto& table = sd::create_message_table(db);

    sn::Message m;
    m.job_id = 7;
    m.step_id = 1;
    m.pid = 99;
    m.exe_hash = "cafe";
    m.host = "nid01";
    m.time = 1234567;
    m.layer = sn::Layer::kScript;
    m.type = sn::MsgType::kScriptHash;
    m.seq = 2;
    m.total = 3;
    m.content = "3:abc:de";

    sd::insert_message(table, m);
    ASSERT_EQ(table.row_count(), 1u);
    EXPECT_EQ(sd::message_from_row(table, 0), m);
}

TEST(ReceiverService, DrainsQueueIntoDatabase) {
    sd::Database db;
    sn::MessageQueue queue(1024);

    sn::Message m;
    m.exe_hash = "h";
    m.host = "n";

    {
        sd::ReceiverService service(queue, db, /*workers=*/3);
        for (int i = 0; i < 500; ++i) {
            m.pid = i;
            queue.push(m);
        }
        queue.close();
        service.finish();
        EXPECT_EQ(service.inserted(), 500u);
    }
    EXPECT_EQ(db.table(sd::kMessagesTable).row_count(), 500u);
}

TEST(ReceiverService, ConcurrentProducers) {
    sd::Database db;
    sn::MessageQueue queue(1 << 16);
    sd::ReceiverService service(queue, db, 2);

    std::vector<std::thread> producers;
    for (int t = 0; t < 4; ++t) {
        producers.emplace_back([&queue, t] {
            sn::Message m;
            m.exe_hash = "h";
            m.host = "n";
            m.pid = t;
            for (int i = 0; i < 250; ++i) queue.push(m);
        });
    }
    for (auto& p : producers) p.join();
    queue.close();
    service.finish();
    EXPECT_EQ(db.table(sd::kMessagesTable).row_count(), 1000u);
}
