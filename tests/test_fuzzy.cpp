// CTPH fuzzy hashing: digest structure, comparison semantics, and the
// similarity-vs-mutation properties the whole paper rests on.

#include <gtest/gtest.h>

#include "fuzzy/compare.hpp"
#include "fuzzy/ctph.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace sf = siren::fuzzy;
namespace su = siren::util;

namespace {

std::vector<std::uint8_t> random_bytes(std::uint64_t seed, std::size_t n) {
    su::Rng rng(seed);
    return rng.bytes(n);
}

/// Rewrite a contiguous region covering `fraction` of the input. Real file
/// changes (recompilation, patched functions) are localized; scattering
/// single-byte flips uniformly would touch every CTPH chunk and is the
/// adversarial worst case, not the similarity use case.
std::vector<std::uint8_t> mutate(std::vector<std::uint8_t> data, double fraction,
                                 std::uint64_t seed) {
    su::Rng rng(seed);
    const auto len = static_cast<std::size_t>(static_cast<double>(data.size()) * fraction);
    if (len == 0 || data.empty()) return data;
    const std::size_t start = rng.index(data.size() - std::min(len, data.size()) + 1);
    for (std::size_t i = 0; i < len && start + i < data.size(); ++i) {
        data[start + i] = static_cast<std::uint8_t>(rng.below(256));
    }
    return data;
}

}  // namespace

TEST(Ctph, DigestShape) {
    const auto d = sf::fuzzy_hash(random_bytes(1, 20000));
    EXPECT_GE(d.block_size, sf::kMinBlockSize);
    EXPECT_EQ(d.block_size % sf::kMinBlockSize, 0u) << "block size is 3 * 2^k";
    const std::uint64_t pow2 = d.block_size / sf::kMinBlockSize;
    EXPECT_EQ(pow2 & (pow2 - 1), 0u) << "block size is 3 * 2^k";
    EXPECT_LE(d.digest1.size(), sf::kSpamsumLength);
    EXPECT_LE(d.digest2.size(), sf::kSpamsumLength / 2);
    EXPECT_GE(d.digest1.size(), sf::kSpamsumLength / 2) << "digest should be well filled";
}

TEST(Ctph, ToStringParseRoundTrip) {
    const auto d = sf::fuzzy_hash(random_bytes(2, 5000));
    const auto parsed = sf::FuzzyDigest::parse(d.to_string());
    EXPECT_EQ(parsed, d);
}

TEST(Ctph, ParseRejectsMalformed) {
    EXPECT_THROW(sf::FuzzyDigest::parse("justtext"), su::ParseError);
    EXPECT_THROW(sf::FuzzyDigest::parse("0:ab:cd"), su::ParseError);
    EXPECT_THROW(sf::FuzzyDigest::parse("x:ab:cd"), su::ParseError);
    EXPECT_THROW(sf::FuzzyDigest::parse("3:ab"), su::ParseError);
    EXPECT_NO_THROW(sf::FuzzyDigest::parse("3::"));
}

TEST(Ctph, DeterministicDigest) {
    const auto bytes = random_bytes(3, 40000);
    EXPECT_EQ(sf::fuzzy_hash(bytes).to_string(), sf::fuzzy_hash(bytes).to_string());
}

TEST(Ctph, EmptyAndTinyInputs) {
    EXPECT_NO_THROW(sf::fuzzy_hash(std::string_view{}));
    EXPECT_NO_THROW(sf::fuzzy_hash(std::string_view{"x"}));
    const auto d = sf::fuzzy_hash(std::string_view{"hello world"});
    EXPECT_EQ(d.block_size, sf::kMinBlockSize);
}

TEST(Ctph, BlockSizeGrowsWithInput) {
    const auto small = sf::fuzzy_hash(random_bytes(4, 1000));
    const auto large = sf::fuzzy_hash(random_bytes(4, 1000000));
    EXPECT_GT(large.block_size, small.block_size);
}

TEST(Compare, IdenticalInputsScore100) {
    const auto bytes = random_bytes(5, 30000);
    EXPECT_EQ(sf::compare(sf::fuzzy_hash(bytes), sf::fuzzy_hash(bytes)), 100);
}

TEST(Compare, DisjointInputsScoreZero) {
    const auto a = sf::fuzzy_hash(random_bytes(6, 30000));
    const auto b = sf::fuzzy_hash(random_bytes(7, 30000));
    EXPECT_EQ(sf::compare(a, b), 0);
}

TEST(Compare, IncomparableBlockSizesScoreZero) {
    const auto a = sf::fuzzy_hash(random_bytes(8, 1000));     // small block size
    const auto b = sf::fuzzy_hash(random_bytes(8, 4000000));  // much larger
    EXPECT_EQ(sf::compare(a, b), 0);
}

TEST(Compare, SymmetricScores) {
    const auto base = random_bytes(9, 50000);
    const auto a = sf::fuzzy_hash(base);
    const auto b = sf::fuzzy_hash(mutate(base, 0.05, 1));
    EXPECT_EQ(sf::compare(a, b), sf::compare(b, a));
}

TEST(Compare, StringOverloadToleratesGarbage) {
    EXPECT_EQ(sf::compare("not a digest", "3:abc:de"), 0);
    EXPECT_THROW(sf::compare("not a digest", "3:abc:de", /*strict=*/true), su::ParseError);
}

TEST(Compare, EliminateSequencesCollapsesRuns) {
    EXPECT_EQ(sf::eliminate_sequences("aaaaaabbbc"), "aaabbbc");
    EXPECT_EQ(sf::eliminate_sequences("abc"), "abc");
    EXPECT_EQ(sf::eliminate_sequences(""), "");
}

TEST(Compare, CommonSubstringGate) {
    EXPECT_TRUE(sf::has_common_substring("abcdefghij", "XXabcdefgXX"));
    EXPECT_FALSE(sf::has_common_substring("abcdefg", "hijklmn"));
    EXPECT_FALSE(sf::has_common_substring("abc", "abc"));  // shorter than 7
}

TEST(Compare, OneToManyMatchesScalar) {
    const auto base = random_bytes(10, 60000);
    const auto probe = sf::fuzzy_hash(base);
    std::vector<sf::FuzzyDigest> candidates;
    for (int i = 0; i < 40; ++i) {
        candidates.push_back(sf::fuzzy_hash(mutate(base, 0.01 * i, 77 + i)));
    }
    const auto parallel = sf::compare_one_to_many(probe, candidates, /*threshold=*/8);
    for (std::size_t i = 0; i < candidates.size(); ++i) {
        EXPECT_EQ(parallel[i], sf::compare(probe, candidates[i]));
    }
}

// --- similarity-vs-mutation sweep (the paper's core property) ---------------

struct MutationCase {
    double fraction;
    int min_score;
    int max_score;
};

class FuzzyMutationSweep : public ::testing::TestWithParam<MutationCase> {};

TEST_P(FuzzyMutationSweep, ScoreTracksMutationRate) {
    const auto param = GetParam();
    const auto base = random_bytes(1234, 100000);
    const auto probe = sf::fuzzy_hash(base);

    const auto mutated = mutate(base, param.fraction, 4321);
    const int score = sf::compare(probe, sf::fuzzy_hash(mutated));
    EXPECT_GE(score, param.min_score) << "fraction=" << param.fraction;
    EXPECT_LE(score, param.max_score) << "fraction=" << param.fraction;
}

INSTANTIATE_TEST_SUITE_P(
    Fractions, FuzzyMutationSweep,
    ::testing::Values(MutationCase{0.0, 100, 100}, MutationCase{0.005, 85, 100},
                      MutationCase{0.02, 70, 100}, MutationCase{0.08, 55, 99},
                      MutationCase{0.5, 20, 90}),
    [](const ::testing::TestParamInfo<MutationCase>& info) {
        return "pct" + std::to_string(static_cast<int>(info.param.fraction * 1000));
    });

class FuzzyMonotonicity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzyMonotonicity, MoreMutationNeverHelpsMuch) {
    // Weak monotonicity: across increasing mutation fractions the score
    // may wiggle a little but must trend down.
    const auto base = random_bytes(GetParam(), 80000);
    const auto probe = sf::fuzzy_hash(base);
    int prev = 100;
    int violations = 0;
    for (const double f : {0.01, 0.05, 0.15, 0.40}) {
        const int score = sf::compare(probe, sf::fuzzy_hash(mutate(base, f, GetParam() + 1)));
        if (score > prev + 10) ++violations;
        prev = score;
    }
    EXPECT_EQ(violations, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzyMonotonicity, ::testing::Values(11u, 22u, 33u, 44u));
