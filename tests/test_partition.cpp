// Partitioned fleet: the PartitionMap invariants and wire form, the
// versioned STATS schema parser, cross-shard ranking merge, and the four
// acceptance scenarios of docs/sharding.md — a degenerate single-shard map
// behaving exactly like an unpartitioned client, a probe ladder straddling
// a range boundary fanning out to both owners with an oracle-identical
// merged ranking, a stale-map client following a wrong_shard redirect, and
// a mid-observe rebalance conserving every sighting (range-fingerprint
// convergence on the new owner).

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "fuzzy/ctph.hpp"
#include "serve/serve.hpp"
#include "storage/segment.hpp"
#include "util/error.hpp"

namespace fs = std::filesystem;
namespace sf = siren::fuzzy;
namespace sv = siren::serve;
namespace ss = siren::storage;

namespace {

/// Unique scratch directory, removed on scope exit.
class ScratchDir {
public:
    explicit ScratchDir(const std::string& tag) {
        static std::atomic<int> counter{0};
        path_ = (fs::temp_directory_path() /
                 ("siren_part_" + tag + "_" + std::to_string(::getpid()) + "_" +
                  std::to_string(counter.fetch_add(1))))
                    .string();
        fs::remove_all(path_);
        fs::create_directories(path_);
    }
    ~ScratchDir() {
        std::error_code ec;
        fs::remove_all(path_, ec);
    }
    std::string sub(const std::string& name) const { return path_ + "/" + name; }

private:
    std::string path_;
};

/// Poll `done` until it holds or ~5s elapse; returns whether it held.
bool eventually(const std::function<bool()>& done,
                std::chrono::milliseconds limit = std::chrono::milliseconds(5000)) {
    const auto deadline = std::chrono::steady_clock::now() + limit;
    while (std::chrono::steady_clock::now() < deadline) {
        if (done()) return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return done();
}

sv::ServeOptions fast_options() {
    sv::ServeOptions options;
    options.feed_poll = std::chrono::milliseconds(2);
    options.writer_idle = std::chrono::milliseconds(2);
    options.checkpoint_interval = std::chrono::milliseconds(0);
    options.publish_interval = std::chrono::milliseconds(0);
    return options;
}

sv::ReplicaEndpoint local(std::uint16_t port) { return {"127.0.0.1", port}; }

/// Options of one partitioned shard. The table is a placeholder (ports are
/// not known until the query servers bind); the real one swaps in through
/// set_partition_map, the same path a rebalance version-bump uses. The
/// service itself only ever consults the ranges and its own id.
sv::ServeOptions partitioned_options(std::uint32_t shard_id);

/// Two-shard map: shard 0 owns [0, cut-1], shard 1 owns [cut, 2^64-1].
sv::PartitionMap two_shards(std::uint64_t version, std::uint16_t port0,
                            std::uint16_t port1, std::uint64_t cut) {
    std::vector<sv::ShardInfo> shards(2);
    shards[0].id = 0;
    shards[0].leader = local(port0);
    shards[0].ranges = {{0, cut - 1}};
    shards[1].id = 1;
    shards[1].leader = local(port1);
    shards[1].ranges = {{cut, ~0ull}};
    return sv::PartitionMap(version, std::move(shards));
}

sv::ServeOptions partitioned_options(std::uint32_t shard_id) {
    auto options = fast_options();
    options.partition.shard_id = shard_id;
    options.partition.map =
        std::make_shared<const sv::PartitionMap>(two_shards(0, 1, 2, 3072));
    return options;
}

/// Parse-safe synthetic digest (no ':', no >3-char runs, 26 chars).
sf::FuzzyDigest digest_at(std::uint64_t block_size, const std::string& d1,
                          const std::string& d2) {
    return sf::FuzzyDigest{block_size, d1, d2};
}

/// Mutually dissimilar digest per index: every position's character shifts
/// with `i`, so two indices share no 7-char substring and score 0 — each
/// observe founds its own family instead of folding into a neighbor.
sf::FuzzyDigest nth_digest(std::uint64_t block_size, int i) {
    static const char kAlphabet[] =
        "ABCDEFGHJKLMNPQRSTUVWXYZabcdefghijkmnopqrstuvwxyz123456789";
    const auto make = [&](int salt) {
        std::string s(26, 'A');
        for (int j = 0; j < 26; ++j) {
            s[static_cast<std::size_t>(j)] =
                kAlphabet[static_cast<std::size_t>(i * 131 + salt * 37 + j * 53 + j * j * 7) %
                          (sizeof(kAlphabet) - 1)];
        }
        return s;
    };
    return digest_at(block_size, make(1), make(2));
}

std::string render(const std::vector<sv::FusedIdentified>& matches) {
    std::string out;
    for (const auto& m : matches) {
        out += m.name + " fused=" + std::to_string(m.score) +
               " c=" + std::to_string(m.content_score) +
               " b=" + std::to_string(m.behavior_score) + "\n";
    }
    return out;
}

/// Records currently replayable under `dir`.
std::size_t record_count(const std::string& dir) {
    std::size_t n = 0;
    ss::replay_directory(dir, [&n](std::string_view) { ++n; });
    return n;
}

constexpr const char* kStrA = "kTqWx3NvZrLm8PbC5dYhJf2Ag4";
constexpr const char* kStrB = "Rs7eKp1MnHu9VtD6wQyXc0ZiBo";
constexpr const char* kStrC = "Ga5jLd8SfTk2RmNe7XwPq4VzCu";

}  // namespace

// ---------------------------------------------------------------------------
// PartitionMap: invariants, wire form, routing arithmetic

TEST(PartitionMap, SerializeParseRoundTrip) {
    const auto map = two_shards(7, 9001, 9002, 3072);
    const auto text = map.serialize();
    const auto parsed = sv::PartitionMap::parse(text);
    EXPECT_EQ(parsed.version(), 7u);
    ASSERT_EQ(parsed.shard_count(), 2u);
    EXPECT_EQ(parsed.shards()[0].leader, local(9001));
    EXPECT_EQ(parsed.shards()[1].ranges, (std::vector<sv::KeyRange>{{3072, ~0ull}}));
    EXPECT_EQ(parsed.serialize(), text) << "serialize must be a fixed point";

    // Comments and blank lines are ignored.
    const auto relaxed = sv::PartitionMap::parse("# fleet map\n\n" + text);
    EXPECT_EQ(relaxed.serialize(), text);
}

TEST(PartitionMap, RejectsIncoherentTables) {
    std::vector<sv::ShardInfo> gap(2);
    gap[0] = {0, local(1), {}, {{0, 99}}};
    gap[1] = {1, local(2), {}, {{200, ~0ull}}};
    EXPECT_THROW(sv::PartitionMap(1, gap), siren::util::Error);

    std::vector<sv::ShardInfo> overlap(2);
    overlap[0] = {0, local(1), {}, {{0, 100}}};
    overlap[1] = {1, local(2), {}, {{100, ~0ull}}};
    EXPECT_THROW(sv::PartitionMap(1, overlap), siren::util::Error);

    std::vector<sv::ShardInfo> short_cover(1);
    short_cover[0] = {0, local(1), {}, {{0, 100}}};
    EXPECT_THROW(sv::PartitionMap(1, short_cover), siren::util::Error);

    std::vector<sv::ShardInfo> dup_id(2);
    dup_id[0] = {3, local(1), {}, {{0, 99}}};
    dup_id[1] = {3, local(2), {}, {{100, ~0ull}}};
    EXPECT_THROW(sv::PartitionMap(1, dup_id), siren::util::Error);

    EXPECT_THROW(sv::PartitionMap::parse("partmap 9\nversion 1\n"),
                 siren::util::Error);
}

TEST(PartitionMap, OwnerAndProbeFanout) {
    const auto map = two_shards(1, 9001, 9002, 3072);
    EXPECT_EQ(map.owner_of(0), 0u);
    EXPECT_EQ(map.owner_of(3071), 0u);
    EXPECT_EQ(map.owner_of(3072), 1u);
    EXPECT_EQ(map.owner_of(~0ull), 1u);
    EXPECT_TRUE(map.owns(0, 1536));
    EXPECT_FALSE(map.owns(0, 3072));

    // Ladder {384, 768, 1536} sits inside shard 0's range: one owner.
    EXPECT_EQ(map.shards_for_probe(768), (std::vector<std::uint32_t>{0}));
    // Ladder {1536, 3072, 6144} straddles the cut: both owners, ascending.
    EXPECT_EQ(map.shards_for_probe(3072), (std::vector<std::uint32_t>{0, 1}));
    // 2*bs saturates at the key-space ceiling instead of wrapping to 0.
    EXPECT_EQ(map.shards_for_probe(~0ull), (std::vector<std::uint32_t>{1}));

    const auto single = sv::PartitionMap::single(local(9001), {local(9002)});
    EXPECT_EQ(single.shards_for_probe(3072), (std::vector<std::uint32_t>{0}));
    ASSERT_EQ(single.shard_count(), 1u);
    EXPECT_EQ(single.shards()[0].followers, (std::vector<sv::ReplicaEndpoint>{local(9002)}));
}

TEST(PartitionMap, SaveAndLoad) {
    ScratchDir dir("mapio");
    const auto map = two_shards(4, 9001, 9002, 1024);
    sv::save_partition_map(map, dir.sub("fleet.map"));
    const auto loaded = sv::load_partition_map(dir.sub("fleet.map"));
    EXPECT_EQ(loaded.serialize(), map.serialize());
    EXPECT_THROW(sv::load_partition_map(dir.sub("missing.map")), siren::util::SystemError);
}

// ---------------------------------------------------------------------------
// STATS schema parser

TEST(ParseStats, VersionedKeyValueSchema) {
    const auto stats = sv::parse_stats(
        "OK\nstats_version 1\nrole leader\nfamilies 3\nshard_id 2\n"
        "some_future_key 77\nnon_numeric banana\n");
    EXPECT_EQ(stats.role, "leader");
    EXPECT_EQ(stats.get("stats_version"), sv::kStatsVersion);
    EXPECT_EQ(stats.get("families"), 3u);
    EXPECT_EQ(stats.get("shard_id"), 2u);
    EXPECT_EQ(stats.get("some_future_key"), 77u) << "unknown keys must still parse";
    EXPECT_EQ(stats.get("non_numeric"), std::nullopt) << "junk values skip, not throw";
    EXPECT_EQ(stats.get("absent"), std::nullopt);

    EXPECT_THROW(sv::parse_stats("ERR overloaded"), siren::util::ParseError);
}

// ---------------------------------------------------------------------------
// Cross-shard ranking merge

TEST(MergeRankings, GroupsByNameKeepsChannelMaximaAndRefuses) {
    using F = sv::FusedIdentified;
    // Shard-local family ids collide (both use id 0); names are the key.
    const std::vector<std::vector<F>> per_shard = {
        {F{0, 90, 90, 0, "alpha"}, F{1, 55, 55, 0, "gamma"}},
        {F{0, 40, 0, 40, "alpha"}, F{2, 62, 62, 0, "delta"}},
    };
    const auto merged = sv::ShardedClient::merge_rankings(per_shard, /*both_probed=*/true,
                                                          /*k=*/3);
    ASSERT_EQ(merged.size(), 3u);
    // alpha re-fuses from merged channel maxima: (3*90 + 2*40) / 5 = 70.
    EXPECT_EQ(merged[0].name, "alpha");
    EXPECT_EQ(merged[0].score, 70);
    EXPECT_EQ(merged[0].content_score, 90);
    EXPECT_EQ(merged[0].behavior_score, 40);
    // One-channel families still pay the absent channel's zero weight,
    // exactly like Registry::fuse_scores under a both-channel probe.
    EXPECT_EQ(merged[1].name, "delta");
    EXPECT_EQ(merged[1].score, 62 * 3 / 5);
    EXPECT_EQ(merged[2].name, "gamma");
    EXPECT_EQ(merged[2].score, 55 * 3 / 5);

    // Single-channel probes pass scores through untouched and break ties
    // by name so the order is deterministic across shard arrival order.
    const std::vector<std::vector<F>> tied = {
        {F{0, 80, 80, 0, "zeta"}},
        {F{0, 80, 80, 0, "eta"}},
    };
    const auto flat = sv::ShardedClient::merge_rankings(tied, /*both_probed=*/false,
                                                        /*k=*/2);
    ASSERT_EQ(flat.size(), 2u);
    EXPECT_EQ(flat[0].name, "eta");
    EXPECT_EQ(flat[0].score, 80);
    EXPECT_EQ(flat[1].name, "zeta");

    // k truncates after the merge, not per shard.
    EXPECT_EQ(sv::ShardedClient::merge_rankings(per_shard, true, 1).size(), 1u);
}

// ---------------------------------------------------------------------------
// Degenerate single-shard map == unpartitioned client

TEST(ShardedClient, SingleShardMapIsBitIdenticalToDirectClient) {
    sv::RecognitionService service(fast_options());
    sv::QueryServer server(service);
    ASSERT_NE(server.port(), 0);

    sv::QueryClient direct("127.0.0.1", server.port());
    sv::ShardedClient routed(sv::PartitionMap::single(local(server.port())));

    // Seed through both faces; the observes land in the same registry.
    const auto famA = nth_digest(1536, 1);
    const auto famB = nth_digest(3072, 2);
    const auto direct_obs = direct.observe(famA.to_string(), "alpha");
    const auto routed_obs = routed.observe(famB.to_string(), "beta");
    EXPECT_EQ(direct_obs.name, "alpha");
    EXPECT_EQ(routed_obs.name, "beta");
    EXPECT_TRUE(routed_obs.new_family);
    EXPECT_EQ(routed.redirects_followed(), 0u);

    const sv::Probe probes[] = {
        {.content = famA.to_string(), .behavior = {}, .k = 3},
        {.content = famB.to_string(), .behavior = {}, .k = 3},
        {.content = famB.to_string(), .behavior = {}, .k = 1},
    };
    for (const auto& probe : probes) {
        EXPECT_EQ(render(routed.identify(probe)), render(direct.identify(probe)));
    }
    EXPECT_EQ(routed.identify(famA.to_string())->name, "alpha");
}

// ---------------------------------------------------------------------------
// A probe ladder straddling a range boundary fans out to both owners

TEST(ShardedClient, StraddlingLadderMergesAcrossOwnersLikeOneRegistry) {
    // Shard 0 owns [0, 3071], shard 1 owns [3072, inf): a probe at block
    // size 3072 scores against exemplars at 1536 (shard 0) and 3072/6144
    // (shard 1).
    sv::RecognitionService service0(partitioned_options(0));
    sv::RecognitionService service1(partitioned_options(1));
    sv::QueryServer server0(service0);
    sv::QueryServer server1(service1);
    const auto map = std::make_shared<const sv::PartitionMap>(
        two_shards(1, server0.port(), server1.port(), 3072));
    service0.set_partition_map(map);
    service1.set_partition_map(map);

    // Both families must score on the probe (>= threshold 60) while
    // scoring below it against each other, or a single registry would
    // fold them at observe time and there would be nothing to merge.
    // Mutating 5 spots of the probe digest for one exemplar and 8
    // disjoint spots for the other lands at probe~86 / probe~74 with the
    // exemplars at 58 against each other, just under the threshold.
    std::string famB_d1 = kStrB;  // probe.digest1 with spots 0-4 mutated
    const char* low = "acegi";
    for (int i = 0; i < 5; ++i) famB_d1[static_cast<std::size_t>(i)] = low[i];
    std::string famA_d2 = kStrB;  // probe.digest1 with spots 5-12 mutated
    const char* high = "bdfhjlnp";
    for (int i = 0; i < 8; ++i) famA_d2[static_cast<std::size_t>(5 + i)] = high[i];
    const auto famA = digest_at(1536, kStrA, famA_d2);  // shard 0's range
    const auto famB = digest_at(3072, famB_d1, kStrC);  // shard 1's range
    const auto probe_digest = digest_at(3072, kStrB, "Tb4mWc9XrKe2NvQy7JzPd5GhLf");

    sv::ShardedClient routed(*map);
    EXPECT_EQ(routed.observe(famA.to_string(), "alpha").name, "alpha");
    EXPECT_EQ(routed.observe(famB.to_string(), "beta").name, "beta");
    EXPECT_EQ(routed.redirects_followed(), 0u) << "a fresh map never redirects";

    // Each observe landed on exactly its owner shard.
    sv::QueryClient probe0("127.0.0.1", server0.port());
    sv::QueryClient probe1("127.0.0.1", server1.port());
    const auto stats0 = sv::parse_stats(probe0.request("STATS"));
    const auto stats1 = sv::parse_stats(probe1.request("STATS"));
    EXPECT_EQ(stats0.get("families"), 1u);
    EXPECT_EQ(stats1.get("families"), 1u);
    EXPECT_EQ(stats0.get("shard_id"), 0u);
    EXPECT_EQ(stats1.get("shard_id"), 1u);
    EXPECT_EQ(stats0.get("partition_version"), 1u);
    EXPECT_EQ(stats0.get("wrong_shard_rejects"), 0u);

    // Oracle: one registry holding both families.
    sv::RecognitionService oracle(fast_options());
    sv::QueryServer oracle_server(oracle);
    sv::QueryClient oracle_client("127.0.0.1", oracle_server.port());
    oracle_client.observe(famA.to_string(), "alpha");
    oracle_client.observe(famB.to_string(), "beta");

    const sv::Probe probe{.content = probe_digest.to_string(), .behavior = {}, .k = 5};
    const auto merged = routed.identify(probe);
    const auto expected = oracle_client.identify(probe);
    ASSERT_EQ(merged.size(), 2u) << "both owners must contribute:\n" << render(merged);
    EXPECT_EQ(merged[0].name, "beta");
    EXPECT_EQ(merged[1].name, "alpha");
    EXPECT_GT(merged[0].score, merged[1].score);
    EXPECT_GE(merged[1].score, 60);
    EXPECT_EQ(render(merged), render(expected))
        << "cross-shard merge must be bit-identical to the single registry";
}

// ---------------------------------------------------------------------------
// Stale-map client follows a wrong_shard redirect

TEST(ShardedClient, StaleMapFollowsWrongShardRedirect) {
    sv::RecognitionService service0(partitioned_options(0));
    sv::RecognitionService service1(partitioned_options(1));
    sv::QueryServer server0(service0);
    sv::QueryServer server1(service1);

    // The fleet has moved [1024, 3071] to shard 1 (map v2); the client
    // still routes by v1.
    const auto v1 = two_shards(1, server0.port(), server1.port(), 3072);
    const auto v2 = std::make_shared<const sv::PartitionMap>(
        two_shards(2, server0.port(), server1.port(), 1024));
    service0.set_partition_map(v2);
    service1.set_partition_map(v2);

    sv::ShardedClient routed(v1);
    const auto moved = digest_at(1536, kStrA, kStrB);  // v1: shard 0, v2: shard 1
    const auto result = routed.observe(moved.to_string(), "migrant");
    EXPECT_EQ(result.name, "migrant");
    EXPECT_TRUE(result.new_family);
    EXPECT_EQ(routed.redirects_followed(), 1u);
    EXPECT_EQ(routed.map().version(), 2u) << "the redirect must refresh the map";

    // The sighting landed on the v2 owner, and the rejecting shard
    // counted the redirect for operators.
    sv::QueryClient probe0("127.0.0.1", server0.port());
    sv::QueryClient probe1("127.0.0.1", server1.port());
    EXPECT_EQ(sv::parse_stats(probe1.request("STATS")).get("families"), 1u);
    EXPECT_EQ(sv::parse_stats(probe0.request("STATS")).get("families"), 0u);
    EXPECT_EQ(sv::parse_stats(probe0.request("STATS")).get("wrong_shard_rejects"), 1u);

    // Next observe in the moved range routes straight to the new owner.
    const auto again = routed.observe(nth_digest(1536, 41).to_string(), "settled");
    EXPECT_EQ(again.name, "settled");
    EXPECT_EQ(routed.redirects_followed(), 1u);
}

// ---------------------------------------------------------------------------
// Rebalance: a range transfer mid-observe loses no sightings

TEST(Rebalance, RangeTransferConvergesAndConservesSightings) {
    ScratchDir dir("rebalance");
    const auto old_dir = dir.sub("old_owner");
    const auto export_dir = dir.sub("export");
    const auto new_dir = dir.sub("new_owner");

    // Old owner: a WAL-journaling leader holding the whole key space.
    auto old_options = fast_options();
    old_options.segments_dir = old_dir;
    old_options.replication.observe_wal = true;
    old_options.replication.wal_fsync = false;
    sv::RecognitionService old_owner(old_options);
    sv::QueryServer old_server(old_owner);
    sv::QueryClient old_client("127.0.0.1", old_server.port());

    // Mixed traffic: 5 in-range content observes (block sizes 96/192),
    // one in-range behavioral observe (shapelet block size 128), and two
    // out-of-range observes (6144) that must stay behind.
    for (int i = 0; i < 5; ++i) {
        old_client.observe(nth_digest(i % 2 == 0 ? 96 : 192, i).to_string(),
                           "app-" + std::to_string(i));
    }
    old_client.observe_behavior(nth_digest(128, 10).to_string(), "app-ts");
    old_client.observe(nth_digest(6144, 20).to_string(), "stays-0");
    old_client.observe(nth_digest(6144, 21).to_string(), "stays-1");
    ASSERT_TRUE(eventually([&] { return record_count(old_dir) == 8; }))
        << "observe WAL never flushed";

    // First export pass of [0, 1000] under the next map version...
    const auto first = sv::export_range(old_dir, export_dir, 0, 1000, 2);
    EXPECT_EQ(first.records - first.filtered, 6u);
    EXPECT_EQ(first.filtered, 2u);

    // ...observes keep landing mid-transfer (the race the protocol must
    // absorb)...
    old_client.observe(nth_digest(96, 30).to_string(), "late-0");
    old_client.observe(nth_digest(192, 31).to_string(), "late-1");
    ASSERT_TRUE(eventually([&] { return record_count(old_dir) == 10; }));

    // ...so a second pass under a newer version catches the stragglers.
    // Both passes land in the same export directory as distinct streams;
    // the duplicate records they share must fold, not diverge.
    const auto second = sv::export_range(old_dir, export_dir, 0, 1000, 3);
    EXPECT_EQ(second.records - second.filtered, 8u);

    // New owner: replays whatever the replication machinery ships into
    // its followed directory.
    auto new_options = fast_options();
    new_options.segments_dir = new_dir;
    sv::RecognitionService new_owner(new_options);
    sv::ReplicationSourceOptions source_options;
    source_options.segments_dir = export_dir;
    source_options.poll = std::chrono::milliseconds(2);
    sv::ReplicationSource source(source_options);
    sv::ReplicationFollowerOptions follow_options;
    follow_options.leader_port = source.port();
    follow_options.directory = new_dir;
    follow_options.reconnect_backoff = std::chrono::milliseconds(20);
    sv::ReplicationFollower follower(follow_options);

    // Cutover gate: the new owner's range fingerprint converges to the
    // old owner's (fingerprints exclude sighting tallies precisely so the
    // duplicated stragglers cannot block convergence).
    const auto old_fp = old_owner.snapshot()->registry.fingerprint_range(0, 1000);
    ASSERT_TRUE(eventually([&] {
        return new_owner.snapshot()->registry.fingerprint_range(0, 1000) == old_fp;
    })) << "range fingerprint never converged;\nold:\n"
        << old_owner.snapshot()->registry.export_range(0, 1000) << "new:\n"
        << new_owner.snapshot()->registry.export_range(0, 1000);

    // The FPRANGE verb serves the same fingerprint over the wire — the
    // probe an operator's cutover script polls.
    EXPECT_EQ(old_client.fingerprint_range(0, 1000), old_fp);

    // Conservation: every transferred sighting identifies on the new
    // owner under its label, including the mid-transfer stragglers and
    // the behavioral channel.
    const auto check = [&](const sf::FuzzyDigest& digest, const std::string& label,
                           bool behavioral) {
        const auto match = behavioral ? new_owner.identify_behavior(digest)
                                      : new_owner.identify(digest);
        ASSERT_TRUE(match.has_value()) << label << " lost in transfer";
        EXPECT_EQ(match->name, label);
    };
    for (int i = 0; i < 5; ++i) {
        check(nth_digest(i % 2 == 0 ? 96 : 192, i), "app-" + std::to_string(i), false);
    }
    check(nth_digest(128, 10), "app-ts", true);
    check(nth_digest(96, 30), "late-0", false);
    check(nth_digest(192, 31), "late-1", false);

    // Nothing outside the range crossed over.
    EXPECT_TRUE(new_owner.snapshot()->registry.export_range(1001, ~0ull).empty());
    EXPECT_FALSE(old_owner.snapshot()->registry.export_range(1001, ~0ull).empty());
}
