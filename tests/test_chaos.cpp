// Chaos campaigns over the in-process fleet harness (src/serve/chaos.hpp):
// randomized failpoint schedules and kill-restarts must leave every client
// op typed-and-prompt, the healed fleet fingerprint-converged, and the
// leader checkpoint reloadable — the acceptance invariants of
// docs/robustness.md. The failpoint campaigns need a -DSIREN_FAILPOINTS=ON
// build and skip otherwise (the CI chaos leg runs them).

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <string>

#include "serve/chaos.hpp"
#include "util/failpoint.hpp"

namespace fs = std::filesystem;
namespace sc = siren::serve::chaos;

namespace {

class ScratchDir {
public:
    explicit ScratchDir(const std::string& tag) {
        static std::atomic<int> counter{0};
        path_ = (fs::temp_directory_path() /
                 ("siren_chaos_" + tag + "_" + std::to_string(::getpid()) + "_" +
                  std::to_string(counter.fetch_add(1))))
                    .string();
        fs::remove_all(path_);
        fs::create_directories(path_);
    }
    ~ScratchDir() {
        std::error_code ec;
        fs::remove_all(path_, ec);
    }
    const std::string& path() const { return path_; }

private:
    std::string path_;
};

sc::ChaosOptions campaign(const std::string& root, std::uint64_t seed, std::size_t ops) {
    sc::ChaosOptions options;
    options.root = root;
    options.seed = seed;
    options.ops = ops;
    options.followers = 2;
    return options;
}

}  // namespace

TEST(Chaos, KillRestartScheduleHoldsInvariants) {
    // Runs in every build: kill-restarts only, no failpoints. Leader and
    // follower deaths mid-traffic must never hang an op or tear state.
    ScratchDir dir("kills");
    auto options = campaign(dir.path(), 11, 80);
    options.use_failpoints = false;
    const auto report = sc::run_chaos(options);
    EXPECT_TRUE(report.ok()) << report.failure << '\n' << sc::format_report(report);
    EXPECT_TRUE(report.converged);
    EXPECT_TRUE(report.checkpoint_reload_ok);
    EXPECT_EQ(report.deadline_misses, 0u);
    EXPECT_GE(report.kills_leader + report.kills_follower, 1u)
        << "the seed must actually schedule kills";
    EXPECT_GE(report.ops_ok, 1u);
}

TEST(Chaos, SeededFailpointCampaignHealsAndConverges) {
    if (!siren::util::failpoint::compiled_in()) {
        GTEST_SKIP() << "build with -DSIREN_FAILPOINTS=ON for fault-injection chaos";
    }
    ScratchDir dir("faults");
    const auto report = sc::run_chaos(campaign(dir.path(), 42, 160));
    EXPECT_TRUE(report.ok()) << report.failure << '\n' << sc::format_report(report);
    EXPECT_TRUE(report.converged);
    EXPECT_TRUE(report.checkpoint_reload_ok);
    EXPECT_EQ(report.deadline_misses, 0u);
    EXPECT_GE(report.faults_armed, 1u) << "the seed must actually arm failpoints";
    EXPECT_GE(report.failpoint_fires, 1u) << "armed faults must actually land";
    EXPECT_GE(report.ops_ok, 1u);
    // Convergence is leader == every follower, reported per replica.
    ASSERT_EQ(report.follower_fingerprints.size(), 2u);
    for (const auto fp : report.follower_fingerprints) {
        EXPECT_EQ(fp, report.leader_fingerprint);
    }
}

TEST(Chaos, SecondSeedCoversDifferentSchedule) {
    if (!siren::util::failpoint::compiled_in()) {
        GTEST_SKIP() << "build with -DSIREN_FAILPOINTS=ON for fault-injection chaos";
    }
    ScratchDir dir("faults2");
    const auto report = sc::run_chaos(campaign(dir.path(), 1337, 120));
    EXPECT_TRUE(report.ok()) << report.failure << '\n' << sc::format_report(report);
    EXPECT_TRUE(report.converged);
    EXPECT_EQ(report.deadline_misses, 0u);
}
