// Zero-copy wire path: steady-state allocation behavior. The claims under
// test (ISSUE 1 / docs/wire_format.md): after warm-up, encode/decode of a
// datagram allocates nothing, and the collector's send path plus the
// arena+view flush allocate independently of the number of datagrams.

#define SIREN_ALLOC_PROBE_IMPLEMENT
#include "util/alloc_probe.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analytics/aggregate.hpp"
#include "collect/collector.hpp"
#include "consolidate/consolidator.hpp"
#include "net/channel.hpp"
#include "net/chunker.hpp"
#include "net/codec.hpp"
#include "workload/synthesizer.hpp"

namespace sn = siren::net;
namespace su = siren::util;

namespace {

sn::Message sample_message() {
    sn::Message m;
    m.job_id = 1000042;
    m.step_id = 3;
    m.pid = 4242;
    m.exe_hash = "00ff00ff00ff00ff00ff00ff00ff00ff";
    m.host = "nid000123";
    m.time = 1733900000;
    m.type = sn::MsgType::kObjects;
    m.content = "/lib64/libc.so.6\n/opt/siren/lib/siren.so\n/usr/lib64/libnuma.so.1";
    return m;
}

/// The framework InlineShard's buffering scheme, rebuilt from public API:
/// raw bytes into an arena, views decoded in place at flush.
struct ArenaShard : sn::Transport {
    std::string arena;
    std::vector<std::pair<std::size_t, std::size_t>> spans;
    std::vector<sn::MessageView> views;
    siren::consolidate::ViewConsolidator consolidator;

    void send(std::string_view d) noexcept override {
        spans.push_back({arena.size(), d.size()});
        arena.append(d);
    }
    siren::consolidate::ConsolidationResult flush() {
        views.clear();
        for (const auto& [offset, size] : spans) {
            sn::MessageView view;
            sn::decode_view(std::string_view(arena).substr(offset, size), view);
            views.push_back(view);
        }
        auto result = consolidator.consolidate(views);
        arena.clear();
        spans.clear();
        return result;
    }
};

}  // namespace

TEST(ZeroCopyWire, EncodeDecodeSteadyStateIsAllocationFree) {
    const sn::Message m = sample_message();
    std::string wire;
    sn::MessageView view;
    sn::encode_into(m, wire);  // warm the buffer
    sn::decode_view(wire, view);

    su::alloc_probe_reset();
    for (int i = 0; i < 1000; ++i) {
        sn::encode_into(m, wire);
        sn::decode_view(wire, view);
    }
    EXPECT_EQ(su::alloc_probe_count(), 0u)
        << "encode_into/decode_view must not allocate once the wire buffer is warm";
}

TEST(ZeroCopyWire, ViewEncodeOfDecodedViewIsAllocationFree) {
    sn::Message m = sample_message();
    m.content = "escaped|content\twith\neverything\\";
    const std::string wire = sn::encode(m);
    sn::MessageView view;
    sn::decode_view(wire, view);
    std::string reencoded;
    sn::encode_into(view, reencoded);  // warm

    su::alloc_probe_reset();
    for (int i = 0; i < 1000; ++i) sn::encode_into(view, reencoded);
    EXPECT_EQ(su::alloc_probe_count(), 0u);
    EXPECT_EQ(reencoded, wire);
}

TEST(ZeroCopyWire, CollectorAllocationsDoNotScaleWithDatagramCount) {
    siren::workload::BinaryRecipe recipe;
    recipe.lineage = "benchware";
    recipe.compilers = {"GCC: (SUSE Linux) 7.5.0"};
    siren::collect::FileStore store;
    siren::collect::ExecutableImage image;
    image.bytes = siren::workload::synthesize(recipe);
    const std::string exe = "/users/u/benchware/bin/app";
    store.register_executable(exe, std::move(image));

    siren::sim::SimProcess small;
    small.exe_path = exe;
    small.loaded_objects = {"/lib64/libc.so.6"};
    small.loaded_modules = {"cce/15.0.1"};

    siren::sim::SimProcess big = small;
    for (int i = 0; i < 2000; ++i) {
        big.loaded_modules.push_back("filler-module-" + std::to_string(i) + "/1.0.0");
    }

    ArenaShard shard;
    siren::collect::Collector collector(store, shard);

    // Warm-up: derived-info cache, wire buffer, arena capacity.
    const std::size_t datagrams_small = collector.collect(small);
    shard.flush();
    const std::size_t datagrams_big = collector.collect(big);
    shard.flush();
    ASSERT_GT(datagrams_big, datagrams_small + 50) << "big process should chunk heavily";

    su::alloc_probe_reset();
    collector.collect(small);
    const std::uint64_t allocs_small = su::alloc_probe_count();
    shard.flush();

    su::alloc_probe_reset();
    collector.collect(big);
    const std::uint64_t allocs_big = su::alloc_probe_count();
    shard.flush();

    // The big collect ships hundreds more datagrams; per-message heap
    // traffic would show up as hundreds more allocations. What remains is
    // per-process work (content rendering, hashing), whose allocation count
    // is nearly content-size independent — allow slack for string growth
    // reallocations in the rendered module list.
    EXPECT_LE(allocs_big, allocs_small + 40)
        << "send path must not allocate per datagram (small=" << allocs_small
        << " big=" << allocs_big << " datagram delta="
        << datagrams_big - datagrams_small << ")";
}

TEST(ZeroCopyWire, FlushAllocationsDoNotScaleWithChunkCount) {
    // Single-string content (FILE_H) so record materialization cost is one
    // string either way; only the chunk count differs.
    sn::Message header = sample_message();
    header.type = sn::MsgType::kFileHash;

    const auto wires_for = [&](std::size_t content_bytes) {
        const std::string content(content_bytes, 'h');
        std::vector<std::string> wires;
        for (const auto& chunk : sn::chunk_content(header, content)) {
            wires.push_back(sn::encode(chunk));
        }
        return wires;
    };
    const auto wires_small = wires_for(200);
    const auto wires_big = wires_for(40000);
    ASSERT_GT(wires_big.size(), wires_small.size() + 20);

    ArenaShard shard;
    const auto run = [&](const std::vector<std::string>& wires) {
        for (const auto& w : wires) shard.send(w);
        return shard.flush();
    };
    run(wires_big);  // warm arena, views, consolidator scratch

    su::alloc_probe_reset();
    run(wires_small);
    const std::uint64_t allocs_small = su::alloc_probe_count();

    su::alloc_probe_reset();
    run(wires_big);
    const std::uint64_t allocs_big = su::alloc_probe_count();

    EXPECT_LE(allocs_big, allocs_small + 16)
        << "flush must not allocate per chunk (small=" << allocs_small
        << " big=" << allocs_big << ")";
}

TEST(ZeroCopyWire, ArenaShardMatchesOwnedConsolidation) {
    // The arena + view flush must agree with decoding every datagram into an
    // owned Message and consolidating that (same guarantee the campaign
    // relies on).
    siren::workload::BinaryRecipe recipe;
    recipe.lineage = "benchware";
    siren::collect::FileStore store;
    siren::collect::ExecutableImage image;
    image.bytes = siren::workload::synthesize(recipe);
    const std::string exe = "/users/u/benchware/bin/app";
    store.register_executable(exe, std::move(image));

    siren::sim::SimProcess p;
    p.exe_path = exe;
    p.loaded_objects = {"/lib64/libc.so.6"};

    ArenaShard shard;
    siren::collect::Collector collector(store, shard);
    collector.collect(p);

    std::vector<sn::Message> owned;
    for (const auto& [offset, size] : shard.spans) {
        owned.push_back(sn::decode(std::string_view(shard.arena).substr(offset, size)));
    }
    const auto by_owned = siren::consolidate::consolidate(owned);
    const auto by_view = shard.flush();
    EXPECT_EQ(by_view.records, by_owned.records);
}
