// Figure 2: derived+filtered shared-object tags of user executables, with
// unique users / jobs / processes / executables per tag.

#include "analytics/tables.hpp"
#include "bench_common.hpp"

int main() {
    siren::bench::print_header(
        "Figure 2 — Derived and filtered shared objects (library tags)", "Figure 2");
    const auto result = siren::bench::run_lumi();
    const auto t = siren::analytics::fig2_library_tags(result.aggregates);
    std::printf("%s\n", t.render().c_str());
    std::printf("Paper: siren and pthread lead (siren.so is injected everywhere); the\n"
                "climatedt tags show many unique executables but few jobs (icon's 175\n"
                "builds); ROCm tags indicate the GPU codes.\n");
    return 0;
}
