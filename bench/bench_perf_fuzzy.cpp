// Microbenchmarks (google-benchmark) for the hashing substrate: fuzzy
// hashing vs cryptographic hashing throughput, and digest comparison vs
// byte-level comparison — the scalability argument of paper §2.1 ("fuzzy
// hashes [are] faster and more scalable than comparing files
// byte-by-byte").

#include <benchmark/benchmark.h>

#include "fuzzy/fuzzy.hpp"
#include "hashing/sha256.hpp"
#include "hashing/xxhash.hpp"
#include "util/rng.hpp"

namespace {

std::vector<std::uint8_t> bytes_of(std::size_t n, std::uint64_t seed = 7) {
    siren::util::Rng rng(seed);
    return rng.bytes(n);
}

void BM_FuzzyHash(benchmark::State& state) {
    const auto data = bytes_of(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(siren::fuzzy::fuzzy_hash(data));
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_FuzzyHash)->Range(1 << 10, 1 << 24);

void BM_TlshHash(benchmark::State& state) {
    const auto data = bytes_of(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(siren::fuzzy::tlsh_hash(data));
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_TlshHash)->Range(1 << 10, 1 << 24);

void BM_TlshCompare(benchmark::State& state) {
    const auto a = siren::fuzzy::tlsh_hash(bytes_of(1 << 20, 1)).value();
    const auto b = siren::fuzzy::tlsh_hash(bytes_of(1 << 20, 2)).value();
    for (auto _ : state) {
        benchmark::DoNotOptimize(siren::fuzzy::tlsh_distance(a, b));
    }
}
BENCHMARK(BM_TlshCompare);

void BM_Sha256(benchmark::State& state) {
    const auto data = bytes_of(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        siren::hash::Sha256 h;
        h.update(data.data(), data.size());
        benchmark::DoNotOptimize(h.finish());
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Sha256)->Range(1 << 10, 1 << 24);

void BM_Xxh128(benchmark::State& state) {
    const auto data = bytes_of(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(siren::hash::xxh128(data.data(), data.size()));
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Xxh128)->Range(1 << 10, 1 << 24);

/// Digest-vs-digest comparison: O(64^2) on fixed-size digests, independent
/// of file size.
void BM_FuzzyCompare(benchmark::State& state) {
    const auto a = siren::fuzzy::fuzzy_hash(bytes_of(1 << 20, 1));
    auto data = bytes_of(1 << 20, 1);
    for (std::size_t i = 0; i < 2048; ++i) data[100000 + i] ^= 0x55;  // similar file
    const auto b = siren::fuzzy::fuzzy_hash(data);
    for (auto _ : state) {
        benchmark::DoNotOptimize(siren::fuzzy::compare(a, b));
    }
}
BENCHMARK(BM_FuzzyCompare);

/// The baseline SIREN replaces: byte-level comparison scales with file
/// size, digest comparison does not.
void BM_ByteLevelCompare(benchmark::State& state) {
    const auto a = bytes_of(static_cast<std::size_t>(state.range(0)), 1);
    auto b = a;
    b[b.size() / 2] ^= 0x55;
    for (auto _ : state) {
        std::size_t same = 0;
        for (std::size_t i = 0; i < a.size(); ++i) same += a[i] == b[i];
        benchmark::DoNotOptimize(same);
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_ByteLevelCompare)->Range(1 << 10, 1 << 24);

void BM_WeightedEditDistance(benchmark::State& state) {
    // Worst-case digest-length inputs. Default costs dispatch to the
    // bit-parallel indel kernel (one 64-bit word per row).
    std::string a, b;
    siren::util::Rng rng(3);
    for (int i = 0; i < 64; ++i) {
        a += static_cast<char>('A' + rng.index(26));
        b += static_cast<char>('A' + rng.index(26));
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(siren::fuzzy::weighted_edit_distance(a, b));
    }
}
BENCHMARK(BM_WeightedEditDistance);

void BM_EditDistanceDpRow(benchmark::State& state) {
    // The O(n*m) DP the bit-parallel kernel replaced, for the trajectory
    // ratio (damerau_levenshtein keeps the rotating-row DP core).
    std::string a, b;
    siren::util::Rng rng(3);
    for (int i = 0; i < 64; ++i) {
        a += static_cast<char>('A' + rng.index(26));
        b += static_cast<char>('A' + rng.index(26));
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(siren::fuzzy::damerau_levenshtein(a, b));
    }
}
BENCHMARK(BM_EditDistanceDpRow);

}  // namespace

BENCHMARK_MAIN();
