// Ablation: brute-force fuzzy search vs the bucketed prepared-digest index.
//
// The paper argues fuzzy-hash comparison is "faster and more scalable than
// comparing files byte-by-byte" (§2.1); this bench quantifies the next
// scaling step a production registry needs — not re-preparing and fully
// rescoring every known digest per probe. The index exploits the
// comparison semantics (nonzero scores require a shared 7-gram at a
// comparable block size) to prune candidates without losing a single
// match: only the probe's three comparable block-size buckets are scanned,
// each candidate costs a Bloom-signature AND plus a sorted-gram merge, and
// results stay bit-identical to brute force.

#include <string>
#include <vector>

#include "bench_common.hpp"
#include "fuzzy/fuzzy.hpp"
#include "recognize/recognize.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace {

/// Corpus: `families` lineages of `variants` each (localized drift), the
/// shape of a real known-software registry.
std::vector<siren::fuzzy::FuzzyDigest> make_corpus(std::size_t families, std::size_t variants,
                                                   std::uint64_t seed) {
    siren::util::Rng rng(seed);
    std::vector<siren::fuzzy::FuzzyDigest> corpus;
    corpus.reserve(families * variants);
    for (std::size_t f = 0; f < families; ++f) {
        std::vector<std::uint8_t> base = rng.bytes(8192);
        for (std::size_t v = 0; v < variants; ++v) {
            if (v > 0) {
                // Rewrite one region per variant step.
                const std::size_t start = (v * 977) % 6000;
                for (std::size_t i = start; i < start + 256; ++i) {
                    base[i] = static_cast<std::uint8_t>(rng.below(256));
                }
            }
            corpus.push_back(siren::fuzzy::fuzzy_hash(base));
        }
    }
    return corpus;
}

}  // namespace

int main() {
    siren::bench::print_header(
        "Ablation — similarity search: brute force vs inverted 7-gram index",
        "the §2.1 scalability argument, extended to corpus scale");

    siren::util::TextTable t({"Corpus size", "Probes", "Brute ms/probe", "Indexed ms/probe",
                              "Speedup", "Results identical"});

    for (const std::size_t families : {32u, 128u, 512u, 2048u}) {
        constexpr std::size_t kVariants = 4;
        const auto corpus = make_corpus(families, kVariants, 7);

        siren::recognize::SimilarityIndex index;
        for (const auto& d : corpus) index.add(d);

        // Probe with a sample of corpus members (self + lineage hits) —
        // the registry's steady-state workload.
        const std::size_t probes = std::min<std::size_t>(64, corpus.size());
        bool identical = true;

        siren::util::Stopwatch brute_watch;
        std::size_t brute_hits = 0;
        for (std::size_t p = 0; p < probes; ++p) {
            brute_hits += index.query_bruteforce(corpus[p * corpus.size() / probes], 1).size();
        }
        const double brute_ms = brute_watch.seconds() * 1000.0 / static_cast<double>(probes);

        siren::util::Stopwatch indexed_watch;
        std::size_t indexed_hits = 0;
        for (std::size_t p = 0; p < probes; ++p) {
            indexed_hits += index.query(corpus[p * corpus.size() / probes], 1).size();
        }
        const double indexed_ms =
            indexed_watch.seconds() * 1000.0 / static_cast<double>(probes);

        for (std::size_t p = 0; p < probes; ++p) {
            const auto& probe = corpus[p * corpus.size() / probes];
            if (index.query(probe, 1) != index.query_bruteforce(probe, 1)) {
                identical = false;
                break;
            }
        }
        if (brute_hits != indexed_hits) identical = false;

        char speedup[32];
        std::snprintf(speedup, sizeof speedup, "%.1fx",
                      indexed_ms > 0 ? brute_ms / indexed_ms : 0.0);
        char brute_cell[32];
        std::snprintf(brute_cell, sizeof brute_cell, "%.3f", brute_ms);
        char indexed_cell[32];
        std::snprintf(indexed_cell, sizeof indexed_cell, "%.3f", indexed_ms);
        t.add_row({std::to_string(corpus.size()), std::to_string(probes), brute_cell,
                   indexed_cell, speedup, identical ? "yes" : "NO"});
    }

    std::printf("%s\n", t.render().c_str());
    std::printf(
        "Expected shape: brute force re-collapses digests and runs a full\n"
        "DP rescore per stored digest; the indexed scan touches only the\n"
        "comparable block-size buckets and rejects most candidates with a\n"
        "signature AND + sorted-gram merge, so the speedup widens with the\n"
        "corpus while results remain bit-identical — the prefilter provably\n"
        "loses no matches (see docs/similarity_engine.md).\n");
    return 0;
}
