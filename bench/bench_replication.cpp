// Microbenchmarks (google-benchmark) for the replication layer: follower
// catch-up throughput from an empty replica (records/s over loopback TCP)
// against the leader's own local write throughput for the same corpus, and
// steady-state replication lag while a sustained observe storm keeps
// appending to the leader's segments.
//
// The cmake target `bench-replication-json` condenses the numbers into
// BENCH_replication.json. The gated ratio is replication_catchup_lag =
// catch-up wall time / local write wall time: if shipping the log cannot
// keep within a small factor of writing it, a follower under sustained
// load never converges. bench/trajectory/BENCH_replication.json is the
// committed trajectory point.

#include <benchmark/benchmark.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/replication.hpp"
#include "storage/segment_store.hpp"
#include "util/rng.hpp"

namespace {

namespace fs = std::filesystem;
namespace sv = siren::serve;
namespace ss = siren::storage;

std::string scratch_root() {
    static const std::string root = [] {
        std::string path = (fs::temp_directory_path() /
                            ("siren_bench_repl_" + std::to_string(::getpid())))
                               .string();
        fs::remove_all(path);
        fs::create_directories(path);
        return path;
    }();
    return root;
}

/// Synthetic ~128-byte records, the size class of a FILE_H wire datagram.
const std::vector<std::string>& corpus(std::size_t n) {
    static std::vector<std::string> records;
    if (records.size() < n) {
        siren::util::Rng rng(4242);
        records.reserve(n);
        while (records.size() < n) {
            std::string r = "record-" + std::to_string(records.size()) + "-";
            while (r.size() < 128) r.push_back(static_cast<char>('a' + rng.below(26)));
            records.push_back(std::move(r));
        }
    }
    return records;
}

ss::SegmentOptions no_fsync() {
    ss::SegmentOptions options;
    options.fsync_enabled = false;
    return options;
}

std::uint64_t dir_bytes(const std::string& dir) {
    std::uint64_t total = 0;
    for (const auto& path : ss::list_segments(dir)) {
        std::error_code ec;
        const auto size = fs::file_size(path, ec);
        if (!ec) total += size;
    }
    return total;
}

void wait_until_bytes(const std::string& dir, std::uint64_t target) {
    while (dir_bytes(dir) < target) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
}

sv::ReplicationSourceOptions fast_source(const std::string& dir) {
    sv::ReplicationSourceOptions options;
    options.segments_dir = dir;
    options.poll = std::chrono::milliseconds(1);
    return options;
}

/// The baseline: what the leader itself pays to write the corpus locally
/// (fsync off — both sides of the ratio measure byte movement, not disk
/// sync policy).
void BM_SegmentWriteLocal(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto& records = corpus(n);
    int round = 0;
    for (auto _ : state) {
        const std::string dir =
            scratch_root() + "/write_" + std::to_string(state.range(0)) + "_" +
            std::to_string(round++);
        {
            ss::SegmentStore store(dir, 1, no_fsync());
            for (std::size_t i = 0; i < n; ++i) store.append(0, records[i]);
            store.close();
        }
        state.PauseTiming();
        fs::remove_all(dir);
        state.ResumeTiming();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SegmentWriteLocal)->Arg(20000)->Unit(benchmark::kMillisecond);

/// Catch-up: an empty follower subscribes and ships the whole corpus over
/// loopback. Timed per iteration: follower construction (connect +
/// subscribe) through byte-for-byte convergence.
void BM_ReplicationCatchup(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto& records = corpus(n);
    const std::string leader_dir =
        scratch_root() + "/catchup_leader_" + std::to_string(state.range(0));
    if (!fs::exists(leader_dir)) {
        ss::SegmentStore store(leader_dir, 1, no_fsync());
        for (std::size_t i = 0; i < n; ++i) store.append(0, records[i]);
        store.close();
    }
    const std::uint64_t target = dir_bytes(leader_dir);
    sv::ReplicationSource source(fast_source(leader_dir));

    int round = 0;
    for (auto _ : state) {
        const std::string replica_dir =
            scratch_root() + "/catchup_replica_" + std::to_string(round++);
        {
            sv::ReplicationFollowerOptions options;
            options.leader_port = source.port();
            options.directory = replica_dir;
            sv::ReplicationFollower follower(options);
            wait_until_bytes(replica_dir, target);
        }
        state.PauseTiming();
        fs::remove_all(replica_dir);
        state.ResumeTiming();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
    state.counters["shipped_bytes"] =
        benchmark::Counter(static_cast<double>(target), benchmark::Counter::kDefaults);
}
BENCHMARK(BM_ReplicationCatchup)->Arg(20000)->Unit(benchmark::kMillisecond);

/// Steady-state lag under a sustained observe storm: a connected follower
/// is live while the leader keeps appending; each iteration lands one
/// burst and waits for the follower to drain it — items/s is the sustained
/// replicated-records rate, real time per iteration the burst-to-replica
/// lag.
std::unique_ptr<ss::SegmentStore> g_storm_store;
std::unique_ptr<sv::ReplicationSource> g_storm_source;
std::unique_ptr<sv::ReplicationFollower> g_storm_follower;

void BM_ReplicationStormLag(benchmark::State& state) {
    const auto burst = static_cast<std::size_t>(state.range(0));
    const auto& records = corpus(burst);
    const std::string leader_dir = scratch_root() + "/storm_leader";
    const std::string replica_dir = scratch_root() + "/storm_replica";
    if (!g_storm_store) {
        g_storm_store = std::make_unique<ss::SegmentStore>(leader_dir, 1, no_fsync());
        g_storm_source = std::make_unique<sv::ReplicationSource>(fast_source(leader_dir));
        sv::ReplicationFollowerOptions options;
        options.leader_port = g_storm_source->port();
        options.directory = replica_dir;
        g_storm_follower = std::make_unique<sv::ReplicationFollower>(options);
    }
    for (auto _ : state) {
        for (std::size_t i = 0; i < burst; ++i) g_storm_store->append(0, records[i]);
        g_storm_store->sync_all();
        wait_until_bytes(replica_dir, dir_bytes(leader_dir));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(burst));
}
BENCHMARK(BM_ReplicationStormLag)->Arg(1000)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    // Tear the storm fixture down before its directories vanish.
    g_storm_follower.reset();
    g_storm_source.reset();
    g_storm_store.reset();
    fs::remove_all(scratch_root());
    return 0;
}
