// Ablation: identification-method comparison on the UNKNOWN binaries.
// name-regex (job/file names) vs crypto-exact (XALT-style sha1 equality)
// vs fuzzy-knn (SIREN): the experiment behind the paper's core claim.

#include "analytics/baselines.hpp"
#include "bench_common.hpp"
#include "util/table.hpp"

int main() {
    namespace sa = siren::analytics;
    siren::bench::print_header("Ablation — identification methods on UNKNOWN binaries",
                               "§4.3 / Table 7 (method comparison)");
    const auto result = siren::bench::run_lumi();

    // Ground truth from the campaign catalog: every a.out under
    // /scratch/project_465000531 is an icon build.
    sa::GroundTruth truth;
    std::vector<std::string> probes;
    for (const auto& [path, exe] : result.aggregates.execs) {
        if (path.find("/a.out") != std::string::npos) {
            truth[std::string(path)] = "icon";
            probes.push_back(std::string(path));
        }
    }
    std::printf("Probes: %zu nondescript a.out executables (ground truth: icon)\n\n",
                probes.size());

    const auto labeler = sa::Labeler::default_rules();
    const auto outcomes =
        sa::evaluate_identification(result.aggregates, truth, probes, labeler,
                                    /*min_confidence=*/25.0);

    siren::util::TextTable t({"Method", "Identified", "Total", "Accuracy"});
    for (const auto& o : outcomes) {
        t.add_row({o.method, std::to_string(o.identified), std::to_string(o.total),
                   siren::util::fixed(o.accuracy() * 100, 1) + "%"});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("Expected shape: name-regex 0%% (a.out carries no signal); crypto-exact\n"
                "identifies only byte-identical copies; fuzzy-knn identifies (nearly) all.\n");
    return 0;
}
