// Figure 4: compiler identification strings by software label (0/1 matrix).

#include "analytics/tables.hpp"
#include "bench_common.hpp"

int main() {
    siren::bench::print_header("Figure 4 — Compiler identification by software label",
                               "Figure 4");
    const auto result = siren::bench::run_lumi();
    const auto t = siren::analytics::fig4_compiler_matrix(result.aggregates);
    std::printf("%s\n", t.render().c_str());
    std::printf("Paper rows: LAMMPS={GCC[SUSE],LLD[AMD]}, GROMACS={LLD[AMD]},\n"
                "miniconda={GCC[Red Hat],GCC[conda],rustc}, janko={GCC[SUSE],GCC[HPE]},\n"
                "icon={GCC[SUSE],clang[Cray],clang[AMD]}, amber={GCC[SUSE],clang[AMD]},\n"
                "gzip={LLD[AMD]}, alexandria={GCC[SUSE]}, RadRad={GCC[SUSE],clang[Cray]}.\n");
    return 0;
}
