// Ablation: UDP fire-and-forget vs TCP framed streaming vs XALT-style
// per-datagram files vs the durable segment-ingest spine — the design
// decision of paper §3.1 ("we decided for a UDP-based approach over TCP or
// file-based methods (such as creating individual files for every hooked
// process)"), extended with the fourth durability arm this repo adds: UDP
// into the sharded epoll daemon journaling one append-only segment stream
// per shard (docs/storage_format.md) instead of one file per datagram.

#include <atomic>
#include <chrono>
#include <filesystem>
#include <span>
#include <thread>

#include "bench_common.hpp"
#include "ingest/ingest_server.hpp"
#include "net/codec.hpp"
#include "net/file_spool.hpp"
#include "net/tcp.hpp"
#include "net/udp.hpp"
#include "storage/segment_store.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace {

siren::net::Message sample_message() {
    siren::net::Message m;
    m.job_id = 1000042;
    m.pid = 4242;
    m.exe_hash = "00ff00ff00ff00ff00ff00ff00ff00ff";
    m.host = "nid000123";
    m.time = 1733900000;
    m.type = siren::net::MsgType::kObjects;
    m.content = "/lib64/libc.so.6\n/opt/siren/lib/siren.so\n/usr/lib64/libnuma.so.1";
    return m;
}

constexpr int kMessages = 50000;

}  // namespace

int main() {
    siren::bench::print_header(
        "Ablation — UDP fire-and-forget vs TCP vs spool files vs segment ingest",
        "§3.1 design choice");
    const std::string wire = siren::net::encode(sample_message());
    siren::util::TextTable t({"Transport", "Scenario", "Messages", "Wall ms", "Msg/s",
                              "Delivered", "Send errors"});

    // --- UDP with live receiver ---------------------------------------------
    {
        siren::net::MessageQueue queue(1 << 18);
        siren::net::UdpReceiver receiver(queue, 0);
        siren::net::UdpSender sender("127.0.0.1", receiver.port());
        siren::util::Stopwatch watch;
        for (int i = 0; i < kMessages; ++i) sender.send(wire);
        const double ms = watch.millis();
        std::this_thread::sleep_for(std::chrono::milliseconds(300));
        receiver.stop();
        t.add_row({"UDP", "receiver up", std::to_string(kMessages),
                   siren::util::fixed(ms, 1),
                   siren::util::with_commas(static_cast<std::uint64_t>(kMessages / (ms / 1e3))),
                   siren::util::with_commas(receiver.stats().delivered.load()),
                   std::to_string(sender.errors())});
    }

    // --- TCP with live receiver ---------------------------------------------
    {
        siren::net::MessageQueue queue(1 << 18);
        siren::net::TcpReceiver receiver(queue, 0);
        siren::net::TcpSender sender("127.0.0.1", receiver.port());
        siren::util::Stopwatch watch;
        for (int i = 0; i < kMessages; ++i) sender.send(wire);
        const double ms = watch.millis();
        std::this_thread::sleep_for(std::chrono::milliseconds(300));
        receiver.stop();
        t.add_row({"TCP", "receiver up", std::to_string(kMessages),
                   siren::util::fixed(ms, 1),
                   siren::util::with_commas(static_cast<std::uint64_t>(kMessages / (ms / 1e3))),
                   siren::util::with_commas(receiver.stats().delivered.load()),
                   std::to_string(sender.errors())});
    }

    // --- file spool (XALT-style): one file per datagram -----------------------
    {
        namespace fs = std::filesystem;
        const auto spool = fs::temp_directory_path() / "siren_bench_spool";
        fs::remove_all(spool);
        siren::net::FileSpoolSender sender(spool.string());
        siren::util::Stopwatch watch;
        for (int i = 0; i < kMessages; ++i) sender.send(wire);
        const double ms = watch.millis();

        siren::net::MessageQueue queue(1 << 18);
        const auto sweep = siren::net::drain_spool(spool.string(), queue);
        fs::remove_all(spool);
        t.add_row({"Spool files", "sweep after", std::to_string(kMessages),
                   siren::util::fixed(ms, 1),
                   siren::util::with_commas(static_cast<std::uint64_t>(kMessages / (ms / 1e3))),
                   siren::util::with_commas(sweep.delivered),
                   std::to_string(sender.errors())});
    }

    // --- durable segment ingest: UDP -> epoll shards -> fsync-batched WAL -----
    {
        namespace fs = std::filesystem;
        const auto dir = fs::temp_directory_path() / "siren_bench_ingest_wal";
        fs::remove_all(dir);
        siren::storage::SegmentStore store(dir.string(), 2);
        siren::ingest::IngestOptions options;
        options.shards = 2;
        options.store = &store;
        std::atomic<std::uint64_t> delivered{0};
        siren::ingest::IngestServer server(
            options, [&delivered](std::size_t, std::span<const siren::net::MessageView> batch) {
                delivered.fetch_add(batch.size(), std::memory_order_relaxed);
            });
        siren::net::UdpSender sender("127.0.0.1", server.port());
        siren::util::Stopwatch watch;
        for (int i = 0; i < kMessages; ++i) sender.send(wire);
        const double ms = watch.millis();
        server.quiesce();
        server.stop();
        std::uint64_t replayable = 0;
        siren::storage::replay_directory(dir.string(), [&](std::string_view) { ++replayable; });
        fs::remove_all(dir);
        t.add_row({"Segment ingest", "durable WAL", std::to_string(kMessages),
                   siren::util::fixed(ms, 1),
                   siren::util::with_commas(static_cast<std::uint64_t>(kMessages / (ms / 1e3))),
                   siren::util::with_commas(delivered.load()) + " (" +
                       siren::util::with_commas(replayable) + " replayable)",
                   std::to_string(sender.errors())});
    }

    // --- receiver down --------------------------------------------------------
    {
        siren::net::UdpSender sender("127.0.0.1", 9);  // discard port, no listener
        siren::util::Stopwatch watch;
        for (int i = 0; i < kMessages; ++i) sender.send(wire);
        const double ms = watch.millis();
        t.add_row({"UDP", "receiver down", std::to_string(kMessages),
                   siren::util::fixed(ms, 1),
                   siren::util::with_commas(static_cast<std::uint64_t>(kMessages / (ms / 1e3))),
                   "0", std::to_string(sender.errors())});
    }
    {
        siren::util::Stopwatch watch;
        bool constructed = true;
        try {
            siren::net::TcpSender sender("127.0.0.1", 9);
        } catch (const std::exception&) {
            constructed = false;
        }
        t.add_row({"TCP", "receiver down", "-", siren::util::fixed(watch.millis(), 1), "-",
                   "-", constructed ? "0" : "connect refused"});
    }

    std::printf("%s\n", t.render().c_str());
    std::printf("Shape to observe: UDP keeps its throughput and stays harmless when the\n"
                "receiver is down; TCP couples the hooked process to receiver liveness\n"
                "(connection refused at startup); the spool-file design delivers\n"
                "everything but pays one filesystem create/write/rename per datagram —\n"
                "an order of magnitude slower per message, and every message is a small\n"
                "file the shared filesystem must absorb. The paper's rationale for UDP.\n"
                "The fourth arm keeps UDP's sender-side properties and still ends up\n"
                "durable: the epoll ingest daemon journals raw datagrams into a few\n"
                "append-only, fsync-batched segment files (replayable after a crash) —\n"
                "durability at sequential-write cost instead of per-message metadata.\n");
    return 0;
}
