// Figure 3: imported Python packages extracted from interpreter memory maps.

#include "analytics/tables.hpp"
#include "bench_common.hpp"

int main() {
    siren::bench::print_header("Figure 3 — Imported Python packages", "Figure 3");
    const auto result = siren::bench::run_lumi();
    const auto t = siren::analytics::fig3_python_packages(result.aggregates);
    std::printf("%s\n", t.render().c_str());
    std::printf("Paper: heapq and struct are imported by all three Python users; mpi4py,\n"
                "numpy, pandas, scipy only by specialists.\n");
    return 0;
}
