// Microbenchmarks (google-benchmark) for the data path a hooked process
// exercises: wire codec, chunking, per-process collection, consolidation.
// The per-process cost is the overhead budget the LD_PRELOAD design must
// respect.
//
// Owned-path benchmarks (BM_Decode, BM_CollectConsolidate) have zero-copy
// view counterparts (BM_DecodeView, BM_CollectConsolidateView); the
// allocs_per_op counter (heap allocations per iteration, via the
// util/alloc_probe.hpp operator-new hook) makes the "no per-message heap
// allocation in steady state" claim measurable. bench-pipeline-json runs
// this binary and condenses the numbers into BENCH_pipeline.json.

#include <benchmark/benchmark.h>

#define SIREN_ALLOC_PROBE_IMPLEMENT
#include "util/alloc_probe.hpp"

#include <atomic>
#include <filesystem>
#include <memory>
#include <thread>

#include "analytics/aggregate.hpp"
#include "collect/collector.hpp"
#include "consolidate/consolidator.hpp"
#include "ingest/ingest_server.hpp"
#include "net/channel.hpp"
#include "net/chunker.hpp"
#include "net/codec.hpp"
#include "storage/segment_store.hpp"
#include "workload/synthesizer.hpp"

namespace {

/// Report heap allocations per iteration from the thread-local probe.
class AllocCounter {
public:
    void start() { siren::util::alloc_probe_reset(); }
    void report(benchmark::State& state) {
        state.counters["allocs_per_op"] = benchmark::Counter(
            static_cast<double>(siren::util::alloc_probe_count()),
            benchmark::Counter::kAvgIterations);
    }
};

siren::net::Message sample_message() {
    siren::net::Message m;
    m.job_id = 1000042;
    m.pid = 4242;
    m.exe_hash = "00ff00ff00ff00ff00ff00ff00ff00ff";
    m.host = "nid000123";
    m.time = 1733900000;
    m.type = siren::net::MsgType::kObjects;
    m.content = "/lib64/libc.so.6\n/opt/siren/lib/siren.so\n/usr/lib64/libnuma.so.1";
    return m;
}

void BM_Encode(benchmark::State& state) {
    const auto m = sample_message();
    AllocCounter allocs;
    allocs.start();
    for (auto _ : state) benchmark::DoNotOptimize(siren::net::encode(m));
    allocs.report(state);
}
BENCHMARK(BM_Encode);

void BM_EncodeInto(benchmark::State& state) {
    const auto m = sample_message();
    std::string wire;
    siren::net::encode_into(m, wire);  // warm the buffer
    AllocCounter allocs;
    allocs.start();
    for (auto _ : state) {
        siren::net::encode_into(m, wire);
        benchmark::DoNotOptimize(wire);
    }
    allocs.report(state);
}
BENCHMARK(BM_EncodeInto);

void BM_Decode(benchmark::State& state) {
    const auto wire = siren::net::encode(sample_message());
    AllocCounter allocs;
    allocs.start();
    for (auto _ : state) benchmark::DoNotOptimize(siren::net::decode(wire));
    allocs.report(state);
}
BENCHMARK(BM_Decode);

void BM_DecodeView(benchmark::State& state) {
    const auto wire = siren::net::encode(sample_message());
    siren::net::MessageView view;
    AllocCounter allocs;
    allocs.start();
    for (auto _ : state) {
        siren::net::decode_view(wire, view);
        benchmark::DoNotOptimize(view);
    }
    allocs.report(state);
}
BENCHMARK(BM_DecodeView);

void BM_ChunkReassemble(benchmark::State& state) {
    const std::string content(static_cast<std::size_t>(state.range(0)), 'x');
    const auto header = sample_message();
    for (auto _ : state) {
        siren::net::Reassembler reassembler;
        for (auto& chunk : siren::net::chunk_content(header, content)) {
            reassembler.add(std::move(chunk));
        }
        benchmark::DoNotOptimize(reassembler.assemble());
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_ChunkReassemble)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

struct NullTransport : siren::net::Transport {
    void send(std::string_view) noexcept override {}
};

/// Per-process collection cost for the heaviest scope (user executable),
/// with derived data already memoized — the steady-state cost on a node.
void BM_CollectUserProcess(benchmark::State& state) {
    siren::workload::BinaryRecipe recipe;
    recipe.lineage = "benchware";
    recipe.compilers = {"GCC: (SUSE Linux) 7.5.0"};
    siren::collect::FileStore store;
    siren::collect::ExecutableImage image;
    image.bytes = siren::workload::synthesize(recipe);
    const std::string exe = "/users/u/benchware/bin/app";
    store.register_executable(exe, std::move(image));

    NullTransport transport;
    siren::collect::Collector collector(store, transport);

    siren::sim::SimProcess p;
    p.exe_path = exe;
    p.loaded_objects = {"/lib64/libc.so.6", "/opt/siren/lib/siren.so"};
    p.loaded_modules = {"PrgEnv-cray/8.4.0", "cce/15.0.1"};
    p.memory_map = {{0x400000, 0x500000, "r-xp", exe}};

    (void)collector.collect(p);  // warm the derived cache
    for (auto _ : state) {
        benchmark::DoNotOptimize(collector.collect(p));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CollectUserProcess);

/// Consolidation cost per process record.
void BM_ConsolidateProcess(benchmark::State& state) {
    siren::workload::BinaryRecipe recipe;
    recipe.lineage = "benchware";
    siren::collect::FileStore store;
    siren::collect::ExecutableImage image;
    image.bytes = siren::workload::synthesize(recipe);
    const std::string exe = "/users/u/benchware/bin/app";
    store.register_executable(exe, std::move(image));

    // Capture one process worth of messages.
    struct Capture : siren::net::Transport {
        std::vector<siren::net::Message> messages;
        void send(std::string_view d) noexcept override {
            try {
                messages.push_back(siren::net::decode(d));
            } catch (...) {
            }
        }
    } capture;
    siren::collect::Collector collector(store, capture);
    siren::sim::SimProcess p;
    p.exe_path = exe;
    p.loaded_objects = {"/lib64/libc.so.6"};
    collector.collect(p);

    for (auto _ : state) {
        benchmark::DoNotOptimize(siren::consolidate::consolidate(capture.messages));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ConsolidateProcess);

// ---------------------------------------------------------------------------
// The full inline campaign step — collect one process, ship its datagrams,
// consolidate, fold into aggregates — via the owned decode path (what the
// pipeline did before the zero-copy rework) and the view path (what
// core/framework.cpp does now). The view shard is the same
// arena-of-raw-bytes design as the framework's InlineShard, built here from
// the public API.

struct BenchFixture {
    siren::collect::FileStore store;
    std::string exe = "/users/u/benchware/bin/app";
    siren::sim::SimProcess process;

    BenchFixture() {
        siren::workload::BinaryRecipe recipe;
        recipe.lineage = "benchware";
        recipe.compilers = {"GCC: (SUSE Linux) 7.5.0"};
        siren::collect::ExecutableImage image;
        image.bytes = siren::workload::synthesize(recipe);
        store.register_executable(exe, std::move(image));

        process.exe_path = exe;
        process.loaded_objects = {"/lib64/libc.so.6", "/opt/siren/lib/siren.so"};
        process.loaded_modules = {"PrgEnv-cray/8.4.0", "cce/15.0.1"};
        process.memory_map = {{0x400000, 0x500000, "r-xp", exe}};
    }
};

struct OwnedShard : siren::net::Transport {
    std::vector<siren::net::Message> messages;
    void send(std::string_view d) noexcept override {
        try {
            messages.push_back(siren::net::decode(d));
        } catch (...) {
        }
    }
    void flush(siren::analytics::Aggregates& agg) {
        auto result = siren::consolidate::consolidate(messages);
        for (const auto& record : result.records) agg.add(record);
        messages.clear();
    }
};

struct ViewShard : siren::net::Transport {
    std::string arena;
    std::vector<std::pair<std::size_t, std::size_t>> spans;
    std::vector<siren::net::MessageView> views;
    siren::consolidate::ViewConsolidator consolidator;

    void send(std::string_view d) noexcept override {
        spans.push_back({arena.size(), d.size()});
        arena.append(d);
    }
    void flush(siren::analytics::Aggregates& agg) {
        views.clear();
        for (const auto& [offset, size] : spans) {
            siren::net::MessageView view;
            try {
                siren::net::decode_view(std::string_view(arena).substr(offset, size), view);
                views.push_back(view);
            } catch (...) {
            }
        }
        auto result = consolidator.consolidate(views);
        for (const auto& record : result.records) agg.add(record);
        arena.clear();
        spans.clear();
    }
};

template <typename Shard>
void run_collect_consolidate(benchmark::State& state) {
    BenchFixture fixture;
    Shard shard;
    siren::collect::Collector collector(fixture.store, shard);
    siren::analytics::Aggregates aggregates;

    // Warm the derived cache, the shard buffers and the aggregate maps.
    collector.collect(fixture.process);
    shard.flush(aggregates);

    AllocCounter allocs;
    allocs.start();
    for (auto _ : state) {
        benchmark::DoNotOptimize(collector.collect(fixture.process));
        shard.flush(aggregates);
    }
    allocs.report(state);
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_CollectConsolidate(benchmark::State& state) {
    run_collect_consolidate<OwnedShard>(state);
}
BENCHMARK(BM_CollectConsolidate);

void BM_CollectConsolidateView(benchmark::State& state) {
    run_collect_consolidate<ViewShard>(state);
}
BENCHMARK(BM_CollectConsolidateView);

// ---------------------------------------------------------------------------
// Ingest daemon throughput: datagrams through the shard ring -> arena ->
// decode_view -> handler pipeline (inject() is the socket hot path minus
// the kernel), with and without the durable segment store. The acceptance
// bar for the durable path is within 2x of the in-memory path — fsync
// batching, not fsync-per-record, is what makes that possible.

void BM_IngestThroughput(benchmark::State& state) {
    namespace fs = std::filesystem;
    const std::size_t shards = static_cast<std::size_t>(state.range(0));
    const bool durable = state.range(1) != 0;
    const std::string wire = siren::net::encode(sample_message());

    fs::path dir;
    std::unique_ptr<siren::storage::SegmentStore> store;
    if (durable) {
        // Journal to tmpfs when available: this microbenchmark isolates the
        // *software* cost of durability (framing, CRC, group commit) from
        // the device's fsync bandwidth, which varies orders of magnitude
        // across machines. bench_ablation_transport reports the
        // real-device durable cost.
        const fs::path base = fs::is_directory("/dev/shm") ? fs::path("/dev/shm")
                                                           : fs::temp_directory_path();
        dir = base / ("siren_bench_ingest_" + std::to_string(::getpid()));
        fs::remove_all(dir);
        store = std::make_unique<siren::storage::SegmentStore>(dir.string(), shards);
    }

    siren::ingest::IngestOptions options;
    options.shards = shards;
    options.store = store.get();
    std::atomic<std::uint64_t> handled{0};
    siren::ingest::IngestServer server(
        options, [&handled](std::size_t, std::span<const siren::net::MessageView> batch) {
            handled.fetch_add(batch.size(), std::memory_order_relaxed);
        });

    std::size_t next_shard = 0;
    for (auto _ : state) {
        // Backpressure instead of drops: a full ring means the shard
        // workers are the bottleneck, which is exactly what we measure.
        while (!server.inject(next_shard, wire)) std::this_thread::yield();
        next_shard = (next_shard + 1) % shards;
    }
    server.drain();
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(wire.size()));
    server.stop();
    if (durable) {
        state.counters["journaled"] = static_cast<double>(server.stats().appended);
        store.reset();
        fs::remove_all(dir);
    }
}
BENCHMARK(BM_IngestThroughput)
    ->ArgNames({"shards", "durable"})
    ->Args({4, 0})
    ->Args({4, 1})
    ->UseRealTime();

// Segment replay: how fast a crashed collector's WAL streams back
// (CRC-checked) — the recovery-time budget per gigabyte of backlog.
void BM_SegmentReplay(benchmark::State& state) {
    namespace fs = std::filesystem;
    const auto dir = fs::temp_directory_path() /
                     ("siren_bench_replay_" + std::to_string(::getpid()));
    fs::remove_all(dir);
    constexpr std::uint64_t kRecords = 20000;
    const std::string wire = siren::net::encode(sample_message());
    {
        siren::storage::SegmentStore store(dir.string(), 1);
        for (std::uint64_t i = 0; i < kRecords; ++i) store.append(0, wire);
        store.close();
    }

    std::uint64_t bytes = 0;
    for (auto _ : state) {
        std::uint64_t replayed = 0;
        const auto stats = siren::storage::replay_directory(
            dir.string(), [&replayed](std::string_view record) {
                benchmark::DoNotOptimize(record);
                ++replayed;
            });
        bytes = stats.bytes;
        if (replayed != kRecords) {
            state.SkipWithError("replay lost records");
            break;
        }
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(kRecords));
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(bytes));
    fs::remove_all(dir);
}
BENCHMARK(BM_SegmentReplay);

}  // namespace

BENCHMARK_MAIN();
