// Microbenchmarks (google-benchmark) for the data path a hooked process
// exercises: wire codec, chunking, per-process collection, consolidation.
// The per-process cost is the overhead budget the LD_PRELOAD design must
// respect.

#include <benchmark/benchmark.h>

#include "collect/collector.hpp"
#include "consolidate/consolidator.hpp"
#include "net/channel.hpp"
#include "net/chunker.hpp"
#include "net/codec.hpp"
#include "workload/synthesizer.hpp"

namespace {

siren::net::Message sample_message() {
    siren::net::Message m;
    m.job_id = 1000042;
    m.pid = 4242;
    m.exe_hash = "00ff00ff00ff00ff00ff00ff00ff00ff";
    m.host = "nid000123";
    m.time = 1733900000;
    m.type = siren::net::MsgType::kObjects;
    m.content = "/lib64/libc.so.6\n/opt/siren/lib/siren.so\n/usr/lib64/libnuma.so.1";
    return m;
}

void BM_Encode(benchmark::State& state) {
    const auto m = sample_message();
    for (auto _ : state) benchmark::DoNotOptimize(siren::net::encode(m));
}
BENCHMARK(BM_Encode);

void BM_Decode(benchmark::State& state) {
    const auto wire = siren::net::encode(sample_message());
    for (auto _ : state) benchmark::DoNotOptimize(siren::net::decode(wire));
}
BENCHMARK(BM_Decode);

void BM_ChunkReassemble(benchmark::State& state) {
    const std::string content(static_cast<std::size_t>(state.range(0)), 'x');
    const auto header = sample_message();
    for (auto _ : state) {
        siren::net::Reassembler reassembler;
        for (auto& chunk : siren::net::chunk_content(header, content)) {
            reassembler.add(std::move(chunk));
        }
        benchmark::DoNotOptimize(reassembler.assemble());
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_ChunkReassemble)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

struct NullTransport : siren::net::Transport {
    void send(std::string_view) noexcept override {}
};

/// Per-process collection cost for the heaviest scope (user executable),
/// with derived data already memoized — the steady-state cost on a node.
void BM_CollectUserProcess(benchmark::State& state) {
    siren::workload::BinaryRecipe recipe;
    recipe.lineage = "benchware";
    recipe.compilers = {"GCC: (SUSE Linux) 7.5.0"};
    siren::collect::FileStore store;
    siren::collect::ExecutableImage image;
    image.bytes = siren::workload::synthesize(recipe);
    const std::string exe = "/users/u/benchware/bin/app";
    store.register_executable(exe, std::move(image));

    NullTransport transport;
    siren::collect::Collector collector(store, transport);

    siren::sim::SimProcess p;
    p.exe_path = exe;
    p.loaded_objects = {"/lib64/libc.so.6", "/opt/siren/lib/siren.so"};
    p.loaded_modules = {"PrgEnv-cray/8.4.0", "cce/15.0.1"};
    p.memory_map = {{0x400000, 0x500000, "r-xp", exe}};

    (void)collector.collect(p);  // warm the derived cache
    for (auto _ : state) {
        benchmark::DoNotOptimize(collector.collect(p));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CollectUserProcess);

/// Consolidation cost per process record.
void BM_ConsolidateProcess(benchmark::State& state) {
    siren::workload::BinaryRecipe recipe;
    recipe.lineage = "benchware";
    siren::collect::FileStore store;
    siren::collect::ExecutableImage image;
    image.bytes = siren::workload::synthesize(recipe);
    const std::string exe = "/users/u/benchware/bin/app";
    store.register_executable(exe, std::move(image));

    // Capture one process worth of messages.
    struct Capture : siren::net::Transport {
        std::vector<siren::net::Message> messages;
        void send(std::string_view d) noexcept override {
            try {
                messages.push_back(siren::net::decode(d));
            } catch (...) {
            }
        }
    } capture;
    siren::collect::Collector collector(store, capture);
    siren::sim::SimProcess p;
    p.exe_path = exe;
    p.loaded_objects = {"/lib64/libc.so.6"};
    collector.collect(p);

    for (auto _ : state) {
        benchmark::DoNotOptimize(siren::consolidate::consolidate(capture.messages));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ConsolidateProcess);

}  // namespace

BENCHMARK_MAIN();
