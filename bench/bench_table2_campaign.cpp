// Table 2: data about users' jobs and processes.

#include "analytics/tables.hpp"
#include "bench_common.hpp"

int main() {
    siren::bench::print_header("Table 2 — Users, Jobs, and Processes", "Table 2");
    const auto result = siren::bench::run_lumi();
    std::printf("%s\n", siren::analytics::table2_users(result.aggregates).render().c_str());
    std::printf("Paper (scale 1.0): 12 users, 13,448 jobs, 2,317,859 / 9,042 / 23,316 "
                "system / user / python processes.\n");
    return 0;
}
