// Table 1: the selective data-collection policy matrix.

#include "collect/policy.hpp"
#include "util/table.hpp"

#include "bench_common.hpp"

int main() {
    namespace sc = siren::collect;
    siren::bench::print_header("Table 1 — Data collection for different scopes", "Table 1");

    const sc::Scope scopes[] = {sc::Scope::kSystemExecutable, sc::Scope::kUserExecutable,
                                sc::Scope::kPythonInterpreter, sc::Scope::kPythonScript};

    siren::util::TextTable t({"Collected Information", "System Executable", "User Executable",
                              "Python Interpreter", "Python Script"});
    auto mark = [](bool b) { return std::string(b ? "yes" : "no"); };
    auto row = [&](const char* name, auto field) {
        std::vector<std::string> cells = {name};
        for (const auto scope : scopes) cells.push_back(mark(field(sc::Policy::for_scope(scope))));
        t.add_row(std::move(cells));
    };

    row("File Metadata", [](const sc::Policy& p) { return p.file_meta; });
    row("Libraries", [](const sc::Policy& p) { return p.libraries; });
    row("Modules", [](const sc::Policy& p) { return p.modules; });
    row("Compilers", [](const sc::Policy& p) { return p.compilers; });
    row("Memory Map", [](const sc::Policy& p) { return p.memory_map; });
    row("File_H", [](const sc::Policy& p) { return p.file_hash; });
    row("Strings_H", [](const sc::Policy& p) { return p.strings_hash; });
    row("Symbols_H", [](const sc::Policy& p) { return p.symbols_hash; });

    std::printf("%s\n", t.render().c_str());
    std::printf("This matrix is enforced by collect::Policy and verified row by row in\n"
                "tests/test_collect.cpp.\n");
    return 0;
}
