// Table 6: compiler provenance combinations of user applications.

#include "analytics/tables.hpp"
#include "bench_common.hpp"

int main() {
    siren::bench::print_header("Table 6 — Compiler information of user applications", "Table 6");
    const auto result = siren::bench::run_lumi();
    const auto t = siren::analytics::table6_compilers(result.aggregates);
    std::printf("%s\n", t.render().c_str());
    std::printf("Paper combos: LLD [AMD] (4 users); GCC [SUSE] (4, 134 FILE_H);\n"
                "GCC [SUSE], clang [Cray] (2); GCC [Red Hat], GCC [conda] (1, 4,983p);\n"
                "GCC [SUSE], GCC [HPE]; GCC [Red Hat], rustc; GCC [SUSE], clang [AMD];\n"
                "GCC [SUSE], clang [Cray], clang [AMD] (13 FILE_H).\n");
    return 0;
}
