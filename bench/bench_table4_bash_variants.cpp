// Table 4: distinct sets of shared objects loaded by /usr/bin/bash.

#include "analytics/tables.hpp"
#include "bench_common.hpp"

int main() {
    siren::bench::print_header("Table 4 — Distinct shared-object sets of /usr/bin/bash",
                               "Table 4");
    const auto result = siren::bench::run_lumi();
    const auto t = siren::analytics::table4_object_variants(result.aggregates, "/usr/bin/bash");
    std::printf("%s\n", t.render().c_str());
    std::printf("Paper: 160,904 processes with /lib64/libtinfo, 460 with a spack libtinfo,\n"
                "54 with a local-SW libtinfo plus /lib64/libm (the bc-calculator case).\n");
    return 0;
}
