// Microbenchmarks (google-benchmark) for the serving layer: identify QPS
// against a live RecognitionService — the lock-free snapshot read path in
// process and over the TCP query protocol — and the same identify latency
// while a writer thread continuously applies observes. The snapshot-swap
// scheme's headline claim is that the last two numbers match: query
// latency must be independent of write volume.
//
// The cmake target `bench-serve-json` condenses the numbers into
// BENCH_serve.json (ratios: serve_write_interference ~ 1.0,
// serve_tcp_overhead); bench/trajectory/BENCH_serve.json is the committed
// trajectory point.

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "fuzzy/fuzzy.hpp"
#include "serve/serve.hpp"
#include "util/base64.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

namespace sv = siren::serve;
using siren::fuzzy::FuzzyDigest;

std::string random_part(siren::util::Rng& rng, std::size_t len) {
    std::string s;
    for (std::size_t i = 0; i < len; ++i) s += siren::util::kBase64Alphabet[rng.index(64)];
    return s;
}

FuzzyDigest mutate(siren::util::Rng& rng, FuzzyDigest d, std::size_t edits) {
    for (std::size_t e = 0; e < edits; ++e) {
        std::string& part = rng.below(3) == 0 ? d.digest2 : d.digest1;
        if (part.empty()) continue;
        part[rng.index(part.size())] = siren::util::kBase64Alphabet[rng.index(64)];
    }
    return d;
}

/// A service preloaded with n synthetic digests (families of drifted
/// variants, as in bench_perf_similarity) plus a probe that matches.
struct LiveService {
    std::unique_ptr<sv::RecognitionService> service;
    std::vector<FuzzyDigest> corpus;
    FuzzyDigest probe;
};

LiveService& live_service(std::size_t n) {
    static std::map<std::size_t, LiveService> cache;
    const auto it = cache.find(n);
    if (it != cache.end()) return it->second;

    LiveService& live = cache[n];
    siren::util::Rng rng(2027 * n + 3);
    const std::uint64_t ladder[] = {1536, 3072, 6144};
    constexpr std::size_t kVariants = 8;
    while (live.corpus.size() < n) {
        FuzzyDigest base;
        base.block_size = ladder[rng.index(3)];
        base.digest1 = random_part(rng, 48 + rng.index(16));
        base.digest2 = random_part(rng, 24 + rng.index(8));
        for (std::size_t v = 0; v < kVariants && live.corpus.size() < n; ++v) {
            live.corpus.push_back(v == 0 ? base : mutate(rng, base, 1 + rng.index(5)));
        }
    }

    sv::ServeOptions options;
    options.writer_idle = std::chrono::milliseconds(1);
    // Amortize the snapshot copy across ~10ms of applied batches — the
    // deployment setting for write-heavy feeds (staleness stays bounded).
    options.publish_interval = std::chrono::milliseconds(10);
    live.service = std::make_unique<sv::RecognitionService>(options);
    for (const auto& digest : live.corpus) live.service->observe(digest);
    live.service->flush();
    live.probe = mutate(rng, live.corpus[n / 2], 3);
    return live;
}

/// Steady write pressure: a thread re-observing known digests (score-100
/// sightings — no index growth, so the measured interference is purely the
/// writer's batch/copy/publish cycle, not a registry that changes size).
class WriteChurn {
public:
    explicit WriteChurn(LiveService& live) : live_(live) {
        thread_ = std::thread([this] {
            siren::util::Rng rng(71);
            while (!stop_.load(std::memory_order_relaxed)) {
                for (int burst = 0; burst < 64; ++burst) {
                    live_.service->observe(live_.corpus[rng.index(live_.corpus.size())]);
                }
                std::this_thread::sleep_for(std::chrono::milliseconds(2));
            }
        });
    }
    ~WriteChurn() {
        stop_.store(true, std::memory_order_relaxed);
        thread_.join();
        live_.service->flush();
    }

private:
    LiveService& live_;
    std::atomic<bool> stop_{false};
    std::thread thread_;
};

/// The raw snapshot acquire — what every query pays before it scores.
void BM_ServeSnapshotAcquire(benchmark::State& state) {
    LiveService& live = live_service(1000);
    for (auto _ : state) {
        benchmark::DoNotOptimize(live.service->snapshot());
    }
}
BENCHMARK(BM_ServeSnapshotAcquire);

/// In-process identify on an idle service (the baseline p50).
void BM_ServeIdentify(benchmark::State& state) {
    LiveService& live = live_service(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(live.service->identify(live.probe));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ServeIdentify)->Arg(1000)->Arg(10000);

/// The same identify while a writer thread applies a continuous observe
/// stream (10k+ over a bench run). Snapshot swap means the two p50s track
/// each other; CI compares this against BM_ServeIdentify.
void BM_ServeIdentifyUnderWrites(benchmark::State& state) {
    LiveService& live = live_service(static_cast<std::size_t>(state.range(0)));
    const auto before = live.service->counters().observes_applied;
    {
        WriteChurn churn(live);
        for (auto _ : state) {
            benchmark::DoNotOptimize(live.service->identify(live.probe));
        }
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
    state.counters["concurrent_observes"] = benchmark::Counter(
        static_cast<double>(live.service->counters().observes_applied - before));
}
BENCHMARK(BM_ServeIdentifyUnderWrites)->Arg(1000)->Arg(10000);

/// Batch identify fan-out through the service's thread pool.
void BM_ServeIdentifyMany(benchmark::State& state) {
    LiveService& live = live_service(10000);
    siren::util::Rng rng(83);
    std::vector<FuzzyDigest> probes;
    for (int i = 0; i < 64; ++i) {
        probes.push_back(mutate(rng, live.corpus[rng.index(live.corpus.size())], 2));
    }
    siren::util::ThreadPool pool(2);
    for (auto _ : state) {
        benchmark::DoNotOptimize(live.service->identify_many(probes, &pool));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_ServeIdentifyMany);

/// Full TCP round trip: frame, loopback, execute, frame back. The delta
/// against BM_ServeIdentify is the transport cost per query.
void BM_ServeIdentifyTcp(benchmark::State& state) {
    LiveService& live = live_service(10000);
    sv::QueryServer server(*live.service);
    sv::QueryClient client("127.0.0.1", server.port());
    const std::string probe = live.probe.to_string();
    for (auto _ : state) {
        benchmark::DoNotOptimize(client.identify(probe));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ServeIdentifyTcp);

/// A server fleet for the concurrent-TCP benches. Coalescing is fixed at
/// RecognitionService construction, so the coalesced and uncoalesced
/// benches need separate service+server pairs; each is built lazily on
/// first use (magic statics make this safe under ->Threads(n)).
struct TcpFleet {
    std::unique_ptr<sv::RecognitionService> service;
    std::unique_ptr<sv::QueryServer> server;
    std::string probe;
};

TcpFleet make_fleet(std::uint32_t batch_window_us, std::size_t batch_max) {
    LiveService& live = live_service(10000);
    sv::ServeOptions options;
    options.writer_idle = std::chrono::milliseconds(1);
    options.publish_interval = std::chrono::milliseconds(10);
    options.batch_pool_threads = 2;
    options.batch_window_us = batch_window_us;
    options.batch_max = batch_max;
    TcpFleet fleet;
    fleet.service = std::make_unique<sv::RecognitionService>(options);
    for (const auto& digest : live.corpus) fleet.service->observe(digest);
    fleet.service->flush();
    fleet.server = std::make_unique<sv::QueryServer>(*fleet.service);
    fleet.probe = live.probe.to_string();
    return fleet;
}

TcpFleet& plain_fleet() {
    static TcpFleet fleet = make_fleet(0, 0);
    return fleet;
}

TcpFleet& coalesced_fleet() {
    static TcpFleet fleet = make_fleet(200, 8);
    return fleet;
}

/// N concurrent connections, each issuing singleton IDENTIFYs — the
/// uncoalesced baseline: every frame executes inline on the event loop.
void BM_ServeIdentifyTcpConcurrent(benchmark::State& state) {
    TcpFleet& fleet = plain_fleet();
    sv::QueryClient client("127.0.0.1", fleet.server->port(),
                           std::chrono::milliseconds(10000));
    for (auto _ : state) {
        benchmark::DoNotOptimize(client.identify(fleet.probe));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ServeIdentifyTcpConcurrent)->Threads(4)->UseRealTime();

/// The same concurrent singleton load against a coalescing server
/// (batch_window_us=200, batch_max=8): probes arriving within the window
/// ride one identify_many through the batch pool. CI compares this
/// items/s against the uncoalesced baseline and the explicit-batch
/// ceiling below.
void BM_ServeIdentifyTcpCoalesced(benchmark::State& state) {
    TcpFleet& fleet = coalesced_fleet();
    sv::QueryClient client("127.0.0.1", fleet.server->port(),
                           std::chrono::milliseconds(10000));
    for (auto _ : state) {
        benchmark::DoNotOptimize(client.identify(fleet.probe));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ServeIdentifyTcpCoalesced)->Threads(4)->UseRealTime();

/// The ceiling coalescing approaches: a client that already batches,
/// shipping 64 probes per IDENTIFYB round trip.
void BM_ServeIdentifyManyTcp(benchmark::State& state) {
    TcpFleet& fleet = plain_fleet();
    siren::util::Rng rng(97);
    LiveService& live = live_service(10000);
    std::vector<std::string> probes;
    for (int i = 0; i < 64; ++i) {
        probes.push_back(mutate(rng, live.corpus[rng.index(live.corpus.size())], 2).to_string());
    }
    sv::QueryClient client("127.0.0.1", fleet.server->port(),
                           std::chrono::milliseconds(10000));
    for (auto _ : state) {
        benchmark::DoNotOptimize(client.identify_many(probes));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_ServeIdentifyManyTcp)->UseRealTime();

/// Synchronous observe round trip (enqueue -> batch apply -> publish).
void BM_ServeObserveSync(benchmark::State& state) {
    LiveService& live = live_service(1000);
    siren::util::Rng rng(89);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            live.service->observe_sync(live.corpus[rng.index(live.corpus.size())]));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ServeObserveSync);

}  // namespace

BENCHMARK_MAIN();
