// Microbenchmarks (google-benchmark) for the serving layer: identify QPS
// against a live RecognitionService — the lock-free snapshot read path in
// process and over the TCP query protocol — and the same identify latency
// while a writer thread continuously applies observes. The snapshot-swap
// scheme's headline claim is that the last two numbers match: query
// latency must be independent of write volume.
//
// The cmake target `bench-serve-json` condenses the numbers into
// BENCH_serve.json (ratios: serve_write_interference ~ 1.0,
// serve_tcp_overhead); bench/trajectory/BENCH_serve.json is the committed
// trajectory point.

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "fuzzy/fuzzy.hpp"
#include "serve/serve.hpp"
#include "util/base64.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

namespace sv = siren::serve;
using siren::fuzzy::FuzzyDigest;

std::string random_part(siren::util::Rng& rng, std::size_t len) {
    std::string s;
    for (std::size_t i = 0; i < len; ++i) s += siren::util::kBase64Alphabet[rng.index(64)];
    return s;
}

FuzzyDigest mutate(siren::util::Rng& rng, FuzzyDigest d, std::size_t edits) {
    for (std::size_t e = 0; e < edits; ++e) {
        std::string& part = rng.below(3) == 0 ? d.digest2 : d.digest1;
        if (part.empty()) continue;
        part[rng.index(part.size())] = siren::util::kBase64Alphabet[rng.index(64)];
    }
    return d;
}

/// A service preloaded with n synthetic digests (families of drifted
/// variants, as in bench_perf_similarity) plus a probe that matches.
struct LiveService {
    std::unique_ptr<sv::RecognitionService> service;
    std::vector<FuzzyDigest> corpus;
    FuzzyDigest probe;
};

LiveService& live_service(std::size_t n) {
    static std::map<std::size_t, LiveService> cache;
    const auto it = cache.find(n);
    if (it != cache.end()) return it->second;

    LiveService& live = cache[n];
    siren::util::Rng rng(2027 * n + 3);
    const std::uint64_t ladder[] = {1536, 3072, 6144};
    constexpr std::size_t kVariants = 8;
    while (live.corpus.size() < n) {
        FuzzyDigest base;
        base.block_size = ladder[rng.index(3)];
        base.digest1 = random_part(rng, 48 + rng.index(16));
        base.digest2 = random_part(rng, 24 + rng.index(8));
        for (std::size_t v = 0; v < kVariants && live.corpus.size() < n; ++v) {
            live.corpus.push_back(v == 0 ? base : mutate(rng, base, 1 + rng.index(5)));
        }
    }

    sv::ServeOptions options;
    options.writer_idle = std::chrono::milliseconds(1);
    // Amortize the snapshot copy across ~10ms of applied batches — the
    // deployment setting for write-heavy feeds (staleness stays bounded).
    options.publish_interval = std::chrono::milliseconds(10);
    live.service = std::make_unique<sv::RecognitionService>(options);
    for (const auto& digest : live.corpus) live.service->observe(digest);
    live.service->flush();
    live.probe = mutate(rng, live.corpus[n / 2], 3);
    return live;
}

/// Steady write pressure: a thread re-observing known digests (score-100
/// sightings — no index growth, so the measured interference is purely the
/// writer's batch/copy/publish cycle, not a registry that changes size).
class WriteChurn {
public:
    explicit WriteChurn(LiveService& live) : live_(live) {
        thread_ = std::thread([this] {
            siren::util::Rng rng(71);
            while (!stop_.load(std::memory_order_relaxed)) {
                for (int burst = 0; burst < 64; ++burst) {
                    live_.service->observe(live_.corpus[rng.index(live_.corpus.size())]);
                }
                std::this_thread::sleep_for(std::chrono::milliseconds(2));
            }
        });
    }
    ~WriteChurn() {
        stop_.store(true, std::memory_order_relaxed);
        thread_.join();
        live_.service->flush();
    }

private:
    LiveService& live_;
    std::atomic<bool> stop_{false};
    std::thread thread_;
};

/// The raw snapshot acquire — what every query pays before it scores.
void BM_ServeSnapshotAcquire(benchmark::State& state) {
    LiveService& live = live_service(1000);
    for (auto _ : state) {
        benchmark::DoNotOptimize(live.service->snapshot());
    }
}
BENCHMARK(BM_ServeSnapshotAcquire);

/// In-process identify on an idle service (the baseline p50).
void BM_ServeIdentify(benchmark::State& state) {
    LiveService& live = live_service(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(live.service->identify(live.probe));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ServeIdentify)->Arg(1000)->Arg(10000);

/// The same identify while a writer thread applies a continuous observe
/// stream (10k+ over a bench run). Snapshot swap means the two p50s track
/// each other; CI compares this against BM_ServeIdentify.
void BM_ServeIdentifyUnderWrites(benchmark::State& state) {
    LiveService& live = live_service(static_cast<std::size_t>(state.range(0)));
    const auto before = live.service->counters().observes_applied;
    {
        WriteChurn churn(live);
        for (auto _ : state) {
            benchmark::DoNotOptimize(live.service->identify(live.probe));
        }
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
    state.counters["concurrent_observes"] = benchmark::Counter(
        static_cast<double>(live.service->counters().observes_applied - before));
}
BENCHMARK(BM_ServeIdentifyUnderWrites)->Arg(1000)->Arg(10000);

/// Batch identify fan-out through the service's thread pool.
void BM_ServeIdentifyMany(benchmark::State& state) {
    LiveService& live = live_service(10000);
    siren::util::Rng rng(83);
    std::vector<FuzzyDigest> probes;
    for (int i = 0; i < 64; ++i) {
        probes.push_back(mutate(rng, live.corpus[rng.index(live.corpus.size())], 2));
    }
    siren::util::ThreadPool pool(2);
    for (auto _ : state) {
        benchmark::DoNotOptimize(live.service->identify_many(probes, &pool));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_ServeIdentifyMany);

/// Full TCP round trip: frame, loopback, execute, frame back. The delta
/// against BM_ServeIdentify is the transport cost per query.
void BM_ServeIdentifyTcp(benchmark::State& state) {
    LiveService& live = live_service(10000);
    sv::QueryServer server(*live.service);
    sv::QueryClient client("127.0.0.1", server.port());
    const std::string probe = live.probe.to_string();
    for (auto _ : state) {
        benchmark::DoNotOptimize(client.identify(probe));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ServeIdentifyTcp);

/// A server fleet for the concurrent-TCP benches. Coalescing is fixed at
/// RecognitionService construction, so the coalesced and uncoalesced
/// benches need separate service+server pairs; each is built lazily on
/// first use (magic statics make this safe under ->Threads(n)).
struct TcpFleet {
    std::unique_ptr<sv::RecognitionService> service;
    std::unique_ptr<sv::QueryServer> server;
    std::string probe;
};

TcpFleet make_fleet(std::uint32_t batch_window_us, std::size_t batch_max) {
    LiveService& live = live_service(10000);
    sv::ServeOptions options;
    options.writer_idle = std::chrono::milliseconds(1);
    options.publish_interval = std::chrono::milliseconds(10);
    options.batch_pool_threads = 2;
    options.coalesce.batch_window_us = batch_window_us;
    options.coalesce.batch_max = batch_max;
    TcpFleet fleet;
    fleet.service = std::make_unique<sv::RecognitionService>(options);
    for (const auto& digest : live.corpus) fleet.service->observe(digest);
    fleet.service->flush();
    fleet.server = std::make_unique<sv::QueryServer>(*fleet.service);
    fleet.probe = live.probe.to_string();
    return fleet;
}

TcpFleet& plain_fleet() {
    static TcpFleet fleet = make_fleet(0, 0);
    return fleet;
}

TcpFleet& coalesced_fleet() {
    static TcpFleet fleet = make_fleet(200, 8);
    return fleet;
}

/// N concurrent connections, each issuing singleton IDENTIFYs — the
/// uncoalesced baseline: every frame executes inline on the event loop.
void BM_ServeIdentifyTcpConcurrent(benchmark::State& state) {
    TcpFleet& fleet = plain_fleet();
    sv::QueryClient client("127.0.0.1", fleet.server->port(),
                           std::chrono::milliseconds(10000));
    for (auto _ : state) {
        benchmark::DoNotOptimize(client.identify(fleet.probe));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ServeIdentifyTcpConcurrent)->Threads(4)->UseRealTime();

/// The same concurrent singleton load against a coalescing server
/// (batch_window_us=200, batch_max=8): probes arriving within the window
/// ride one identify_many through the batch pool. CI compares this
/// items/s against the uncoalesced baseline and the explicit-batch
/// ceiling below.
void BM_ServeIdentifyTcpCoalesced(benchmark::State& state) {
    TcpFleet& fleet = coalesced_fleet();
    sv::QueryClient client("127.0.0.1", fleet.server->port(),
                           std::chrono::milliseconds(10000));
    for (auto _ : state) {
        benchmark::DoNotOptimize(client.identify(fleet.probe));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ServeIdentifyTcpCoalesced)->Threads(4)->UseRealTime();

/// The ceiling coalescing approaches: a client that already batches,
/// shipping 64 probes per IDENTIFYB round trip.
void BM_ServeIdentifyManyTcp(benchmark::State& state) {
    TcpFleet& fleet = plain_fleet();
    siren::util::Rng rng(97);
    LiveService& live = live_service(10000);
    std::vector<std::string> probes;
    for (int i = 0; i < 64; ++i) {
        probes.push_back(mutate(rng, live.corpus[rng.index(live.corpus.size())], 2).to_string());
    }
    sv::QueryClient client("127.0.0.1", fleet.server->port(),
                           std::chrono::milliseconds(10000));
    for (auto _ : state) {
        benchmark::DoNotOptimize(client.identify_many(probes));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_ServeIdentifyManyTcp)->UseRealTime();

/// Synthetic digest with a chosen block size: random 24-grams essentially
/// never collide on a 7-gram, so every observe founds its own family.
FuzzyDigest synthetic_digest(std::uint64_t block_size, siren::util::Rng& rng) {
    FuzzyDigest digest;
    digest.block_size = block_size;
    digest.digest1 = random_part(rng, 24);
    digest.digest2 = random_part(rng, 12);
    return digest;
}

/// A registry-scale service booted from a synthesized checkpoint — the
/// loader appends exemplars without similarity queries, so 100k families
/// cost parse + index-append at startup, not 100k observe matches.
sv::RecognitionService& registry_scale_service(std::size_t families) {
    static std::map<std::size_t, std::unique_ptr<sv::RecognitionService>> cache;
    auto& slot = cache[families];
    if (slot) return *slot;

    siren::util::Rng rng(47);
    std::string body = "SIRENCKPT 1\napplied 0\nregistry\n";
    for (std::size_t i = 0; i < families; ++i) {
        body += "family " + std::to_string(i) + " 1 fam-" + std::to_string(i) + "\n";
    }
    for (std::size_t i = 0; i < families; ++i) {
        body += "exemplar " + std::to_string(i) + " " +
                synthetic_digest(1536, rng).to_string() + "\n";
    }
    const auto path = std::filesystem::temp_directory_path() /
                      ("siren_bench_publish_" + std::to_string(families) + ".ckpt");
    {
        std::ofstream out(path);
        out << body;
    }
    sv::ServeOptions options;
    options.writer_idle = std::chrono::milliseconds(1);
    options.checkpoint_path = path.string();
    slot = std::make_unique<sv::RecognitionService>(options);
    return *slot;
}

/// The O(delta) acceptance bench: apply-and-publish a 100-record batch of
/// fresh sightings against a 10k vs 100k registry. With COW chunk sharing
/// the publish copies touched chunks only, so publish_cost_per_record must
/// be flat across the two sizes (CI gates the ratio, publish_delta_flatness,
/// at < 2x; the pre-COW full-copy pipeline measured ~10x). The batch uses
/// a block size whose x2 ladder is disjoint from the corpus ladder, so the
/// timed region is enqueue + batch apply + publish copy + swap — no
/// size-dependent bucket scan sneaks into the numerator.
void BM_ServePublishDelta(benchmark::State& state) {
    const auto families = static_cast<std::size_t>(state.range(0));
    sv::RecognitionService& service = registry_scale_service(families);
    siren::util::Rng rng(137 + families);
    constexpr int kBatch = 100;
    std::uint64_t total_ns = 0;
    std::uint64_t records = 0;
    for (auto _ : state) {
        const auto t0 = std::chrono::steady_clock::now();
        for (int i = 0; i < kBatch - 1; ++i) service.observe(synthetic_digest(192, rng));
        benchmark::DoNotOptimize(service.observe_sync(synthetic_digest(192, rng)));
        total_ns += static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                                 t0)
                .count());
        records += kBatch;
    }
    const auto counters = service.counters();
    state.counters["publish_cost_per_record"] = benchmark::Counter(
        static_cast<double>(total_ns) / static_cast<double>(records));
    state.counters["snapshot_shared_fraction"] = benchmark::Counter(
        counters.total_chunks == 0
            ? 0.0
            : static_cast<double>(counters.shared_chunks) /
                  static_cast<double>(counters.total_chunks));
    state.SetItemsProcessed(static_cast<std::int64_t>(records));
}
// Fixed iteration count: each iteration founds 100 new families, so the
// corpus must not grow with --benchmark_min_time.
BENCHMARK(BM_ServePublishDelta)->Arg(10000)->Arg(100000)->Iterations(50);

/// Synchronous observe round trip (enqueue -> batch apply -> publish).
void BM_ServeObserveSync(benchmark::State& state) {
    LiveService& live = live_service(1000);
    siren::util::Rng rng(89);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            live.service->observe_sync(live.corpus[rng.index(live.corpus.size())]));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ServeObserveSync);

}  // namespace

BENCHMARK_MAIN();
