// Ablation: how each hash dimension's similarity decays with binary drift.
// Why SIREN hashes three views of the executable (raw bytes, printable
// strings, global symbols) instead of only the raw file: the views decay
// at different speeds, so the ensemble keeps identifying lineage members
// long after the raw-file similarity hits 0.

#include "bench_common.hpp"
#include "elfio/elfio.hpp"
#include "fuzzy/fuzzy.hpp"
#include "hashing/sha256.hpp"
#include "util/table.hpp"
#include "workload/synthesizer.hpp"

namespace {

siren::workload::BinaryRecipe recipe_at(std::size_t version) {
    siren::workload::BinaryRecipe r;
    r.lineage = "icon";
    r.version = version;
    r.compilers = {siren::workload::compiler_comment_for("GCC [SUSE]")};
    r.needed = {"libc.so.6"};
    r.code_blocks = 24;
    return r;
}

struct Views {
    std::string file_h;
    std::string strings_h;
    std::string symbols_h;
    std::string sha256;
};

Views views_of(const std::vector<std::uint8_t>& bytes) {
    namespace se = siren::elfio;
    Views v;
    v.file_h = siren::fuzzy::fuzzy_hash(bytes).to_string();
    v.strings_h = siren::fuzzy::fuzzy_hash(
                      se::strings_blob(se::printable_strings(bytes)))
                      .to_string();
    const se::Reader reader(bytes);
    v.symbols_h = siren::fuzzy::fuzzy_hash(se::strings_blob(reader.global_symbol_names()))
                      .to_string();
    v.sha256 = siren::hash::Sha256::hex(bytes);
    return v;
}

}  // namespace

int main() {
    siren::bench::print_header(
        "Ablation — per-dimension similarity decay vs. version drift",
        "Table 7's FI/ST/SY pattern, swept");

    const auto base = views_of(siren::workload::synthesize(recipe_at(0)));

    siren::util::TextTable t({"Drift (versions)", "FI_H sim", "ST_H sim", "SY_H sim",
                              "sha256 equal"});
    for (const std::size_t drift : {0u, 1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
        const auto variant = views_of(siren::workload::synthesize(recipe_at(drift)));
        t.add_row({std::to_string(drift),
                   std::to_string(siren::fuzzy::compare(base.file_h, variant.file_h)),
                   std::to_string(siren::fuzzy::compare(base.strings_h, variant.strings_h)),
                   std::to_string(siren::fuzzy::compare(base.symbols_h, variant.symbols_h)),
                   base.sha256 == variant.sha256 ? "yes" : "no"});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("Expected shape: sha256 matches only at drift 0 (avalanche effect);\n"
                "FI_H decays fastest, ST_H slower, SY_H slowest — the ensemble keeps\n"
                "recognizing the lineage after the raw-file view has gone dark.\n");
    return 0;
}
