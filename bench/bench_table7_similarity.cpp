// Table 7: similarity-search identification of the UNKNOWN a.out binaries.
// The headline experiment: rank known user executables by the average of
// six fuzzy-hash similarities against the unknown probe.

#include "analytics/similarity.hpp"
#include "bench_common.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

int main() {
    namespace sa = siren::analytics;
    siren::bench::print_header("Table 7 — Similarity search for the <unknown> case", "Table 7");
    const auto result = siren::bench::run_lumi();

    const auto labeler = sa::Labeler::default_rules();
    const auto* probe = sa::find_unknown_probe(result.aggregates, labeler);
    if (probe == nullptr) {
        std::printf("no UNKNOWN-labeled executable found (scale too small?)\n");
        return 1;
    }
    std::printf("Probe: %s  (name-derived label: %s)\n\n", probe->exe_path.c_str(),
                labeler.label(probe->exe_path).c_str());

    siren::util::ThreadPool pool;
    const auto hits = sa::similarity_search(*probe, result.aggregates, labeler, 10, &pool);

    siren::util::TextTable t(
        {"Label", "Avg. Sim.", "MO_H", "CO_H", "OB_H", "FI_H", "ST_H", "SY_H"});
    for (const auto& hit : hits) {
        t.add_row({hit.label, siren::util::fixed(hit.average, 1),
                   std::to_string(hit.scores.mo), std::to_string(hit.scores.co),
                   std::to_string(hit.scores.ob), std::to_string(hit.scores.fi),
                   std::to_string(hit.scores.st), std::to_string(hit.scores.sy)});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("Paper: all top-10 hits are icon; row 1 scores 100 on every dimension\n"
                "(byte-identical build); FI_H decays fastest with drift while CO_H stays\n"
                "100 and SY_H stays high — the same pattern the ranking above must show.\n");
    return 0;
}
