// §3.1 loss experiment: sweep the datagram loss rate and report the share
// of jobs with missing fields. The paper observed ~0.02% of jobs with
// missing fields during the deployment campaign.

#include "bench_common.hpp"
#include "util/table.hpp"

int main() {
    siren::bench::print_header("UDP loss sweep — jobs with missing fields", "§3.1");

    siren::FrameworkOptions options = siren::FrameworkOptions::from_env();
    // The sweep overrides SIREN_LOSS; keep the run modest by default.
    if (siren::util::get_env("SIREN_SCALE") == std::nullopt) options.scale = 0.1;

    siren::util::TextTable t({"Loss rate", "Datagrams sent", "Datagrams lost",
                              "Records w/ missing", "Jobs w/ missing", "Job share"});
    for (const double loss : {0.0, 0.00001, 0.0001, 0.001, 0.01, 0.05}) {
        options.loss_rate = loss;
        const auto result = run_campaign(siren::workload::lumi_campaign(), options);
        t.add_row({siren::util::fixed(loss * 100, 3) + "%",
                   siren::util::with_commas(result.datagrams_sent),
                   siren::util::with_commas(result.datagrams_lost),
                   siren::util::with_commas(result.aggregates.records_with_missing_fields),
                   siren::util::with_commas(result.aggregates.jobs_with_missing_fields.size()),
                   siren::util::fixed(result.aggregates.job_missing_ratio() * 100, 3) + "%"});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("Paper: ~0.02%% of jobs had missing fields attributable to UDP loss —\n"
                "locate the loss rate whose job share lands near that figure.\n");
    return 0;
}
