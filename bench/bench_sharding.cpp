// Microbenchmarks (google-benchmark) for the partitioned fleet: aggregate
// observe throughput of M leader shards, each owning a block-size range of
// the key space, against one shard owning all of it.
//
// Shards are measured serially and the reported iteration time is the
// WORST per-shard duration — the wall-clock model of one box per shard
// (this host has too few cores to run M servers honestly in parallel, and
// the serial measurement is noise-free on any machine). Aggregate
// throughput is then total observes / worst shard time, which is exactly
// what an M-box fleet sustains.
//
// The cmake target `bench-sharding-json` condenses the numbers into
// BENCH_sharding.json. The gated ratio is sharded_observe_scaling =
// items/s at 3 shards over items/s at 1 shard (CI gates >= 2.2x: sharding
// must buy real write scale-out, not just topology). The /3 run also
// reports sharded_topn_parity: 1.0 when the ShardedClient's cross-shard
// TOPN merge is bit-identical to a single registry holding every family —
// including a probe whose bucket ladder straddles a range boundary.
// bench/trajectory/BENCH_sharding.json is the committed trajectory point.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "fuzzy/ctph.hpp"
#include "serve/partition_map.hpp"
#include "serve/query_client.hpp"
#include "serve/query_server.hpp"
#include "serve/recognition_service.hpp"
#include "serve/sharded_client.hpp"

namespace {

namespace sf = siren::fuzzy;
namespace sv = siren::serve;

/// Synthetic digests with a DISJOINT alphabet per shard group: two digests
/// from different groups can never share the 7-char substring scoring
/// requires, so cross-shard folds and matches are impossible by
/// construction. That keeps observe-time family folding shard-local —
/// identical under one registry or three — which is what makes the /1 and
/// /3 workloads comparable and the TOPN parity check meaningful.
/// (Within a group, index collisions just fold the same way on both
/// sides.)
sf::FuzzyDigest nth_digest(std::uint64_t block_size, std::size_t group, int i) {
    static const char* kAlphabets[] = {
        "ABCDEFGHIJKLMNOPQRSTUVWXYZ",
        "abcdefghijklmnopqrstuvwxyz",
        "0123456789+-*/=_.!@#$%^&()",
    };
    const char* alphabet = kAlphabets[group % 3];
    const auto len = static_cast<int>(std::strlen(alphabet));
    const auto make = [&](int salt) {
        std::string s(26, alphabet[0]);
        for (int j = 0; j < 26; ++j) {
            s[static_cast<std::size_t>(j)] =
                alphabet[static_cast<std::size_t>((i * 131 + salt * 37 + j * 53 + j * j * 7) %
                                                  len)];
        }
        return s;
    };
    return sf::FuzzyDigest{block_size, make(1), make(2)};
}

/// Per-shard block-size menu of the 3-way split (cuts at 96 and 768).
const std::vector<std::vector<std::uint64_t>>& shard_block_sizes() {
    static const std::vector<std::vector<std::uint64_t>> sizes = {
        {24, 48}, {96, 192, 384}, {768, 1536, 3072}};
    return sizes;
}

constexpr int kDigestsPerShard = 64;

sv::ServeOptions service_options() {
    sv::ServeOptions options;
    options.publish_interval = std::chrono::milliseconds(0);
    return options;
}

/// The straddle case: a probe at 96 whose ladder {48, 96, 192} spans the
/// first cut, matching one family on each side without the two families
/// matching each other (5 vs 8 disjointly mutated spots of the probe
/// digest score ~86/~74 on the probe and ~58 against each other).
struct StraddlePair {
    sf::FuzzyDigest low;    ///< block size 48 — shard 0's range
    sf::FuzzyDigest high;   ///< block size 96 — shard 1's range
    sf::FuzzyDigest probe;  ///< block size 96
};

StraddlePair straddle_pair() {
    const std::string base = "Rs7eKp1MnHu9VtD6wQyXc0ZiBo";
    std::string high_d1 = base;
    const char* low_chars = "acegi";
    for (int i = 0; i < 5; ++i) high_d1[static_cast<std::size_t>(i)] = low_chars[i];
    std::string low_d2 = base;
    const char* high_chars = "bdfhjlnp";
    for (int i = 0; i < 8; ++i) low_d2[static_cast<std::size_t>(5 + i)] = high_chars[i];
    return StraddlePair{
        sf::FuzzyDigest{48, "kTqWx3NvZrLm8PbC5dYhJf2Ag4", low_d2},
        sf::FuzzyDigest{96, high_d1, "Ga5jLd8SfTk2RmNe7XwPq4VzCu"},
        sf::FuzzyDigest{96, base, "Tb4mWc9XrKe2NvQy7JzPd5GhLf"},
    };
}

std::string render(const std::vector<sv::FusedIdentified>& matches) {
    std::string out;
    for (const auto& m : matches) {
        out += m.name + "/" + std::to_string(m.score) + "/" +
               std::to_string(m.content_score) + "/" +
               std::to_string(m.behavior_score) + ";";
    }
    return out;
}

/// Aggregate observe throughput at `shard_count` leader shards.
void BM_ShardedObserve(benchmark::State& state) {
    const int shard_count = static_cast<int>(state.range(0));

    // One corpus, partitioned by block-size range: digest i of group g
    // lives at one of g's block sizes. At shard_count=1 the whole corpus
    // lands on the single shard.
    std::vector<std::vector<std::pair<std::string, std::string>>> assigned(
        static_cast<std::size_t>(shard_count));
    const auto& menu = shard_block_sizes();
    int next = 0;
    for (std::size_t group = 0; group < menu.size(); ++group) {
        for (int i = 0; i < kDigestsPerShard; ++i) {
            const auto bs = menu[group][static_cast<std::size_t>(i) % menu[group].size()];
            const auto digest = nth_digest(bs, group, next);
            const std::size_t owner = shard_count == 1 ? 0 : group;
            assigned[owner].emplace_back(digest.to_string(),
                                         "fam-" + std::to_string(next));
            ++next;
        }
    }
    const std::size_t corpus_size = static_cast<std::size_t>(next);

    std::vector<std::unique_ptr<sv::RecognitionService>> services;
    std::vector<std::unique_ptr<sv::QueryServer>> servers;
    std::vector<std::unique_ptr<sv::QueryClient>> clients;
    for (int s = 0; s < shard_count; ++s) {
        auto options = service_options();
        if (shard_count > 1) {
            options.partition.shard_id = static_cast<std::uint32_t>(s);
            // Placeholder table (real ports swap in below): the service
            // only consults the ranges and its own id.
            std::vector<sv::ShardInfo> placeholder(3);
            for (std::uint32_t p = 0; p < 3; ++p) {
                placeholder[p].id = p;
                placeholder[p].leader.host = "127.0.0.1";
                placeholder[p].leader.port = static_cast<std::uint16_t>(p + 1);
            }
            placeholder[0].ranges = {{0, 95}};
            placeholder[1].ranges = {{96, 767}};
            placeholder[2].ranges = {{768, ~0ull}};
            options.partition.map =
                std::make_shared<const sv::PartitionMap>(0, std::move(placeholder));
        }
        services.push_back(std::make_unique<sv::RecognitionService>(options));
        servers.push_back(std::make_unique<sv::QueryServer>(*services.back()));
        clients.push_back(std::make_unique<sv::QueryClient>("127.0.0.1",
                                                            servers.back()->port()));
    }
    std::vector<sv::ShardInfo> shards(static_cast<std::size_t>(shard_count));
    for (int s = 0; s < shard_count; ++s) {
        auto& shard = shards[static_cast<std::size_t>(s)];
        shard.id = static_cast<std::uint32_t>(s);
        shard.leader = {"127.0.0.1", servers[static_cast<std::size_t>(s)]->port()};
    }
    if (shard_count == 1) {
        shards[0].ranges = {{0, ~0ull}};
    } else {
        shards[0].ranges = {{0, 95}};
        shards[1].ranges = {{96, 767}};
        shards[2].ranges = {{768, ~0ull}};
    }
    const auto map = std::make_shared<const sv::PartitionMap>(1, shards);
    for (auto& service : services) service->set_partition_map(map);

    std::size_t total = 0;
    for (auto _ : state) {
        double worst_seconds = 0.0;
        for (int s = 0; s < shard_count; ++s) {
            const auto start = std::chrono::steady_clock::now();
            for (const auto& [digest, label] : assigned[static_cast<std::size_t>(s)]) {
                clients[static_cast<std::size_t>(s)]->observe(digest, label);
            }
            const std::chrono::duration<double> took =
                std::chrono::steady_clock::now() - start;
            worst_seconds = std::max(worst_seconds, took.count());
        }
        state.SetIterationTime(worst_seconds);
        total += corpus_size;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(total));

    // Cross-shard TOPN parity, reported from the 3-shard run: a sharded
    // client's merged ranking over the fleet vs a single registry holding
    // every family, probed with the whole corpus plus the boundary
    // straddler. Any mismatch zeroes the counter (CI gates == 1).
    if (shard_count > 1) {
        const auto pair = straddle_pair();
        sv::ShardedClient routed(*map);
        routed.observe(pair.low.to_string(), "straddle-low");
        routed.observe(pair.high.to_string(), "straddle-high");

        sv::RecognitionService oracle(service_options());
        sv::QueryServer oracle_server(oracle);
        sv::QueryClient oracle_client("127.0.0.1", oracle_server.port());
        for (const auto& per_shard : assigned) {
            for (const auto& [digest, label] : per_shard) {
                oracle_client.observe(digest, label);
            }
        }
        oracle_client.observe(pair.low.to_string(), "straddle-low");
        oracle_client.observe(pair.high.to_string(), "straddle-high");

        bool parity = true;
        const auto agree = [&](const sv::Probe& probe) {
            const auto fleet = render(routed.identify(probe));
            const auto oracle_view = render(oracle_client.identify(probe));
            if (fleet != oracle_view && parity) {
                std::fprintf(stderr,
                             "bench_sharding: TOPN parity mismatch on probe %s\n"
                             "  fleet:  %s\n  oracle: %s\n",
                             probe.content.c_str(), fleet.c_str(), oracle_view.c_str());
            }
            return fleet == oracle_view;
        };
        for (const auto& per_shard : assigned) {
            for (const auto& [digest, label] : per_shard) {
                if (!agree(sv::Probe{.content = digest, .behavior = {}, .k = 3})) {
                    parity = false;
                }
            }
        }
        if (!agree(sv::Probe{.content = pair.probe.to_string(), .behavior = {}, .k = 5})) {
            parity = false;
        }
        state.counters["sharded_topn_parity"] = parity ? 1.0 : 0.0;
    }
}

}  // namespace

BENCHMARK(BM_ShardedObserve)->Arg(1)->Arg(3)->UseManualTime();

BENCHMARK_MAIN();
