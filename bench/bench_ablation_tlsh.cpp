// Ablation: CTPH (SSDeep, the paper's choice) vs a TLSH-style
// locality-sensitive hash under two drift models.
//
// The two families capture different notions of similarity:
//  - CTPH hashes the *sequence* of content; it survives localized edits
//    (a rebuilt function, a patched data table) because untouched chunks
//    keep their digest characters, but scattered point mutations touch
//    nearly every chunk and zero the score.
//  - TLSH hashes the *distribution* of content; scattered noise barely
//    moves the bucket histogram, but it cannot tell two files apart when
//    wholesale region replacement keeps byte statistics similar.
//
// Binary version drift on HPC systems (recompiles, version bumps) is
// localized — which is why the paper's SSDeep choice is the right default —
// while bit-rot/packing-style noise is TLSH territory.

#include <string>
#include <vector>

#include "bench_common.hpp"
#include "fuzzy/fuzzy.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "workload/synthesizer.hpp"

namespace {

constexpr std::size_t kBlobSize = 64 * 1024;

siren::workload::BinaryRecipe recipe_at(std::size_t version) {
    siren::workload::BinaryRecipe r;
    r.lineage = "icon";
    r.version = version;
    r.compilers = {siren::workload::compiler_comment_for("GCC [SUSE]")};
    r.needed = {"libc.so.6"};
    r.code_blocks = 24;
    return r;
}

/// Flip `count` bytes at uniformly random positions (scattered noise).
std::vector<std::uint8_t> scatter_mutate(std::vector<std::uint8_t> data, std::size_t count,
                                         std::uint64_t seed) {
    siren::util::Rng rng(seed);
    for (std::size_t i = 0; i < count; ++i) {
        data[rng.index(data.size())] ^= static_cast<std::uint8_t>(1 + rng.below(255));
    }
    return data;
}

int ctph_score(const std::vector<std::uint8_t>& a, const std::vector<std::uint8_t>& b) {
    return siren::fuzzy::compare(siren::fuzzy::fuzzy_hash(a), siren::fuzzy::fuzzy_hash(b));
}

std::string tlsh_cell(const std::vector<std::uint8_t>& a, const std::vector<std::uint8_t>& b) {
    const auto da = siren::fuzzy::tlsh_hash(a);
    const auto db = siren::fuzzy::tlsh_hash(b);
    if (!da || !db) return "n/a";
    return std::to_string(siren::fuzzy::tlsh_similarity(*da, *db)) + " (d=" +
           std::to_string(siren::fuzzy::tlsh_distance(*da, *db)) + ")";
}

}  // namespace

int main() {
    siren::bench::print_header(
        "Ablation — CTPH (SSDeep) vs TLSH under localized and scattered drift",
        "the §2.1 fuzzy-hashing design choice");

    // Model A: localized drift — synthesized ELF lineage versions (what
    // recompilation does to executables).
    {
        const auto base = siren::workload::synthesize(recipe_at(0));
        siren::util::TextTable t({"Version drift", "CTPH sim", "TLSH sim (dist)"});
        for (const std::size_t drift : {0u, 1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
            const auto variant = siren::workload::synthesize(recipe_at(drift));
            t.add_row({std::to_string(drift), std::to_string(ctph_score(base, variant)),
                       tlsh_cell(base, variant)});
        }
        std::printf("Model A: localized drift (ELF lineage versions)\n%s\n",
                    t.render().c_str());
    }

    // Model B: scattered point mutations over a fixed blob (noise /
    // bit-level tampering).
    {
        siren::util::Rng rng(42);
        const auto base = rng.bytes(kBlobSize);
        siren::util::TextTable t({"Bytes flipped", "CTPH sim", "TLSH sim (dist)"});
        for (const std::size_t flips :
             {0u, 16u, 64u, 256u, 1024u, 4096u, 16384u, 65536u}) {
            const auto variant = scatter_mutate(base, flips, 1000 + flips);
            t.add_row({std::to_string(flips), std::to_string(ctph_score(base, variant)),
                       tlsh_cell(base, variant)});
        }
        std::printf("Model B: scattered point mutations (%zu-byte blob)\n%s\n", kBlobSize,
                    t.render().c_str());
    }

    std::printf(
        "Expected shape: under Model A CTPH holds high scores across many\n"
        "versions (TLSH also stays close — both work); under Model B CTPH\n"
        "collapses to 0 within a few hundred scattered flips while TLSH\n"
        "degrades gradually. HPC executable drift is Model A, which is why\n"
        "the paper's SSDeep choice fits the identification use case.\n");
    return 0;
}
