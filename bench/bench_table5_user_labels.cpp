// Table 5: derived labels for user applications (regex over path names).

#include "analytics/tables.hpp"
#include "bench_common.hpp"

int main() {
    siren::bench::print_header("Table 5 — Derived labels for user applications", "Table 5");
    const auto result = siren::bench::run_lumi();
    const auto t = siren::analytics::table5_user_labels(result.aggregates);
    std::printf("%s\n", t.render().c_str());
    std::printf("Paper: LAMMPS(2u/226p/5h), GROMACS(2u/2,104p/1h), miniconda(673j/5,018p/5h),\n"
                "janko(138/138/2), icon(64j/625p/175h), amber(27/889/2), gzip(18/19/1),\n"
                "UNKNOWN(3j/17p/7h), alexandria(2/4/1), RadRad(2/2/2).\n");
    return 0;
}
