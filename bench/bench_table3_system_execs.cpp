// Table 3: top-10 most used executables from system directories.

#include "analytics/tables.hpp"
#include "bench_common.hpp"

int main() {
    siren::bench::print_header("Table 3 — Top 10 system-directory executables", "Table 3");
    const auto result = siren::bench::run_lumi();

    std::size_t total_system_execs = 0;
    const auto t =
        siren::analytics::table3_system_execs(result.aggregates, 10, &total_system_execs);
    std::printf("%s\n", t.render().c_str());
    std::printf("Total distinct system-directory executables: %zu (paper: 112)\n",
                total_system_execs);
    std::printf("Paper top rows: srun (10 users), bash (8, 3 OBJECTS_H variants), lua5.3 (8),\n"
                "rm, cat, uname, ls, mkdir, grep, cp.\n");
    return 0;
}
