// Table 8: Python interpreters by users, jobs, processes and unique scripts.

#include "analytics/tables.hpp"
#include "bench_common.hpp"

int main() {
    siren::bench::print_header("Table 8 — Python interpreters", "Table 8");
    const auto result = siren::bench::run_lumi();
    const auto t = siren::analytics::table8_python(result.aggregates);
    std::printf("%s\n", t.render().c_str());
    std::printf("Paper: python3.10 (2 users, 30 jobs, 30 procs, 27 scripts),\n"
                "python3.6 (1, 28, 14,884, 6), python3.11 (1, 8, 8,402, 5).\n");
    return 0;
}
