// Figure 5: loaded shared-object (library tag) usage by software label.

#include "analytics/tables.hpp"
#include "bench_common.hpp"

int main() {
    siren::bench::print_header("Figure 5 — Library-tag usage by software label", "Figure 5");
    const auto result = siren::bench::run_lumi();
    const auto t = siren::analytics::fig5_library_matrix(result.aggregates);
    // The matrix is wide; print as TSV for machine comparison plus the
    // aligned rendering.
    std::printf("%s\n", t.render().c_str());
    std::printf("Paper: every label loads siren (LD_PRELOAD injection); all but gzip load\n"
                "pthread; icon carries the climatedt tags, amber the hdf5-parallel family,\n"
                "janko the spack family.\n");
    return 0;
}
