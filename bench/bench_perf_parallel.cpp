// Microbenchmarks (google-benchmark) for the parallel paths: one-to-many
// digest comparison with and without the thread pool, parallel derived-data
// computation, and campaign-pipeline throughput vs thread count.

#include <benchmark/benchmark.h>

#include "collect/exe_store.hpp"
#include "core/siren.hpp"
#include "fuzzy/fuzzy.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "workload/synthesizer.hpp"

namespace {

std::vector<siren::fuzzy::FuzzyDigest> candidate_digests(std::size_t n) {
    std::vector<siren::fuzzy::FuzzyDigest> out;
    out.reserve(n);
    siren::util::Rng rng(11);
    auto base = rng.bytes(1 << 18);
    for (std::size_t i = 0; i < n; ++i) {
        auto variant = base;
        const std::size_t start = rng.index(variant.size() - 4096);
        for (std::size_t k = 0; k < 4096; ++k) variant[start + k] ^= 0x3C;
        out.push_back(siren::fuzzy::fuzzy_hash(variant));
    }
    return out;
}

void BM_OneToManySerial(benchmark::State& state) {
    const auto candidates = candidate_digests(static_cast<std::size_t>(state.range(0)));
    const auto probe = candidates.front();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            siren::fuzzy::compare_one_to_many(probe, candidates, /*threshold=*/0));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_OneToManySerial)->Arg(256)->Arg(4096);

void BM_OneToManyParallel(benchmark::State& state) {
    const auto candidates = candidate_digests(static_cast<std::size_t>(state.range(0)));
    const auto probe = candidates.front();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            siren::fuzzy::compare_one_to_many(probe, candidates, /*threshold=*/1));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_OneToManyParallel)->Arg(256)->Arg(4096);

void BM_DerivedDataComputation(benchmark::State& state) {
    siren::workload::BinaryRecipe recipe;
    recipe.lineage = "benchware";
    recipe.code_blocks = 24;
    recipe.compilers = {"GCC: (SUSE Linux) 7.5.0"};
    const auto bytes = siren::workload::synthesize(recipe);
    for (auto _ : state) {
        benchmark::DoNotOptimize(siren::collect::compute_derived(bytes));
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(bytes.size()));
}
BENCHMARK(BM_DerivedDataComputation);

/// Whole-pipeline scaling: the mini campaign end to end at 1..N threads.
void BM_CampaignThreads(benchmark::State& state) {
    siren::FrameworkOptions options;
    options.scale = 1.0;
    options.threads = static_cast<std::size_t>(state.range(0));
    const auto spec = siren::workload::mini_campaign();
    for (auto _ : state) {
        auto result = run_campaign(spec, options);
        benchmark::DoNotOptimize(result.aggregates.total_processes);
    }
}
BENCHMARK(BM_CampaignThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
