// Extension experiment: container coverage.
//
// Paper §3.1 states the limitation — LD_PRELOAD propagates into containers
// but siren.so's directory is not mounted there, so containerized
// processes go dark — and §6 plans the fix (mount the collector into the
// container). This bench quantifies the observability gap as the
// containerized share of the workload grows, and shows the recovered
// coverage with the future-work opt-in enabled. As sites move to
// Singularity/Apptainer-first workflows, this coverage curve is the
// operational argument for prioritizing that fix.

#include <string>
#include <vector>

#include "bench_common.hpp"
#include "collect/collector.hpp"
#include "collect/exe_store.hpp"
#include "net/channel.hpp"
#include "sim/cluster.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "workload/synthesizer.hpp"

namespace {

constexpr std::size_t kProcesses = 2000;

/// Discards datagrams; only the collector's own counters matter here.
class NullTransport : public siren::net::Transport {
public:
    void send(std::string_view) noexcept override {}
};

std::vector<siren::sim::SimProcess> make_fleet(double container_fraction,
                                               const std::string& exe_path) {
    siren::util::Rng rng(2026);
    std::vector<siren::sim::SimProcess> fleet;
    fleet.reserve(kProcesses);
    for (std::size_t i = 0; i < kProcesses; ++i) {
        siren::sim::SimProcess p;
        p.job_id = 1 + i / 8;
        p.pid = static_cast<std::int64_t>(1000 + i);
        p.ppid = 999;
        p.uid = 1004;
        p.gid = 1004;
        p.host = "nid000001";
        p.start_time = 1734000000 + static_cast<std::int64_t>(i);
        p.exe_path = exe_path;
        p.loaded_objects = {"/lib64/libc.so.6", "/opt/siren/lib/siren.so"};
        p.in_container = rng.chance(container_fraction);
        fleet.push_back(std::move(p));
    }
    return fleet;
}

}  // namespace

int main() {
    siren::bench::print_header(
        "Extension — observability vs containerized workload share",
        "the §3.1 container limitation and the §6 mount fix");

    const std::string exe_path = "/users/user_4/app/bin/app";
    siren::workload::BinaryRecipe recipe;
    recipe.lineage = "app";
    recipe.compilers = {siren::workload::compiler_comment_for("GCC [SUSE]")};
    recipe.code_blocks = 8;
    siren::collect::FileStore store;
    siren::collect::ExecutableImage image;
    image.bytes = siren::workload::synthesize(recipe);
    store.register_executable(exe_path, std::move(image));

    siren::util::TextTable t({"Container share", "Seen", "Collected (default)",
                              "Coverage", "Collected (mount fix)", "Coverage"});
    for (const double fraction : {0.0, 0.05, 0.1, 0.25, 0.5, 0.8}) {
        const auto fleet = make_fleet(fraction, exe_path);

        NullTransport null;
        siren::collect::Collector limited(store, null);  // paper's deployment
        siren::collect::CollectorOptions opt_in;
        opt_in.collect_containers = true;  // §6 future work
        siren::collect::Collector fixed(store, null, opt_in);

        for (const auto& p : fleet) {
            limited.collect(p);
            fixed.collect(p);
        }

        const auto coverage = [](const siren::collect::CollectorStats& s) {
            return 100.0 * static_cast<double>(s.processes_collected.load()) /
                   static_cast<double>(s.processes_seen.load());
        };
        t.add_row({siren::util::fixed(fraction * 100, 0) + "%",
                   std::to_string(kProcesses),
                   std::to_string(limited.stats().processes_collected.load()),
                   siren::util::fixed(coverage(limited.stats()), 1) + "%",
                   std::to_string(fixed.stats().processes_collected.load()),
                   siren::util::fixed(coverage(fixed.stats()), 1) + "%"});
    }

    std::printf("%s\n", t.render().c_str());
    std::printf(
        "Expected shape: default coverage degrades one-for-one with the\n"
        "containerized share (the paper's stated blind spot); with the\n"
        "container mount fix coverage returns to 100%% at every share.\n");
    return 0;
}
