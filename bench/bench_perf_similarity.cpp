// Microbenchmarks (google-benchmark) for the prepared-digest similarity
// engine: legacy vs prepared fuzzy::compare (with allocs_per_op from the
// util/alloc_probe.hpp operator-new hook), digest preparation cost, and
// registry-scale top-n search — the block-size-bucketed Bloom-prefiltered
// SimilarityIndex against the brute-force scan it replaces.
//
// The cmake target `bench-similarity-json` runs these and condenses the
// numbers into BENCH_similarity.json via tools/bench_to_json.py; CI fails
// if the prepared compare path is slower than the legacy path.

#define SIREN_ALLOC_PROBE_IMPLEMENT
#include "util/alloc_probe.hpp"

#include <benchmark/benchmark.h>

#include <map>
#include <string>
#include <vector>

#include "fuzzy/fuzzy.hpp"
#include "recognize/recognize.hpp"
#include "util/base64.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"
#include "util/thread_pool.hpp"

namespace {

using siren::fuzzy::FuzzyDigest;
using siren::fuzzy::PreparedDigest;

/// Report heap allocations per iteration from the thread-local probe.
class AllocCounter {
public:
    void start() { siren::util::alloc_probe_reset(); }
    void report(benchmark::State& state) {
        state.counters["allocs_per_op"] = benchmark::Counter(
            static_cast<double>(siren::util::alloc_probe_count()),
            benchmark::Counter::kAvgIterations);
    }
};

std::string random_part(siren::util::Rng& rng, std::size_t len) {
    std::string s;
    for (std::size_t i = 0; i < len; ++i) s += siren::util::kBase64Alphabet[rng.index(64)];
    return s;
}

/// Lineage drift: a few point edits on the digest strings (what a rebuild
/// does to a CTPH digest) — keeps scores in the 60..95 band.
FuzzyDigest mutate(siren::util::Rng& rng, FuzzyDigest d, std::size_t edits) {
    for (std::size_t e = 0; e < edits; ++e) {
        std::string& part = rng.below(3) == 0 ? d.digest2 : d.digest1;
        if (part.empty()) continue;
        part[rng.index(part.size())] = siren::util::kBase64Alphabet[rng.index(64)];
    }
    return d;
}

/// A synthetic known-software registry: families of drifted variants at a
/// few adjacent block sizes — digest strings are synthesized directly so a
/// 100k registry builds in milliseconds instead of hashing gigabytes.
struct Registry {
    std::vector<FuzzyDigest> digests;
    siren::recognize::SimilarityIndex index;
    FuzzyDigest probe;
};

const Registry& registry_of(std::size_t n) {
    static std::map<std::size_t, Registry> cache;
    const auto it = cache.find(n);
    if (it != cache.end()) return it->second;

    Registry& reg = cache[n];
    siren::util::Rng rng(1009 * n + 7);
    const std::uint64_t ladder[] = {1536, 3072, 6144};
    constexpr std::size_t kVariants = 8;
    while (reg.digests.size() < n) {
        FuzzyDigest base;
        base.block_size = ladder[rng.index(3)];
        base.digest1 = random_part(rng, 48 + rng.index(16));
        base.digest2 = random_part(rng, 24 + rng.index(8));
        for (std::size_t v = 0; v < kVariants && reg.digests.size() < n; ++v) {
            reg.digests.push_back(v == 0 ? base : mutate(rng, base, 1 + rng.index(5)));
        }
    }
    for (const auto& d : reg.digests) reg.index.add(d);
    reg.probe = mutate(rng, reg.digests[n / 2], 3);
    return reg;
}

/// Legacy comparator: parses nothing but re-collapses and re-hashes grams
/// on every call (4 string allocations + an unordered_set).
void BM_FuzzyCompareLegacy(benchmark::State& state) {
    const Registry& reg = registry_of(1000);
    const FuzzyDigest& a = reg.probe;
    const FuzzyDigest& b = reg.digests[500];
    AllocCounter allocs;
    allocs.start();
    for (auto _ : state) {
        benchmark::DoNotOptimize(siren::fuzzy::compare(a, b));
    }
    allocs.report(state);
}
BENCHMARK(BM_FuzzyCompareLegacy);

/// Prepared comparator: Bloom-gated, bit-parallel, allocation-free.
void BM_FuzzyComparePrepared(benchmark::State& state) {
    const Registry& reg = registry_of(1000);
    const PreparedDigest a(reg.probe);
    const PreparedDigest b(reg.digests[500]);
    AllocCounter allocs;
    allocs.start();
    for (auto _ : state) {
        benchmark::DoNotOptimize(siren::fuzzy::compare(a, b));
    }
    allocs.report(state);
}
BENCHMARK(BM_FuzzyComparePrepared);

void BM_PrepareDigest(benchmark::State& state) {
    const Registry& reg = registry_of(1000);
    for (auto _ : state) {
        benchmark::DoNotOptimize(PreparedDigest(reg.probe));
    }
}
BENCHMARK(BM_PrepareDigest);

/// Registry search through the bucketed prepared index (the production
/// path): items/s counts stored digests covered per second.
void BM_SimilaritySearch(benchmark::State& state) {
    const Registry& reg = registry_of(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(reg.index.query(reg.probe, 60, 10));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_SimilaritySearch)->Arg(1000)->Arg(10000)->Arg(100000);

/// The same bucketed search pinned to the scalar scan kernel: the
/// denominator of the simd_scan_speedup ratio (and the byte-for-byte PR 3
/// baseline, kept callable so the speedup is measured, not remembered).
void BM_SimilaritySearchScalar(benchmark::State& state) {
    const Registry& reg = registry_of(static_cast<std::size_t>(state.range(0)));
    siren::util::simd::force_level(siren::util::simd::Level::kScalar);
    for (auto _ : state) {
        benchmark::DoNotOptimize(reg.index.query(reg.probe, 60, 10));
    }
    siren::util::simd::clear_forced_level();
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_SimilaritySearchScalar)->Arg(10000)->Arg(100000);

/// The brute-force scan the index replaces: one legacy compare per stored
/// digest per query.
void BM_SimilaritySearchBrute(benchmark::State& state) {
    const Registry& reg = registry_of(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(reg.index.query_bruteforce(reg.probe, 60, 10));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_SimilaritySearchBrute)->Arg(1000)->Arg(10000)->Arg(100000);

/// Batch identification: 64 probes per call, chunked across a pool.
void BM_SimilarityQueryMany(benchmark::State& state) {
    const Registry& reg = registry_of(static_cast<std::size_t>(state.range(0)));
    siren::util::Rng rng(4242);
    std::vector<FuzzyDigest> probes;
    for (int i = 0; i < 64; ++i) {
        probes.push_back(mutate(rng, reg.digests[rng.index(reg.digests.size())], 3));
    }
    siren::util::ThreadPool pool;
    for (auto _ : state) {
        benchmark::DoNotOptimize(reg.index.query_many(probes, 60, 10, &pool));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0) * 64);
}
// UseRealTime: the work runs on pool workers, so wall clock is the only
// honest denominator for items/s.
BENCHMARK(BM_SimilarityQueryMany)->Arg(10000)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
