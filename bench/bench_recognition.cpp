// Extension experiment: campaign-scale software recognition.
//
// The paper's §1 promises two capabilities: *identification* of unknown
// software (Table 7 demonstrates one probe) and *recognition* of repeated
// executions. This bench runs the recognition registry over the entire
// campaign's user-directory binaries and reports, per discovered family,
// how many distinct builds and processes it covers — plus the headline
// rates: what fraction of sightings were recognized rather than new, and
// how many families the name-based baseline could not have identified.

#include <map>
#include <utility>

#include "analytics/recognition.hpp"
#include "bench_common.hpp"
#include "util/table.hpp"

int main() {
    siren::bench::print_header(
        "Extension — recognition registry over the full campaign",
        "§1's 'recognition of repeated executions', at campaign scale");

    const auto result = siren::bench::run_lumi();
    const auto labeler = siren::analytics::Labeler::default_rules();
    // icon alone has ~175 builds spanning long version chains; a generous
    // exemplar budget keeps chained drift (v1 ~ v2 ~ ... ~ v175) in one
    // family even when the endpoints score 0 against each other.
    const auto report = siren::analytics::recognition_report(
        result.aggregates, labeler,
        {.match_threshold = 55, .max_exemplars_per_family = 256});

    siren::util::TextTable t(
        {"Family", "Distinct binaries", "Paths", "Processes", "Exemplars", "Named by"});
    for (const auto& row : report.rows) {
        t.add_row({row.name, std::to_string(row.distinct_binaries), std::to_string(row.paths),
                   siren::util::with_commas(row.processes), std::to_string(row.exemplars),
                   row.anonymous ? "(anonymous)" : "label"});
    }
    std::printf("%s\n", t.render().c_str());

    // Rollup by label: one software can appear as several similarity
    // islands when its builds drift far apart (icon's build matrix spans
    // compilers and wide version gaps). The label unifies the islands —
    // similarity does the grouping, names do the joining, which is exactly
    // the division of labor the paper proposes.
    {
        std::map<std::string, std::pair<std::size_t, std::size_t>> by_label;  // islands, binaries
        for (const auto& row : report.rows) {
            auto& [islands, binaries] = by_label[row.name];
            ++islands;
            binaries += row.distinct_binaries;
        }
        siren::util::TextTable rollup({"Label", "Similarity islands", "Distinct binaries"});
        for (const auto& [name, stats] : by_label) {
            rollup.add_row(
                {name, std::to_string(stats.first), std::to_string(stats.second)});
        }
        std::printf("Rollup by label:\n%s\n", rollup.render().c_str());
    }

    std::printf("sightings (distinct user binaries):  %zu\n", report.sightings);
    std::printf("recognized as already-known:         %zu (%.1f%%)\n", report.recognized,
                100.0 * report.recognition_rate());
    std::printf("families founded:                    %zu\n", report.families_founded);
    std::printf("named families holding binaries the\n"
                "name-regex baseline calls UNKNOWN:   %zu\n",
                report.anonymous_named);
    std::printf(
        "\nExpected shape: far fewer families than sightings (lineages with\n"
        "many builds, e.g. icon's ~175 variants, collapse); a.out sightings\n"
        "land inside the icon family rather than founding new ones — the\n"
        "recognition counterpart of Table 7's one-probe identification.\n");
    return 0;
}
