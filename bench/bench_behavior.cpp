// Microbenchmarks (google-benchmark) for the behavioral fingerprint
// channel: shapelet digest build rate over synthetic counter traces,
// behavior-channel identify QPS against a live RecognitionService, fused
// (content + behavior) identify QPS against the content-only baseline,
// and top-1 accuracy of fused vs content-only identification on a corpus
// whose binaries mutated past content-match range (the renamed/recompiled
// scenario the channel exists for — docs/behavior_fingerprints.md).
//
// The cmake target `bench-behavior-json` condenses the numbers into
// BENCH_behavior.json; CI gates fused_identify_overhead (fused identify
// must stay within 1.25x of content-only latency, i.e. no slower than
// 0.8x the QPS) and the accuracy counters (fused >= content-only).
// bench/trajectory/BENCH_behavior.json is the committed trajectory point.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "behavior/shapelet.hpp"
#include "fuzzy/fuzzy.hpp"
#include "serve/serve.hpp"
#include "sim/traces.hpp"
#include "util/base64.hpp"
#include "util/rng.hpp"

namespace {

namespace sv = siren::serve;
using siren::fuzzy::FuzzyDigest;

std::string random_part(siren::util::Rng& rng, std::size_t len) {
    std::string s;
    for (std::size_t i = 0; i < len; ++i) s += siren::util::kBase64Alphabet[rng.index(64)];
    return s;
}

FuzzyDigest mutate(siren::util::Rng& rng, FuzzyDigest d, std::size_t edits) {
    for (std::size_t e = 0; e < edits; ++e) {
        std::string& part = rng.below(3) == 0 ? d.digest2 : d.digest1;
        if (part.empty()) continue;
        part[rng.index(part.size())] = siren::util::kBase64Alphabet[rng.index(64)];
    }
    return d;
}

std::vector<double> family_trace(std::size_t family, std::uint64_t run_seed) {
    siren::sim::TraceRecipe recipe;
    recipe.lineage = "app/" + std::to_string(family);
    recipe.samples = 256;
    recipe.run_seed = run_seed;
    return siren::sim::synthesize_trace(recipe);
}

/// A service shaped like a deployment: the content index retains drifted
/// per-version exemplars for *every* binary the cluster has seen (1250
/// families x 8 versions, each version 5-14 edits from its base so it
/// lands between match_threshold and exemplar_add_below and is kept —
/// ~10k content exemplars), while the behavior channel holds one shapelet
/// per *instrumented* family only — traces exist just for the
/// applications someone pointed the counter sampler at. The fused gate
/// compares against that asymmetry because it is the asymmetry the fused
/// path runs under in production: content grows with every recompile,
/// behavior grows only with deliberate instrumentation.
struct FusedService {
    std::unique_ptr<sv::RecognitionService> service;
    std::vector<FuzzyDigest> content;   ///< base exemplar per instrumented family
    std::vector<FuzzyDigest> behavior;  ///< one shapelet per instrumented family
    FuzzyDigest content_probe;
    FuzzyDigest behavior_probe;
};

constexpr std::size_t kFamilies = 200;       ///< instrumented (traced) families
constexpr std::size_t kColdFamilies = 1050;  ///< content-only families
constexpr std::size_t kVariants = 8;         ///< drifted versions per family

FusedService& fused_service() {
    static FusedService live = [] {
        FusedService f;
        siren::util::Rng rng(4242);
        sv::ServeOptions options;
        options.writer_idle = std::chrono::milliseconds(1);
        options.publish_interval = std::chrono::milliseconds(10);
        f.service = std::make_unique<sv::RecognitionService>(options);
        const std::uint64_t ladder[] = {1536, 3072, 6144};
        const auto observe_family = [&](const std::string& name, bool keep_base) {
            FuzzyDigest base;
            base.block_size = ladder[rng.index(3)];
            base.digest1 = random_part(rng, 48 + rng.index(16));
            base.digest2 = random_part(rng, 24 + rng.index(8));
            if (keep_base) f.content.push_back(base);
            for (std::size_t v = 0; v < kVariants; ++v) {
                f.service->observe(v == 0 ? base : mutate(rng, base, 5 + rng.index(10)),
                                   name);
            }
        };
        for (std::size_t i = 0; i < kFamilies; ++i) {
            const std::string name = "app-" + std::to_string(i);
            observe_family(name, /*keep_base=*/true);
            f.behavior.push_back(
                siren::behavior::shapelet_digest(family_trace(i, /*run_seed=*/1)));
            f.service->observe_behavior(f.behavior[i], name);
        }
        for (std::size_t i = 0; i < kColdFamilies; ++i) {
            observe_family("cold-" + std::to_string(i), /*keep_base=*/false);
        }
        f.service->flush();
        f.content_probe = mutate(rng, f.content[kFamilies / 2], 2);
        f.behavior_probe = siren::behavior::shapelet_digest(
            family_trace(kFamilies / 2, /*run_seed=*/2));
        return f;
    }();
    return live;
}

/// Shapelet digest build rate: z-normalize + PAA + SAX + CTPH-style
/// digesting of one 256-sample counter trace.
void BM_BehaviorDigestBuild(benchmark::State& state) {
    const auto trace = family_trace(7, 3);
    for (auto _ : state) {
        benchmark::DoNotOptimize(siren::behavior::shapelet_digest(trace));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BehaviorDigestBuild);

/// Trace synthesis itself (the simulated collector's cost per process).
void BM_BehaviorTraceSynthesize(benchmark::State& state) {
    std::uint64_t seed = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(family_trace(11, ++seed));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BehaviorTraceSynthesize);

/// Content-only identify — the baseline the fused path is gated against.
void BM_ContentIdentifyBaseline(benchmark::State& state) {
    FusedService& live = fused_service();
    for (auto _ : state) {
        benchmark::DoNotOptimize(live.service->identify(live.content_probe));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ContentIdentifyBaseline);

/// Behavior-channel identify (IDENTIFYTS path).
void BM_BehaviorIdentify(benchmark::State& state) {
    FusedService& live = fused_service();
    for (auto _ : state) {
        benchmark::DoNotOptimize(live.service->identify_behavior(live.behavior_probe));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BehaviorIdentify);

/// Fused identify over both channels (IDENTIFY2 path) — scores both
/// indexes and combines. Gated: must stay within 1.25x of the
/// content-only baseline (>= 0.8x its QPS).
void BM_FusedIdentify(benchmark::State& state) {
    FusedService& live = fused_service();
    const std::optional<FuzzyDigest> content = live.content_probe;
    const std::optional<FuzzyDigest> behavior = live.behavior_probe;
    for (auto _ : state) {
        benchmark::DoNotOptimize(live.service->identify_fused(content, behavior, 5));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FusedIdentify);

/// The gate itself: content-only identify and fused identify measured
/// *interleaved in the same loop*, so CPU frequency drift between two
/// separately-run benchmarks (minutes apart on a shared box) cancels out
/// of the ratio. The fused_identify_overhead counter is what CI gates
/// (<= 1.25, i.e. fused QPS >= 0.8x content-only); the standalone
/// BM_ContentIdentifyBaseline / BM_FusedIdentify numbers above are for
/// reading absolute latencies, not for the gate.
void BM_FusedIdentifyOverhead(benchmark::State& state) {
    FusedService& live = fused_service();
    const std::optional<FuzzyDigest> content = live.content_probe;
    const std::optional<FuzzyDigest> behavior = live.behavior_probe;
    using clock = std::chrono::steady_clock;
    std::chrono::nanoseconds content_ns{0};
    std::chrono::nanoseconds fused_ns{0};
    for (auto _ : state) {
        const auto t0 = clock::now();
        benchmark::DoNotOptimize(live.service->identify(*content));
        const auto t1 = clock::now();
        benchmark::DoNotOptimize(live.service->identify_fused(content, behavior, 5));
        const auto t2 = clock::now();
        content_ns += t1 - t0;
        fused_ns += t2 - t1;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
    const double content_total = static_cast<double>(content_ns.count());
    const double fused_total = static_cast<double>(fused_ns.count());
    if (content_total > 0.0) {
        state.counters["fused_identify_overhead"] =
            benchmark::Counter(fused_total / content_total);
    }
}
BENCHMARK(BM_FusedIdentifyOverhead);

/// Top-1 accuracy on a mutated corpus: every probe binary's content digest
/// is mutated far past match range (recompiled/stripped), while its
/// runtime trace is a fresh run (new noise seed) of the same workload.
/// Content-only identification collapses; the fused path recovers the
/// family through the behavior channel. Rates land as counters for the
/// trajectory (and the CI accuracy gate).
void BM_BehaviorAccuracyMutated(benchmark::State& state) {
    FusedService& live = fused_service();
    siren::util::Rng rng(777);
    std::size_t content_top1 = 0;
    std::size_t fused_top1 = 0;
    for (auto _ : state) {
        content_top1 = 0;
        fused_top1 = 0;
        for (std::size_t i = 0; i < kFamilies; ++i) {
            const std::optional<FuzzyDigest> content =
                mutate(rng, live.content[i], 40);  // far past match threshold
            const std::optional<FuzzyDigest> behavior =
                siren::behavior::shapelet_digest(family_trace(i, /*run_seed=*/9));
            const std::string want = "app-" + std::to_string(i);
            const auto content_only = live.service->identify(*content);
            if (content_only && content_only->name == want) ++content_top1;
            const auto fused = live.service->identify_fused(content, behavior, 1);
            if (!fused.empty() && fused.front().name == want) ++fused_top1;
        }
        benchmark::DoNotOptimize(fused_top1);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(kFamilies));
    state.counters["content_top1_rate"] =
        benchmark::Counter(static_cast<double>(content_top1) / kFamilies);
    state.counters["fused_top1_rate"] =
        benchmark::Counter(static_cast<double>(fused_top1) / kFamilies);
}
BENCHMARK(BM_BehaviorAccuracyMutated);

}  // namespace

BENCHMARK_MAIN();
