#pragma once

// Shared harness for the table/figure reproduction binaries.
//
// Every bench_table*/bench_fig* executable reruns the paper's LUMI opt-in
// campaign end to end (generator -> collector -> lossy transport ->
// consolidation -> analytics) and prints the corresponding table in the
// paper's layout. Knobs (environment):
//   SIREN_SCALE    campaign scale, default 1.0 (the paper's 2.35M processes)
//   SIREN_THREADS  worker threads, default = hardware concurrency
//   SIREN_SEED     campaign seed, default 42
//   SIREN_LOSS     datagram loss probability, default 0
//
// The campaign rides the zero-copy wire path (docs/wire_format.md): the
// collector encodes into one reused buffer, each shard arenas the raw
// datagram bytes and decodes them in place as net::MessageView, and
// consolidation runs over view spans — steady state sends and flushes
// perform no per-message heap allocation.
//
// Microbenchmark counterparts live in bench_perf_pipeline.cpp (BM_Decode vs
// BM_DecodeView, BM_CollectConsolidate vs BM_CollectConsolidateView, with
// allocs_per_op counters). `cmake --build build -t bench-pipeline-json`
// runs them and condenses the numbers into BENCH_pipeline.json via
// tools/bench_to_json.py — the machine-readable perf trajectory.

#include <cstdio>
#include <string>

#include "core/siren.hpp"
#include "util/env.hpp"
#include "util/stopwatch.hpp"
#include "util/strings.hpp"

namespace siren::bench {

inline CampaignResult run_lumi() {
    FrameworkOptions options = FrameworkOptions::from_env();
    util::Stopwatch watch;
    CampaignResult result = run_campaign(workload::lumi_campaign(), options);
    std::printf("# campaign: scale=%.3g seed=%llu loss=%.4g | jobs=%s processes=%s "
                "datagrams=%s lost=%s | %.2fs\n\n",
                options.scale, static_cast<unsigned long long>(options.seed),
                options.loss_rate, util::with_commas(result.totals.jobs).c_str(),
                util::with_commas(result.totals.processes).c_str(),
                util::with_commas(result.datagrams_sent).c_str(),
                util::with_commas(result.datagrams_lost).c_str(), watch.seconds());
    return result;
}

inline void print_header(const std::string& title, const std::string& paper_ref) {
    std::printf("================================================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("(reproduces %s of the SIREN paper)\n", paper_ref.c_str());
    std::printf("================================================================\n");
}

}  // namespace siren::bench
