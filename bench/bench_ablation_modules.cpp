// Ablation: can module environments alone identify software? The paper's
// introduction argues module tracking is unreliable (modules load as
// dependencies, from copy-pasted scripts, or not at all for user-compiled
// software). This experiment identifies every labeled user executable from
// (a) its MO_H only and (b) the full six-dimension ensemble, and compares
// top-1 accuracy.

#include <map>

#include "analytics/similarity.hpp"
#include "bench_common.hpp"
#include "fuzzy/compare.hpp"
#include "util/table.hpp"

namespace sa = siren::analytics;

int main() {
    siren::bench::print_header("Ablation — modules-only vs six-dimension identification",
                               "§1 (module tracking unreliability)");
    const auto result = siren::bench::run_lumi();
    const auto labeler = sa::Labeler::default_rules();

    // Candidate corpus: labeled user executables.
    struct Candidate {
        const sa::ExeStat* exe;
        std::string label;
    };
    std::vector<Candidate> corpus;
    for (const auto& [path, exe] : result.aggregates.execs) {
        if (exe.category != siren::consolidate::Category::kUser || !exe.has_sample) continue;
        std::string label = labeler.label(path);
        if (label == sa::kUnknownLabel) continue;
        corpus.push_back({&exe, std::move(label)});
    }

    std::size_t total = 0, modules_correct = 0, ensemble_correct = 0;
    for (const auto& probe : corpus) {
        ++total;
        int best_mo = -1, best_avg = -1;
        std::string mo_label, avg_label;
        for (const auto& candidate : corpus) {
            if (candidate.exe == probe.exe) continue;
            const int mo = siren::fuzzy::compare(probe.exe->sample.modules_hash,
                                                 candidate.exe->sample.modules_hash);
            if (mo > best_mo) {
                best_mo = mo;
                mo_label = candidate.label;
            }
            const auto scores = sa::score_records(probe.exe->sample, candidate.exe->sample);
            const int avg = static_cast<int>(scores.average() * 10);
            if (avg > best_avg) {
                best_avg = avg;
                avg_label = candidate.label;
            }
        }
        modules_correct += mo_label == probe.label;
        ensemble_correct += avg_label == probe.label;
    }

    siren::util::TextTable t({"Method", "Correct", "Total", "Top-1 accuracy"});
    t.add_row({"modules-only (MO_H)", std::to_string(modules_correct), std::to_string(total),
               siren::util::fixed(100.0 * static_cast<double>(modules_correct) /
                                      static_cast<double>(total ? total : 1), 1) + "%"});
    t.add_row({"six-dimension ensemble", std::to_string(ensemble_correct),
               std::to_string(total),
               siren::util::fixed(100.0 * static_cast<double>(ensemble_correct) /
                                      static_cast<double>(total ? total : 1), 1) + "%"});
    std::printf("%s\n", t.render().c_str());
    std::printf("Shape to observe: module environments are shared across unrelated codes\n"
                "(PrgEnv stacks), so modules-only accuracy falls well below the ensemble —\n"
                "the paper's argument for hashing the executables themselves.\n");
    return 0;
}
